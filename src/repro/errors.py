"""Exception hierarchy for the Neurocube reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one handler while still
distinguishing configuration mistakes from runtime simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed or programmed with inconsistent parameters.

    Examples: a PE count that does not match the vault count, a Q-format
    with zero total bits, or a layer whose kernel is larger than its input.
    """


class MappingError(ReproError):
    """A neural network could not be mapped onto the Neurocube.

    Raised by the compiler and the data-layout planner, e.g. when a layer's
    working set cannot be partitioned across the requested number of vaults.
    """


class PlanCheckError(ReproError):
    """A compiled plan failed static verification (``nccheck``).

    Raised by the ``validate=`` fail-fast hooks before any cycle is
    simulated.  Carries the individual
    :class:`repro.analysis.nccheck.PlanViolation` records so callers
    can inspect per-check findings programmatically.
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class SchemaMismatch(ReproError):
    """A persisted artifact carries an unsupported schema version.

    Raised when a run manifest or registry record declares a version
    this build cannot interpret — e.g. ``ncprof diff`` fed a manifest
    written by a newer checkout.  Distinct from :class:`ValueError` on
    a wrong ``kind`` (not our artifact at all): a schema mismatch names
    the exact version gap so the caller can upgrade or re-record.
    """


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state.

    Examples: deadlock (no component can make progress while work remains),
    a packet routed to a non-existent node, or a credit underflow.
    """


class ProtocolError(SimulationError):
    """A component violated the Neurocube hardware protocol.

    Examples: a vault pushing data while un-programmed, a PE receiving a
    packet whose MAC-ID exceeds the configured number of MACs, or a host
    reprogramming a PNG before ``layer_done`` was raised.
    """
