"""Neurocube reproduction (ISCA 2016).

A programmable digital neuromorphic architecture with high-density 3D
memory, rebuilt as a Python library: functional NN substrate, cycle-level
HMC/NoC/PE models, the programmable neurosequence generator (PNG), a
calibrated analytic performance model, and hardware power/area/thermal
models.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    from repro import nn, core
    net = nn.models.scene_labeling_convnn()
    config = core.NeurocubeConfig.hmc_15nm()
    report = core.AnalyticModel(config).evaluate_network(net)
    print(report.throughput_gops)
"""

from repro import errors, units

__version__ = "1.0.0"

__all__ = ["errors", "units", "__version__"]
