"""Steady-state 3D thermal model of the Neurocube stack (paper Fig. 17).

The paper runs 3D-ICE / Energy Introspector on the Fig. 16 floorplan with
a passive heat sink and reports maximum steady-state temperatures: 349 K
on the logic die and 344 K on the DRAM dies at the 15nm node, against
HMC 2.0 limits of 383 K (logic) and 378 K (DRAM).  Those are
steady-state compact-model quantities, which this finite-volume RC solver
reproduces: each die is a grid of cells with lateral silicon conduction,
vertical inter-die conduction, and a sink boundary above the top DRAM
die.

Material/geometry defaults are standard compact-model values (silicon
conductivity, bonded-interface conductance); the sink resistance is the
one free parameter and is set so the 15nm operating point lands at the
paper's reported temperatures (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from repro.errors import ConfigurationError
from repro.hw.area import HMC_LOGIC_DIE_MM2
from repro.hw.power import PowerModel

#: HMC 2.0 maximum operating temperatures (§VII).
MAX_LOGIC_TEMP_K = 383.0
MAX_DRAM_TEMP_K = 378.0


@dataclass
class ThermalResult:
    """Solved temperature field.

    Attributes:
        temperatures: ``(n_layers, rows, cols)`` kelvin; layer 0 is the
            logic die, the last layer is the DRAM die nearest the sink.
        layer_names: names per layer.
    """

    temperatures: np.ndarray
    layer_names: list[str]

    @property
    def logic_max_k(self) -> float:
        return float(self.temperatures[0].max())

    @property
    def dram_max_k(self) -> float:
        return float(self.temperatures[1:].max())

    @property
    def within_limits(self) -> bool:
        """The paper's HMC 2.0 feasibility check."""
        return (self.logic_max_k <= MAX_LOGIC_TEMP_K
                and self.dram_max_k <= MAX_DRAM_TEMP_K)


class ThermalStack:
    """Finite-volume steady-state solver for a logic + N-DRAM die stack.

    Args:
        rows, cols: grid cells per die.
        die_side_mm: square die side (default matches the 68 mm^2 HMC
            logic die).
        n_dram: DRAM dies above the logic die.
        ambient_k: sink ambient temperature.
        die_thickness_m: silicon thickness per die.
        k_silicon: silicon thermal conductivity, W/(m K).
        interface_conductance: die-to-die vertical conductance per unit
            area, W/(m^2 K) (bond layer).
        sink_conductance: top-die-to-ambient conductance per unit area,
            W/(m^2 K); the passive-heat-sink knob.
    """

    def __init__(self, rows: int = 16, cols: int = 16,
                 die_side_mm: float = HMC_LOGIC_DIE_MM2 ** 0.5,
                 n_dram: int = 4, ambient_k: float = 300.0,
                 die_thickness_m: float = 100e-6,
                 k_silicon: float = 110.0,
                 interface_conductance: float = 5.0e4,
                 sink_conductance: float = 8.6e3) -> None:
        if rows < 2 or cols < 2:
            raise ConfigurationError("grid must be at least 2x2")
        if n_dram < 1:
            raise ConfigurationError("need at least one DRAM die")
        self.rows = rows
        self.cols = cols
        self.n_layers = 1 + n_dram
        self.n_dram = n_dram
        self.ambient_k = ambient_k
        self.die_side_m = die_side_mm * 1e-3
        self.cell_x = self.die_side_m / cols
        self.cell_y = self.die_side_m / rows
        self.cell_area = self.cell_x * self.cell_y
        self.die_thickness_m = die_thickness_m
        self.k_silicon = k_silicon
        self.interface_conductance = interface_conductance
        self.sink_conductance = sink_conductance

    # ------------------------------------------------------------------

    def _index(self, layer: int, row: int, col: int) -> int:
        return (layer * self.rows + row) * self.cols + col

    def solve(self, power_maps: np.ndarray) -> ThermalResult:
        """Solve for the temperature field.

        Args:
            power_maps: ``(n_layers, rows, cols)`` watts injected per
                cell; layer 0 is the logic die.
        """
        power_maps = np.asarray(power_maps, dtype=np.float64)
        expected = (self.n_layers, self.rows, self.cols)
        if power_maps.shape != expected:
            raise ConfigurationError(
                f"power map shape {power_maps.shape} != {expected}")
        n = self.n_layers * self.rows * self.cols
        matrix = lil_matrix((n, n))
        rhs = np.zeros(n)

        g_lat_x = (self.k_silicon * self.cell_y * self.die_thickness_m
                   / self.cell_x)
        g_lat_y = (self.k_silicon * self.cell_x * self.die_thickness_m
                   / self.cell_y)
        g_vert = self.interface_conductance * self.cell_area
        g_sink = self.sink_conductance * self.cell_area
        top = self.n_layers - 1

        def couple(a: int, b: int, g: float) -> None:
            matrix[a, a] += g
            matrix[b, b] += g
            matrix[a, b] -= g
            matrix[b, a] -= g

        for layer in range(self.n_layers):
            for row in range(self.rows):
                for col in range(self.cols):
                    here = self._index(layer, row, col)
                    rhs[here] += power_maps[layer, row, col]
                    if col + 1 < self.cols:
                        couple(here, self._index(layer, row, col + 1),
                               g_lat_x)
                    if row + 1 < self.rows:
                        couple(here, self._index(layer, row + 1, col),
                               g_lat_y)
                    if layer + 1 < self.n_layers:
                        couple(here, self._index(layer + 1, row, col),
                               g_vert)
                    if layer == top:
                        matrix[here, here] += g_sink
                        rhs[here] += g_sink * self.ambient_k
        temps = spsolve(matrix.tocsr(), rhs)
        field = temps.reshape(self.n_layers, self.rows, self.cols)
        names = ["logic"] + [f"dram{i + 1}" for i in range(self.n_dram)]
        return ThermalResult(temperatures=field, layer_names=names)

    # ------------------------------------------------------------------
    # Neurocube-specific power maps
    # ------------------------------------------------------------------

    def neurocube_power_maps(self, technology: str,
                             n_pe: int = 16) -> np.ndarray:
        """Build the stack's power maps from the §VII power model.

        The compute power concentrates in a near-square grid of PE tiles
        on the logic die (the Fig. 16 floorplan); the baseline logic
        power spreads uniformly over the logic die; DRAM power splits
        evenly across the DRAM dies.
        """
        from repro.memory.layout import grid_dimensions

        model = PowerModel(technology, n_pe=n_pe)
        maps = np.zeros((self.n_layers, self.rows, self.cols))
        # Baseline logic: uniform.
        maps[0] += model.hmc_logic_power_w / (self.rows * self.cols)
        # PE tiles: a pe_rows x pe_cols grid of hotspots.
        pe_rows, pe_cols = grid_dimensions(n_pe)
        row_edges = np.linspace(0, self.rows, pe_rows + 1).astype(int)
        col_edges = np.linspace(0, self.cols, pe_cols + 1).astype(int)
        pe_power = model.pe_power_w
        for r in range(pe_rows):
            for c in range(pe_cols):
                rows = slice(row_edges[r], row_edges[r + 1])
                cols = slice(col_edges[c], col_edges[c + 1])
                cells = ((row_edges[r + 1] - row_edges[r])
                         * (col_edges[c + 1] - col_edges[c]))
                maps[0, rows, cols] += pe_power / cells
        # DRAM dies: uniform split.
        per_die = model.dram_power_w / self.n_dram
        for layer in range(1, self.n_layers):
            maps[layer] += per_die / (self.rows * self.cols)
        return maps

    def solve_neurocube(self, technology: str,
                        n_pe: int = 16) -> ThermalResult:
        """The Fig. 17 experiment for one technology node."""
        return self.solve(self.neurocube_power_maps(technology, n_pe))
