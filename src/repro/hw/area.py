"""Area model and floorplan feasibility (paper §VII, Fig. 16).

The paper lays out one Neurocube core — a PE, a router, a vault
controller and a TSV array — in a 513 µm x 513 µm partition at 70%
utilisation, and shows 16 such cores fit the HMC's 68 mm^2 logic die.
This module reproduces that arithmetic and checks feasibility for any
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.components import components_for

#: HMC logic die area, mm^2 [20].
HMC_LOGIC_DIE_MM2 = 68.0
#: Vault controller area synthesised in 28nm, mm^2 [24].
VAULT_CONTROLLER_MM2 = 0.0244
#: TSVs allotted to one vault's array (1,866 total / 16 vaults ~ 116).
TSVS_PER_VAULT = 116
#: TSV pitch in µm [33].
TSV_PITCH_UM = 4.0
#: Placement utilisation ratio of the Fig. 16 layout.
UTILIZATION = 0.70


@dataclass(frozen=True)
class Floorplan:
    """One core's floorplan summary.

    Attributes:
        technology: node name.
        pe_area_mm2: PE + router standard-cell area.
        vault_controller_mm2: VC macro area.
        tsv_array_mm2: TSV array area.
        core_side_mm: the square core tile's side after utilisation.
    """

    technology: str
    pe_area_mm2: float
    vault_controller_mm2: float
    tsv_array_mm2: float
    core_side_mm: float

    @property
    def core_area_mm2(self) -> float:
        return self.core_side_mm ** 2

    def total_area_mm2(self, n_cores: int = 16) -> float:
        return self.core_area_mm2 * n_cores

    def fits_logic_die(self, n_cores: int = 16,
                       die_mm2: float = HMC_LOGIC_DIE_MM2) -> bool:
        """The Fig. 16 feasibility check."""
        return self.total_area_mm2(n_cores) <= die_mm2


class AreaModel:
    """Aggregates Table II areas into the Fig. 16 core tile."""

    def __init__(self, technology: str) -> None:
        self.technology = technology
        self.components = components_for(technology)

    @property
    def pe_area_mm2(self) -> float:
        """One PE + router (Table II "PE Sum" area)."""
        return sum(c.area_per_pe for c in self.components.values())

    @property
    def compute_area_mm2(self) -> float:
        """16 PEs + 16 routers (Table II "Compute in Neurocube" area)."""
        return self.pe_area_mm2 * 16

    @property
    def tsv_array_mm2(self) -> float:
        """TSV array for one vault at the ITRS pitch."""
        pitch_mm = TSV_PITCH_UM / 1000.0
        return TSVS_PER_VAULT * pitch_mm * pitch_mm

    def floorplan(self) -> Floorplan:
        """One core tile at the paper's utilisation ratio."""
        cell_area = (self.pe_area_mm2 + VAULT_CONTROLLER_MM2
                     + self.tsv_array_mm2)
        placed = cell_area / UTILIZATION
        return Floorplan(
            technology=self.technology, pe_area_mm2=self.pe_area_mm2,
            vault_controller_mm2=VAULT_CONTROLLER_MM2,
            tsv_array_mm2=self.tsv_array_mm2,
            core_side_mm=placed ** 0.5)

    def check(self, n_cores: int = 16) -> None:
        """Raise when the configuration cannot fit the logic die."""
        plan = self.floorplan()
        if not plan.fits_logic_die(n_cores):
            raise ConfigurationError(
                f"{n_cores} cores need {plan.total_area_mm2(n_cores):.1f} "
                f"mm^2, logic die is {HMC_LOGIC_DIE_MM2} mm^2")
