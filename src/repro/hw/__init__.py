"""Hardware models: technology, power, area, thermal, and comparisons.

Transcribes and operationalises the paper's §VII hardware analysis: the
Table II per-component synthesis results in 28nm CMOS and 15nm FinFET,
the HMC baseline power model ([20]'s pJ/bit figures with activity
scaling), the Fig. 16 floorplan feasibility check, the Fig. 17 steady-
state thermal stack, and the Table III cross-platform comparison.
"""

from repro.hw.tech import TECH_NODES, TechnologyNode
from repro.hw.components import (
    COMPONENTS_28NM,
    COMPONENTS_15NM,
    ComponentSpec,
    components_for,
)
from repro.hw.power import PowerModel, SystemPower
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.area import AreaModel, Floorplan
from repro.hw.thermal import ThermalStack, ThermalResult
from repro.hw.platforms import PLATFORMS, Platform, comparison_table

__all__ = [
    "TechnologyNode",
    "TECH_NODES",
    "ComponentSpec",
    "COMPONENTS_28NM",
    "COMPONENTS_15NM",
    "components_for",
    "PowerModel",
    "SystemPower",
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
    "Floorplan",
    "ThermalStack",
    "ThermalResult",
    "Platform",
    "PLATFORMS",
    "comparison_table",
]
