"""Technology nodes (paper §VII).

The paper synthesises the PE in 28nm CMOS (Synopsys generic library) and
15nm FinFET (Nangate FreePDK15).  At 28nm the SRAM limits the PE clock to
300 MHz; the 15nm redesign reaches 5 GHz.  The HMC baseline (logic die
and DRAM) power scales with activity: a 300 MHz PE exercises the 5 GHz
vault interface at a 0.06 duty factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GHz, MHz


@dataclass(frozen=True)
class TechnologyNode:
    """One synthesis target.

    Attributes:
        name: "28nm" or "15nm".
        f_pe_hz: achievable PE/NoC clock.
        f_vault_hz: the HMC vault interface clock (fixed by the memory).
        logic_energy_scale: energy scale factor of the HMC baseline
            logic relative to its published 28nm-class figures (ITRS
            interconnect scaling, [33]).
    """

    name: str
    f_pe_hz: float
    f_vault_hz: float = GHz(5.0)
    logic_energy_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.f_pe_hz <= 0 or self.f_vault_hz <= 0:
            raise ConfigurationError("clocks must be positive")

    @property
    def activity_factor(self) -> float:
        """Duty factor the PE clock imposes on the 5 GHz vault interface.

        §VII: "the maximum clock frequency for the PE in the 28nm node is
        only 300MHz, leading to a reduced activity of 0.06
        (=300MHz/5GHz)".
        """
        return min(1.0, self.f_pe_hz / self.f_vault_hz)


TECH_28NM = TechnologyNode(name="28nm", f_pe_hz=MHz(300.0))
#: The 0.5 logic-energy scale reproduces Table II's 8.67 W baseline logic
#: die at 15nm from [20]'s 6.78 pJ/bit figure (17.3 W unscaled), per the
#: ITRS scaling factors the paper cites [33].
TECH_15NM = TechnologyNode(name="15nm", f_pe_hz=GHz(5.0),
                           logic_energy_scale=0.5)

TECH_NODES: dict[str, TechnologyNode] = {
    "28nm": TECH_28NM,
    "15nm": TECH_15NM,
}
