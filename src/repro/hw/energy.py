"""Workload energy model: joules per inference/training step.

Combines the §VII power model with a run report and the Table I access
energies: compute and baseline-logic power integrate over the run's
wall-clock time, while DRAM energy is charged per bit actually moved
(the streamed items plus write-backs), using the 3.7 pJ/bit HMC-internal
figure.  This extends the paper's GOPs/s/W comparison to energy per
frame — the metric an embedded deployment would quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layerdesc import NeurocubeProgram
from repro.core.metrics import RunReport
from repro.errors import ConfigurationError
from repro.hw.power import PowerModel
from repro.memory.vault import ITEM_BITS


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run (one frame / one training step), joules.

    Attributes:
        compute_j: PEs + routers over the run time.
        hmc_logic_j: baseline logic die over the run time.
        dram_j: DRAM access energy for the bits actually streamed.
    """

    compute_j: float
    hmc_logic_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.hmc_logic_j + self.dram_j

    @property
    def dram_fraction(self) -> float:
        return self.dram_j / self.total_j if self.total_j else 0.0

    def ops_per_joule(self, total_ops: float) -> float:
        """Arithmetic ops per joule (GOPs/J when divided by 1e9)."""
        if self.total_j <= 0:
            raise ConfigurationError("energy must be positive")
        return total_ops / self.total_j


class EnergyModel:
    """Per-run energy from a power model and a run report."""

    def __init__(self, technology: str, n_pe: int = 16,
                 n_channels: int = 16,
                 dram_pj_per_bit: float | None = None) -> None:
        self.power = PowerModel(technology, n_pe=n_pe,
                                n_channels=n_channels)
        from repro.hw.power import HMC_DRAM_PJ_PER_BIT

        self.dram_pj_per_bit = (dram_pj_per_bit
                                if dram_pj_per_bit is not None
                                else HMC_DRAM_PJ_PER_BIT)

    def run_energy(self, report: RunReport,
                   program: NeurocubeProgram) -> EnergyBreakdown:
        """Energy of the run described by ``report``.

        Args:
            report: performance result (provides the wall-clock time).
            program: the compiled program (provides the bits moved).
        """
        seconds = report.seconds
        bits_moved = ITEM_BITS * (program.total_stream_items
                                  + sum(d.neurons
                                        for d in program.descriptors))
        return EnergyBreakdown(
            compute_j=self.power.compute_power_w * seconds,
            hmc_logic_j=self.power.hmc_logic_power_w * seconds,
            dram_j=bits_moved * self.dram_pj_per_bit * 1e-12)
