"""Per-component synthesis results (paper Table II).

Every row of Table II becomes a :class:`ComponentSpec` with its operating
frequency, dynamic power, area and count per PE; the power and area
models aggregate them.  Values are transcribed verbatim from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GHz, MHz


@dataclass(frozen=True)
class ComponentSpec:
    """One Table II row at one technology node.

    Attributes:
        name: component name as in Table II.
        size_bits: storage size in bits where applicable (None for logic).
        frequency_hz: operating frequency used for the synthesis number.
        dynamic_power_w: dynamic power of one instance, watts.
        area_mm2: area of one instance, mm^2.
        count_per_pe: instances per PE (16 MACs per PE; one of the rest).
    """

    name: str
    size_bits: int | None
    frequency_hz: float
    dynamic_power_w: float
    area_mm2: float
    count_per_pe: int = 1

    def __post_init__(self) -> None:
        if self.dynamic_power_w < 0 or self.area_mm2 < 0:
            raise ConfigurationError(
                f"{self.name}: power and area must be non-negative")
        if self.count_per_pe < 1:
            raise ConfigurationError(
                f"{self.name}: count_per_pe must be >= 1")

    @property
    def power_per_pe(self) -> float:
        """Dynamic power of all instances in one PE, watts."""
        return self.dynamic_power_w * self.count_per_pe

    @property
    def area_per_pe(self) -> float:
        """Area of all instances in one PE, mm^2."""
        return self.area_mm2 * self.count_per_pe

    @property
    def power_density(self) -> float:
        """W/mm^2 of one instance."""
        return (self.dynamic_power_w / self.area_mm2
                if self.area_mm2 else 0.0)


# Table II, 28nm CMOS column.  MAC power/area are per MAC (16 per PE).
COMPONENTS_28NM: dict[str, ComponentSpec] = {
    "mac": ComponentSpec("mac", 16, MHz(18.75), 3.02e-04, 0.0011,
                         count_per_pe=16),
    "sram_cache": ComponentSpec("sram_cache", 20480, MHz(300), 2.93e-03,
                                0.0873),
    "temporal_buffer": ComponentSpec("temporal_buffer", 512, MHz(300),
                                     2.70e-05, 0.0025),
    "pmc": ComponentSpec("pmc", None, MHz(300), 4.17e-04, 0.0081),
    "weight_reg": ComponentSpec("weight_reg", 3600, MHz(300), 1.84e-04,
                                0.0173),
    "router": ComponentSpec("router", 36, MHz(300), 7.17e-03, 0.0609),
}

# Table II, 15nm FinFET column.
COMPONENTS_15NM: dict[str, ComponentSpec] = {
    "mac": ComponentSpec("mac", 16, MHz(320), 9.17e-03, 0.0002,
                         count_per_pe=16),
    "sram_cache": ComponentSpec("sram_cache", 20480, GHz(5.12), 2.90e-02,
                                0.0448),
    "temporal_buffer": ComponentSpec("temporal_buffer", 512, GHz(5.12),
                                     2.05e-05, 0.0003),
    "pmc": ComponentSpec("pmc", None, GHz(5.12), 1.39e-03, 0.0013),
    "weight_reg": ComponentSpec("weight_reg", 3600, GHz(5.12), 1.44e-04,
                                0.0020),
    "router": ComponentSpec("router", 36, GHz(5.12), 3.59e-02, 0.0085),
}

#: Table II aggregate rows, used to validate the component sums.
PE_SUM_POWER_W = {"28nm": 1.56e-02, "15nm": 2.13e-01}
PE_SUM_AREA_MM2 = {"28nm": 0.1936, "15nm": 0.0600}
COMPUTE_POWER_W = {"28nm": 2.49e-01, "15nm": 3.41}
COMPUTE_AREA_MM2 = {"28nm": 3.0983, "15nm": 0.9601}
HMC_LOGIC_POWER_W = {"28nm": 1.04, "15nm": 8.67}
DRAM_DIES_POWER_W = {"28nm": 0.568, "15nm": 9.47}


def components_for(technology: str) -> dict[str, ComponentSpec]:
    """The Table II column for a technology node name."""
    try:
        return {"28nm": COMPONENTS_28NM, "15nm": COMPONENTS_15NM}[technology]
    except KeyError:
        raise ConfigurationError(
            f"unknown technology {technology!r}; known: 28nm, 15nm"
        ) from None
