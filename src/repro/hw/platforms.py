"""Cross-platform comparison (paper Table III).

Transcribes the platforms the paper compares against — GPU/mobile-GPU
software stacks and FPGA/ASIC accelerators — and computes the efficiency
columns.  The two Neurocube rows are *not* transcribed: they are rebuilt
from this reproduction's own simulated throughput and modelled power, and
the benchmark checks them against the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Platform:
    """One Table III column.

    Attributes:
        name: short identifier.
        reference: the paper's citation tag.
        programmable: on-line programmability for different NNs.
        hardware: device / process node.
        bit_precision: arithmetic precision in bits (None if unreported).
        throughput_gops: reported GOPs/s.
        includes_dram: whether the throughput accounts for DRAM access
            (the paper's key caveat about ASIC numbers).
        compute_power_w: reported compute power, watts.
        application: reported workload.
        input_neurons: input-layer size (None if unreported).
    """

    name: str
    reference: str
    programmable: bool
    hardware: str
    bit_precision: int | None
    throughput_gops: float
    includes_dram: bool
    compute_power_w: float
    application: str
    input_neurons: int | None

    @property
    def efficiency_gops_per_watt(self) -> float:
        """The Table III efficiency column."""
        if self.compute_power_w <= 0:
            raise ConfigurationError(
                f"{self.name}: power must be positive")
        return self.throughput_gops / self.compute_power_w


PLATFORMS: dict[str, Platform] = {
    "tegra_k1": Platform(
        name="tegra_k1", reference="[2] '15", programmable=True,
        hardware="Tegra K1", bit_precision=None, throughput_gops=76.0,
        includes_dram=True, compute_power_w=11.0,
        application="Scene Labeling (inference)", input_neurons=76800),
    "gtx_780": Platform(
        name="gtx_780", reference="[2] '15", programmable=True,
        hardware="GTX 780", bit_precision=None, throughput_gops=1781.0,
        includes_dram=True, compute_power_w=206.8,
        application="Scene Labeling (inference)", input_neurons=76800),
    "neuflow": Platform(
        name="neuflow", reference="[4] '11", programmable=False,
        hardware="Virtex 6", bit_precision=16, throughput_gops=147.0,
        includes_dram=False, compute_power_w=10.0,
        application="N/A", input_neurons=None),
    "neuflow_asic": Platform(
        name="neuflow_asic", reference="[4] '11", programmable=False,
        hardware="45nm", bit_precision=16, throughput_gops=1164.0,
        includes_dram=False, compute_power_w=5.0,
        application="N/A", input_neurons=None),
    "nn_x": Platform(
        name="nn_x", reference="[5] '14", programmable=False,
        hardware="Xilinx ZC706", bit_precision=16, throughput_gops=227.0,
        includes_dram=True, compute_power_w=8.0,
        application="N/A", input_neurons=None),
    "dadiannao": Platform(
        name="dadiannao", reference="[7] '14", programmable=False,
        hardware="28nm", bit_precision=16, throughput_gops=5580.0,
        includes_dram=False, compute_power_w=15.97,
        application="MNIST (both)", input_neurons=784),
    "origami": Platform(
        name="origami", reference="[8] '15", programmable=False,
        hardware="65nm", bit_precision=12, throughput_gops=203.0,
        includes_dram=False, compute_power_w=1.2,
        application="Scene Labeling (inference)", input_neurons=76800),
    "conti_benini": Platform(
        name="conti_benini", reference="[6] '15", programmable=False,
        hardware="28nm", bit_precision=16, throughput_gops=2.78,
        includes_dram=False, compute_power_w=0.001,
        application="N/A", input_neurons=None),
}

#: The paper's reported Neurocube rows, kept for paper-vs-measured checks
#: (EXPERIMENTS.md) rather than for the comparison table itself.
PAPER_NEUROCUBE = {
    "28nm": {"throughput_gops": 8.0, "compute_power_w": 0.25,
             "total_power_w": 1.86, "efficiency": 31.92},
    "15nm": {"throughput_gops": 132.4, "compute_power_w": 3.41,
             "total_power_w": 21.50, "efficiency": 38.82},
}


def comparison_table(neurocube_rows: dict[str, dict]) -> str:
    """Render Table III with this reproduction's own Neurocube rows.

    Args:
        neurocube_rows: mapping node name -> dict with keys
            ``throughput_gops`` and ``compute_power_w``.
    """
    header = (f"{'platform':<16}{'hw':<14}{'prog':<6}{'GOPs/s':>10}"
              f"{'power W':>10}{'GOPs/s/W':>11}{'DRAM?':>7}")
    rows = [header, "-" * len(header)]
    for node, values in neurocube_rows.items():
        throughput = values["throughput_gops"]
        power = values["compute_power_w"]
        rows.append(f"{'neurocube_' + node:<16}{node:<14}{'yes':<6}"
                    f"{throughput:>10.1f}{power:>10.2f}"
                    f"{throughput / power:>11.2f}{'yes':>7}")
    for platform in PLATFORMS.values():
        rows.append(
            f"{platform.name:<16}{platform.hardware:<14}"
            f"{'yes' if platform.programmable else 'no':<6}"
            f"{platform.throughput_gops:>10.1f}"
            f"{platform.compute_power_w:>10.2f}"
            f"{platform.efficiency_gops_per_watt:>11.2f}"
            f"{'yes' if platform.includes_dram else 'no':>7}")
    return "\n".join(rows)
