"""System power model (paper §VII, Table II).

Three contributions:

* **Compute** — the Neurocube overlay on the logic die: 16 PEs + 16
  routers, summed from the Table II component database.
* **HMC baseline logic die** — [20]'s 6.78 pJ/bit across 16 vaults of
  32 bits at the 5 GHz vault clock (17.3 W), scaled by the PE-clock
  activity factor (0.06 at 28nm) and the node's logic-energy scale
  (0.5 at 15nm per ITRS [33]).
* **DRAM dies** — [20]'s 3.7 pJ/bit under the same activity scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.components import components_for
from repro.hw.tech import TECH_NODES, TechnologyNode
from repro.units import pJ

#: [20]: HMC DRAM access energy.
HMC_DRAM_PJ_PER_BIT = 3.7
#: [20]: HMC logic-die energy (vault controllers, links, interface).
HMC_LOGIC_PJ_PER_BIT = 6.78
#: Vault word width in bits.
VAULT_WORD_BITS = 32


@dataclass(frozen=True)
class SystemPower:
    """Power breakdown of one Neurocube system, watts.

    Attributes:
        compute_w: Neurocube overlay (PEs + routers).
        hmc_logic_w: baseline logic die (vault controllers, SERDES links,
            ECC, interface).
        dram_w: all stacked DRAM dies.
    """

    compute_w: float
    hmc_logic_w: float
    dram_w: float

    @property
    def total_w(self) -> float:
        return self.compute_w + self.hmc_logic_w + self.dram_w

    def efficiency(self, throughput_gops: float,
                   scope: str = "compute") -> float:
        """GOPs/s/W.

        Args:
            throughput_gops: measured throughput.
            scope: "compute" divides by the overlay power (the Table III
                efficiency convention); "total" includes the HMC baseline
                and DRAM.
        """
        if scope == "compute":
            divisor = self.compute_w
        elif scope == "total":
            divisor = self.total_w
        else:
            raise ConfigurationError(
                f"scope must be 'compute' or 'total', got {scope!r}")
        if divisor <= 0:
            raise ConfigurationError("power must be positive")
        return throughput_gops / divisor


class PowerModel:
    """Aggregates Table II components and the HMC baseline.

    Args:
        technology: "28nm" or "15nm".
        n_pe: PE (and router) count.
        n_channels: vault count for the baseline logic/DRAM power.
    """

    def __init__(self, technology: str, n_pe: int = 16,
                 n_channels: int = 16) -> None:
        if technology not in TECH_NODES:
            raise ConfigurationError(
                f"unknown technology {technology!r}")
        self.technology: TechnologyNode = TECH_NODES[technology]
        self.components = components_for(technology)
        self.n_pe = n_pe
        self.n_channels = n_channels

    @property
    def pe_power_w(self) -> float:
        """One PE + its router (the Table II "PE Sum" row)."""
        return sum(c.power_per_pe for c in self.components.values())

    @property
    def compute_power_w(self) -> float:
        """All PEs + routers (Table II "Compute in Neurocube" row)."""
        return self.pe_power_w * self.n_pe

    def _baseline_bits_per_second(self) -> float:
        return (VAULT_WORD_BITS * self.n_channels
                * self.technology.f_vault_hz)

    @property
    def hmc_logic_power_w(self) -> float:
        """Baseline logic die power with activity + node scaling."""
        raw = pJ(HMC_LOGIC_PJ_PER_BIT) * self._baseline_bits_per_second()
        return (raw * self.technology.activity_factor
                * self.technology.logic_energy_scale)

    @property
    def dram_power_w(self) -> float:
        """All DRAM dies, activity scaled (the DRAM itself is unchanged
        between nodes, so no node energy scale applies)."""
        raw = pJ(HMC_DRAM_PJ_PER_BIT) * self._baseline_bits_per_second()
        return raw * self.technology.activity_factor

    def system_power(self) -> SystemPower:
        """Full breakdown."""
        return SystemPower(compute_w=self.compute_power_w,
                           hmc_logic_w=self.hmc_logic_power_w,
                           dram_w=self.dram_power_w)

    def power_density_w_mm2(self) -> dict[str, float]:
        """Per-component power density, for the thermal model's map."""
        return {name: spec.power_density
                for name, spec in self.components.items()}
