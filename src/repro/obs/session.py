"""Ambient trace sessions: capture simulator runs without plumbing.

A :class:`TraceSession` is a context manager that makes tracing ambient:
while one is active, every :class:`repro.core.NeurocubeSimulator`
descriptor run (that was not given explicit options) traces itself with
the session's :class:`~repro.obs.tracer.TraceOptions` and registers its
merged layer trace here.  The experiment runner's ``--trace`` flag and
``tools/ncprof.py record`` both work this way, so experiments need no
tracing parameters of their own.

Sessions nest; the innermost active session wins.  With no session
active (the default), :func:`current_session` returns None and the
simulator's tracing hooks stay disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import Trace, TraceOptions

_ACTIVE: list["TraceSession"] = []


def current_session() -> TraceSession | None:
    """The innermost active session, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@dataclass
class CapturedRun:
    """One descriptor run captured by a session.

    Attributes:
        label: the descriptor name.
        trace: the run's merged trace (global clock local to the run).
        cycles: simulated cycles.
        host_seconds: wall-clock host time of the run.
        stats: the run's :class:`repro.core.metrics.LayerStats` row.
        descriptor: the compiled
            :class:`repro.core.layerdesc.LayerDescriptor` the run
            executed — lets post-run analysis (bottleneck attribution)
            re-evaluate the analytic model against the measured stats.
    """

    label: str
    trace: Trace
    cycles: int
    host_seconds: float
    stats: object = None
    descriptor: object = None


@dataclass
class TraceSession:
    """Collects every traced descriptor run between ``__enter__``/``exit``.

    Attributes:
        options: trace options applied to captured runs.
        runs: captured runs in execution order.
        config: the last simulator configuration seen (for manifests).
    """

    options: TraceOptions = field(default_factory=TraceOptions)
    runs: list[CapturedRun] = field(default_factory=list)
    config: object = None

    def __enter__(self) -> TraceSession:
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.remove(self)

    def add_run(self, label: str, trace: Trace, cycles: int,
                host_seconds: float, stats=None, config=None,
                descriptor=None) -> None:
        """Register one finished descriptor run (simulator callback)."""
        self.runs.append(CapturedRun(label=label, trace=trace,
                                     cycles=cycles,
                                     host_seconds=host_seconds,
                                     stats=stats, descriptor=descriptor))
        if config is not None:
            self.config = config

    @property
    def descriptors(self) -> list:
        """Captured descriptors, in run order (Nones filtered)."""
        return [run.descriptor for run in self.runs
                if run.descriptor is not None]

    def merged_trace(self) -> Trace:
        """All captured runs on one clock, laid end to end in run order."""
        parts = []
        offset = 0
        for run in self.runs:
            parts.append((offset, run.trace))
            offset += run.cycles
        return Trace.merged(parts)

    @property
    def total_cycles(self) -> int:
        return sum(run.cycles for run in self.runs)

    @property
    def total_host_seconds(self) -> float:
        return sum(run.host_seconds for run in self.runs)
