"""Trace exporters: Chrome trace-event JSON and CSV time series.

The Chrome exporter emits the trace-event format that Perfetto and
``chrome://tracing`` load: one process (the simulated cube), one thread
per track (``pe/0``, ``vault/3``, ``noc/1->2``, ``sim``), span events as
``ph: "X"`` complete events, instants as ``ph: "i"``, and sampled
counters as ``ph: "C"`` counter events.  Timestamps are reference-clock
cycles mapped 1:1 onto the format's microsecond field — one display
"us" equals one simulated cycle.

The CSV exporters write the sampled counter series (long format:
``cycle,counter,value``) and the event list, for pandas/spreadsheet
analysis without a trace viewer.
"""

from __future__ import annotations

import csv
import json

from repro.obs.tracer import SPAN_KINDS, Trace

#: The single synthetic "process" all tracks live under.
TRACE_PID = 1


def _track_order(track: str) -> tuple:
    """Sort tracks by class then numerically where possible."""
    prefix, _, rest = track.partition("/")
    return (prefix, rest.zfill(8) if rest.isdigit() else rest)


def to_chrome_trace(trace: Trace) -> dict:
    """Convert a :class:`Trace` to a Chrome trace-event JSON object."""
    tracks = sorted({event[3] for event in trace.events},
                    key=_track_order)
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: list[dict] = [
        {"ph": "M", "pid": TRACE_PID, "tid": 0, "name": "process_name",
         "args": {"name": "neurocube"}}]
    for track, tid in tids.items():
        events.append({"ph": "M", "pid": TRACE_PID, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
    for kind, ts, dur, track, args in trace.events:
        record = {"name": kind, "cat": kind.split(".", 1)[0],
                  "pid": TRACE_PID, "tid": tids[track], "ts": ts}
        if kind in SPAN_KINDS:
            record["ph"] = "X"
            record["dur"] = max(dur, 1)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if args:
            record["args"] = args
        events.append(record)
    for name, points in sorted(trace.counters.samples.items()):
        for cycle, value in points:
            events.append({"ph": "C", "pid": TRACE_PID, "tid": 0,
                           "name": name, "ts": cycle,
                           "args": {"value": value}})
    other: dict = {"clock": "reference cycles (1 us = 1 cycle)",
                   "simulated_cycles": trace.cycles,
                   "dropped_events": trace.dropped_events}
    # Run-level annotations (memo/fault/degradation counters) make the
    # exported file self-describing without its manifest.
    other.update(trace.meta)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": other}


def write_chrome_trace(trace: Trace, path: str) -> None:
    """Write the Chrome trace-event JSON for ``trace`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(trace), handle)


def write_trace(trace: Trace, path: str) -> None:
    """Write the native trace JSON (the ``ncprof`` interchange format)."""
    with open(path, "w") as handle:
        json.dump(trace.to_dict(), handle)


def load_trace(path: str) -> Trace:
    """Load a native trace JSON written by :func:`write_trace`."""
    with open(path) as handle:
        return Trace.from_dict(json.load(handle))


def write_counters_csv(trace: Trace, path: str) -> int:
    """Write the counter series as long-format CSV; returns row count."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cycle", "counter", "value"])
        for name in sorted(trace.counters.samples):
            for cycle, value in trace.counters.samples[name]:
                writer.writerow([cycle, name, value])
                rows += 1
    return rows


def write_events_csv(trace: Trace, path: str) -> int:
    """Write the event list as CSV; returns row count."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "cycle", "duration", "track", "args"])
        for kind, ts, dur, track, args in trace.events:
            writer.writerow([kind, ts, dur, track,
                             json.dumps(args) if args else ""])
            rows += 1
    return rows
