"""ncbench — cross-run performance registry CLI.

Front end for :mod:`repro.obs.registry`: appends run records (manifest
+ attribution + bench metrics), prints metric timelines across recorded
runs, flags drift in the last-K window, and exports the whole store as
one JSON artifact.

Usage (installed as the ``ncbench`` console script; from a checkout use
``python tools/ncbench.py`` with the same arguments)::

    ncbench record --registry DIR [--manifest M.json] [--bench B.json]
                   [--label NAME]
    ncbench timeline --registry DIR [--fingerprint FP] [--metric PATH]
    ncbench regress --registry DIR [--last K] [--threshold 0.30]
    ncbench export --registry DIR [--out FILE]

``record`` turns one-shot artifacts into trajectory points; ``regress``
exits 1 on drift (0 with fewer than 2 recorded runs — an empty or
fresh store is not a regression), so CI can run it informationally.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import SchemaMismatch
from repro.obs.manifest import load_manifest
from repro.obs.registry import DEFAULT_METRICS, RunRegistry


def _load_bench(path: str) -> dict:
    """The per-benchmark stats/extra_info table from a BENCH_*.json."""
    from repro.bench_compare import load_benchmarks

    return load_benchmarks(path)


def cmd_record(args: argparse.Namespace) -> int:
    registry = RunRegistry(args.registry)
    if args.manifest is not None:
        try:
            manifest = load_manifest(args.manifest)
        except SchemaMismatch as error:
            print(f"ncbench: {error}", file=sys.stderr)
            return 2
    else:
        # A bench-only record still needs a manifest shell so the
        # fingerprint/label plumbing has one shape everywhere.
        manifest = {"kind": "neurocube-manifest", "version": 0,
                    "label": args.label or "bench-only",
                    "config_hash": None, "created_unix": time.time()}
    attribution = manifest.get("attribution") or ()
    bench = _load_bench(args.bench) if args.bench is not None else None
    path = registry.record_run(manifest, attribution=attribution,
                               bench=bench, label=args.label)
    print(f"ncbench: recorded {path}")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    registry = RunRegistry(args.registry)
    metrics = tuple(args.metric) if args.metric else DEFAULT_METRICS
    rows = registry.timeline(args.fingerprint, metrics)
    if not rows:
        print("ncbench: no recorded runs")
        return 0
    header = f"{'recorded':<20}{'fingerprint':<18}{'label':<16}"
    header += "".join(f"{metric:>28}" for metric in metrics)
    print(header)
    print("-" * len(header))
    for row in rows:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(
            row["recorded_unix"] or 0))
        line = (f"{stamp:<20}{str(row['fingerprint'])[:16]:<18}"
                f"{str(row['label'])[:14]:<16}")
        for metric in metrics:
            value = row[metric]
            line += (f"{value:>28.6g}"
                     if isinstance(value, (int, float))
                     else f"{'-':>28}")
        print(line)
    print(f"ncbench: {len(rows)} recorded run(s)")
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    registry = RunRegistry(args.registry)
    metrics = tuple(args.metric) if args.metric else DEFAULT_METRICS
    total = len(registry.records(args.fingerprint))
    if total < 2:
        print(f"ncbench: {total} recorded run(s); nothing to compare")
        return 0
    findings = registry.regress(last=args.last,
                                threshold=args.threshold,
                                metrics=metrics,
                                fingerprint=args.fingerprint)
    if findings:
        for finding in findings:
            print(f"ncbench: DRIFT {finding.format()}")
        return 1
    print(f"ncbench: no drift over the last {args.last} run(s) "
          f"(+{args.threshold:.0%} threshold)")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    registry = RunRegistry(args.registry)
    doc = registry.export()
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
        print(f"ncbench: wrote {args.out} "
              f"({len(doc['records'])} record(s))")
    else:
        json.dump(doc, sys.stdout, indent=2)
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ncbench",
        description="Cross-run performance registry CLI.")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="append one run record to the registry")
    record.add_argument("--registry", required=True,
                        help="registry root directory")
    record.add_argument("--manifest", default=None,
                        help="run manifest JSON to embed")
    record.add_argument("--bench", default=None,
                        help="pytest-benchmark JSON to embed")
    record.add_argument("--label", default=None,
                        help="override the record label")
    record.set_defaults(func=cmd_record)

    timeline = sub.add_parser(
        "timeline", help="print metrics across recorded runs")
    timeline.add_argument("--registry", required=True)
    timeline.add_argument("--fingerprint", default=None,
                          help="restrict to one config fingerprint")
    timeline.add_argument("--metric", action="append", default=None,
                          help="dotted metric path (repeatable; "
                               "default: totals.cycles + sim rate)")
    timeline.set_defaults(func=cmd_timeline)

    regress = sub.add_parser(
        "regress", help="flag drift over the last-K recorded runs")
    regress.add_argument("--registry", required=True)
    regress.add_argument("--fingerprint", default=None)
    regress.add_argument("--last", type=int, default=5,
                         help="window size (default 5)")
    regress.add_argument("--threshold", type=float, default=0.30,
                         help="allowed fractional drift "
                              "(default 0.30 = 30%%)")
    regress.add_argument("--metric", action="append", default=None,
                         help="dotted metric path (repeatable)")
    regress.set_defaults(func=cmd_regress)

    export = sub.add_parser(
        "export", help="dump the whole registry as one JSON document")
    export.add_argument("--registry", required=True)
    export.add_argument("--out", default=None,
                        help="output path (default: stdout)")
    export.set_defaults(func=cmd_export)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
