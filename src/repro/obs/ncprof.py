"""ncprof — Neurocube simulator profiling CLI.

Front end for :mod:`repro.obs`: records traced simulator runs, prints
trace summaries, exports Perfetto-loadable Chrome trace JSON or CSV time
series, and diffs run manifests across commits.

Usage (installed as the ``ncprof`` console script; from a checkout use
``python tools/ncprof.py`` with the same arguments)::

    ncprof record [--out DIR] [--label NAME] [--size N] [--workers N]
                  [--sample-interval N] [--no-counters] [--heartbeat N]
    ncprof summary trace_or_manifest.json
    ncprof export trace.json --format chrome|csv [--out PATH]
    ncprof diff manifest_a.json manifest_b.json
    ncprof attribute manifest.json [--json]

``record`` simulates a small traced conv layer end to end and writes
the native trace plus its manifest (plus an OpenMetrics snapshot and
heartbeat JSONL with ``--heartbeat``) — the CI observability smoke
path.  ``attribute`` prints a manifest's per-layer bottleneck verdicts.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.errors import SchemaMismatch
from repro.obs import (
    Trace,
    TraceOptions,
    TraceSession,
    diff_manifests,
    load_manifest,
    load_trace,
    manifest_from_session,
    write_chrome_trace,
    write_counters_csv,
    write_events_csv,
    write_manifest,
    write_trace,
)


def cmd_record(args: argparse.Namespace) -> int:
    """Run a small traced conv layer; write trace + manifest."""
    import dataclasses

    import numpy as np

    from repro.core import NeurocubeConfig, NeurocubeSimulator
    from repro.nn import models

    from repro.obs.live import LiveTelemetry

    config = NeurocubeConfig.hmc_15nm()
    if args.workers is not None:
        config = dataclasses.replace(config, sim_workers=args.workers)
    net = models.single_conv_layer(args.size, args.size, 3, qformat=None)
    options = TraceOptions(counters=not args.no_counters,
                           sample_interval=args.sample_interval)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    heartbeat_path = (out_dir / f"heartbeats_{args.label}.jsonl"
                      if args.heartbeat else None)
    live = LiveTelemetry(
        heartbeat_cycles=args.heartbeat,
        heartbeat_path=(str(heartbeat_path)
                        if heartbeat_path is not None else None))
    with live, TraceSession(options=options) as session:
        NeurocubeSimulator(config).run_network(
            net, np.zeros((1, args.size, args.size)))
    trace_path = out_dir / f"trace_{args.label}.json"
    manifest_path = out_dir / f"manifest_{args.label}.json"
    with live.phase("trace_export"):
        write_trace(session.merged_trace(), str(trace_path))
    manifest = manifest_from_session(args.label, session,
                                     phases=live.phase_breakdown())
    write_manifest(manifest, str(manifest_path))
    print(f"ncprof: recorded {session.total_cycles} cycles over "
          f"{len(session.runs)} layer run(s)")
    print(f"ncprof: wrote {trace_path}")
    print(f"ncprof: wrote {manifest_path}")
    if args.heartbeat:
        metrics_path = out_dir / f"metrics_{args.label}.txt"
        live.write_openmetrics(str(metrics_path))
        print(f"ncprof: wrote {metrics_path} "
              f"({len(live.heartbeats)} heartbeat(s))")
    for entry in manifest.get("attribution", []):
        print(f"ncprof: {entry['name']} -> {entry['verdict']}")
    return 0


def _load_any(path: str) -> tuple[Trace | None, dict | None]:
    """Load ``path`` as a native trace or a manifest, whichever it is."""
    with open(path) as handle:
        data = json.load(handle)
    kind = data.get("kind")
    if kind == "neurocube-trace":
        return Trace.from_dict(data), None
    if kind == "neurocube-manifest":
        return None, data
    raise SystemExit(
        f"ncprof: {path} is neither a neurocube trace nor a manifest "
        f"(kind={kind!r})")


def _print_trace_summary(trace: Trace) -> None:
    print(f"trace: {trace.cycles} cycles, {len(trace.events)} events, "
          f"{trace.dropped_events} dropped")
    counts = trace.kind_counts()
    if counts:
        width = max(len(kind) for kind in counts)
        for kind, count in counts.items():
            print(f"  {kind:<{width}}  {count}")
    if trace.latency.count:
        print(f"packet latency: {trace.latency.count} delivered, "
              f"mean {trace.latency.mean:.1f}, "
              f"p90 {trace.latency.percentile(0.90)}, "
              f"max {trace.latency.max_value} cycles")
    if trace.counters.samples:
        print(f"counters: {len(trace.counters.samples)} series, "
              f"{trace.counters.n_samples} samples")


def _print_manifest_summary(manifest: dict) -> None:
    totals = manifest.get("totals", {})
    print(f"manifest: {manifest.get('label')} "
          f"(config {manifest.get('config_hash')}, "
          f"git {manifest.get('git_rev')})")
    print(f"  {totals.get('layers', 0)} layer(s), "
          f"{totals.get('cycles', 0):.0f} cycles, "
          f"{totals.get('packets', 0):.0f} packets, "
          f"{totals.get('host_seconds', 0):.3f}s host")
    for row in manifest.get("layers", []):
        print(f"  {row.get('name')}: {row.get('kind')} "
              f"{float(row.get('cycles', 0)):.0f} cycles, "
              f"{float(row.get('packets', 0)):.0f} packets")
    summary = manifest.get("trace_summary")
    if summary:
        print(f"  trace: {summary.get('cycles')} cycles, "
              f"events {summary.get('events')}, "
              f"mean latency {summary.get('mean_packet_latency', 0):.1f}")


def cmd_summary(args: argparse.Namespace) -> int:
    trace, manifest = _load_any(args.path)
    if trace is not None:
        _print_trace_summary(trace)
    else:
        _print_manifest_summary(manifest)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    trace = load_trace(args.path)
    stem, _ = os.path.splitext(args.path)
    if args.format == "chrome":
        out = args.out or f"{stem}.chrome.json"
        write_chrome_trace(trace, out)
        print(f"ncprof: wrote {out} "
              f"(load in https://ui.perfetto.dev or chrome://tracing)")
    else:
        base = args.out or stem
        counters_out = f"{base}.counters.csv"
        events_out = f"{base}.events.csv"
        rows = write_counters_csv(trace, counters_out)
        print(f"ncprof: wrote {counters_out} ({rows} rows)")
        rows = write_events_csv(trace, events_out)
        print(f"ncprof: wrote {events_out} ({rows} rows)")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        a, b = load_manifest(args.a), load_manifest(args.b)
    except SchemaMismatch as error:
        # A manifest from a newer checkout is a user-facing situation,
        # not a crash: name the version gap and how to resolve it.
        print(f"ncprof: {error}", file=sys.stderr)
        print("ncprof: re-record the manifest with this checkout, or "
              "diff with the checkout that wrote it", file=sys.stderr)
        return 2
    print(diff_manifests(a, b))
    return 0


def cmd_attribute(args: argparse.Namespace) -> int:
    """Print a manifest's per-layer bottleneck verdicts."""
    try:
        manifest = load_manifest(args.path)
    except SchemaMismatch as error:
        print(f"ncprof: {error}", file=sys.stderr)
        return 2
    rows = manifest.get("attribution", [])
    if not rows:
        print(f"ncprof: {args.path} carries no attribution block "
              f"(schema v{manifest.get('version')}; record with a "
              f"trace session on a current checkout to embed verdicts)")
        return 1
    if args.json:
        json.dump(rows, sys.stdout, indent=2)
        print()
        return 0
    from repro.obs.attribution import LayerAttribution

    print(f"attribution: {manifest.get('label')} "
          f"(config {manifest.get('config_hash')})")
    for row in rows:
        print(f"  {LayerAttribution.from_dict(row).format()}")
    phases = manifest.get("phases")
    if phases:
        shown = ", ".join(f"{name}={seconds:.3f}s"
                          for name, seconds in phases.items())
        print(f"  host phases: {shown}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ncprof", description="Neurocube simulator profiling CLI.")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run a small traced conv layer, write "
                       "trace+manifest")
    record.add_argument("--out", default=".",
                        help="output directory (default: cwd)")
    record.add_argument("--label", default="smoke",
                        help="run label used in output file names")
    record.add_argument("--size", type=int, default=24,
                        help="conv layer input height/width (default 24)")
    record.add_argument("--workers", type=int, default=None,
                        help="override sim_workers")
    record.add_argument("--sample-interval", type=int, default=64,
                        help="cycles between counter samples")
    record.add_argument("--no-counters", action="store_true",
                        help="record events only")
    record.add_argument("--heartbeat", type=int, default=0,
                        help="live-telemetry heartbeat period in cycles "
                             "(0 disables; also writes an OpenMetrics "
                             "snapshot and heartbeat JSONL)")
    record.set_defaults(func=cmd_record)

    summary = sub.add_parser(
        "summary", help="print a trace or manifest summary")
    summary.add_argument("path", help="trace_*.json or manifest_*.json")
    summary.set_defaults(func=cmd_summary)

    export = sub.add_parser(
        "export", help="convert a native trace to Chrome JSON or CSV")
    export.add_argument("path", help="native trace_*.json")
    export.add_argument("--format", required=True,
                        choices=("chrome", "csv"))
    export.add_argument("--out", default=None,
                        help="output path (chrome) or basename (csv)")
    export.set_defaults(func=cmd_export)

    diff = sub.add_parser("diff", help="compare two run manifests")
    diff.add_argument("a", help="baseline manifest")
    diff.add_argument("b", help="current manifest")
    diff.set_defaults(func=cmd_diff)

    attribute = sub.add_parser(
        "attribute", help="print a manifest's per-layer bottleneck "
                          "verdicts")
    attribute.add_argument("path", help="manifest_*.json")
    attribute.add_argument("--json", action="store_true",
                           help="emit the raw attribution block as JSON")
    attribute.set_defaults(func=cmd_attribute)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
