"""Run manifests: the structured JSON record written next to outputs.

A manifest pins down *what produced a result*: the full configuration
and its content hash, the git revision of the working tree, the seed,
per-layer simulated statistics, and host timing — enough to re-run the
exact experiment and to ``ncprof diff`` two runs across commits.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time

from repro.errors import SchemaMismatch

MANIFEST_KIND = "neurocube-manifest"
#: Current schema: v2 adds the optional ``attribution`` (per-layer
#: bottleneck verdicts) and ``phases`` (host wall-clock breakdown)
#: blocks.  Readers tolerate every version in
#: :data:`SUPPORTED_MANIFEST_VERSIONS` — all v2 additions are optional
#: keys, so v1 manifests read (and diff) cleanly.
MANIFEST_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2)


def config_to_dict(config) -> dict:
    """A :class:`~repro.core.NeurocubeConfig` as plain JSON data."""
    return _plain(dataclasses.asdict(config))


def _plain(value):
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def config_digest(config) -> str:
    """Content hash of a configuration (stable across processes).

    Hashes the canonical JSON of the config's field tree, so two configs
    compare equal iff every architectural parameter matches — the
    ``ncprof diff`` guard against comparing apples to oranges.
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def git_revision(cwd: str | None = None) -> str | None:
    """The working tree's HEAD revision, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _layer_entry(stats) -> dict:
    """One per-layer manifest row from a LayerStats-like object."""
    if dataclasses.is_dataclass(stats) and not isinstance(stats, type):
        return _plain(dataclasses.asdict(stats))
    return _plain(dict(stats))


def build_manifest(label: str, *, config=None, layers=(), seed=None,
                   host_seconds: float = 0.0, trace=None,
                   extra: dict | None = None, attribution=(),
                   phases: dict | None = None) -> dict:
    """Assemble a manifest dict.

    Args:
        label: run name (experiment id, network name, ...).
        config: the :class:`NeurocubeConfig` the run used (None when the
            run never touched the cycle simulator).
        layers: per-layer stats objects (``LayerStats`` or dicts).
        seed: the run's RNG seed, if any.
        host_seconds: wall-clock host time of the simulation.
        trace: optional :class:`~repro.obs.tracer.Trace` whose summary
            (event counts, latency) is embedded.
        extra: free-form additional fields, stored under ``"extra"``.
        attribution: per-layer
            :class:`~repro.obs.attribution.LayerAttribution` verdicts
            (or pre-serialised dicts), embedded under ``"attribution"``
            (v2).
        phases: host wall-clock phase breakdown (phase name ->
            seconds), embedded under ``"phases"`` (v2).
    """
    layer_rows = [_layer_entry(layer) for layer in layers]
    total_cycles = sum(float(row.get("cycles", 0)) for row in layer_rows)
    manifest: dict = {
        "kind": MANIFEST_KIND,
        "version": MANIFEST_VERSION,
        "label": label,
        "created_unix": time.time(),
        "git_rev": git_revision(),
        "seed": seed,
        "config": None if config is None else config_to_dict(config),
        "config_hash": None if config is None else config_digest(config),
        "host": {"python": platform.python_version(),
                 "platform": platform.platform()},
        "layers": layer_rows,
        "totals": {
            "layers": len(layer_rows),
            "cycles": total_cycles,
            "packets": sum(float(row.get("packets", 0))
                           for row in layer_rows),
            "host_seconds": host_seconds,
            "simulated_cycles_per_second": (
                total_cycles / host_seconds if host_seconds > 0 else 0.0),
        },
    }
    if trace is not None:
        manifest["trace_summary"] = {
            "cycles": trace.cycles,
            "events": trace.kind_counts(),
            "dropped_events": trace.dropped_events,
            "mean_packet_latency": trace.latency.mean,
            "p90_packet_latency": trace.latency.percentile(0.90),
        }
    if attribution:
        manifest["attribution"] = [
            entry.to_dict() if hasattr(entry, "to_dict")
            else _plain(dict(entry))
            for entry in attribution]
    if phases:
        manifest["phases"] = _plain(dict(phases))
    if extra:
        manifest["extra"] = _plain(extra)
    return manifest


def manifest_from_session(label: str, session, extra=None,
                          phases: dict | None = None) -> dict:
    """Build a manifest from a finished :class:`TraceSession`.

    When the session captured descriptors alongside its stats (and a
    config), per-layer bottleneck attribution is computed and embedded
    — the manifest carries the verdicts that explain its own numbers.
    """
    layers = [run.stats for run in session.runs if run.stats is not None]
    trace = session.merged_trace() if session.runs else None
    attribution = ()
    descriptors = getattr(session, "descriptors", [])
    if session.config is not None and descriptors and layers:
        # Imported lazily: attribution builds on repro.core.analytic,
        # which sits above this module in the layering.
        from repro.obs.attribution import attribute_layers

        attribution = attribute_layers(layers, descriptors,
                                       session.config)
    return build_manifest(label, config=session.config, layers=layers,
                          host_seconds=session.total_host_seconds,
                          trace=trace, extra=extra,
                          attribution=attribution, phases=phases)


def write_manifest(manifest: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_manifest(path: str) -> dict:
    """Load and validate one manifest.

    Raises :class:`ValueError` when the file is not a manifest at all
    (wrong ``kind``), and :class:`~repro.errors.SchemaMismatch` when it
    *is* one but declares a schema version this build cannot read —
    the distinction lets ``ncprof diff`` explain "re-record with this
    checkout" instead of a KeyError deep in the diff.
    """
    with open(path) as handle:
        data = json.load(handle)
    if data.get("kind") != MANIFEST_KIND:
        raise ValueError(f"{path} is not a neurocube manifest")
    version = data.get("version")
    if version not in SUPPORTED_MANIFEST_VERSIONS:
        raise SchemaMismatch(
            f"{path} has manifest schema version {version!r}; this "
            f"build reads {SUPPORTED_MANIFEST_VERSIONS}")
    return data


def diff_manifests(a: dict, b: dict) -> str:
    """Human-readable comparison of two manifests.

    Reports config-hash and revision provenance, per-layer cycle and
    packet deltas (matched by layer name), and total deltas.
    """
    lines = [f"manifest diff: {a.get('label')} -> {b.get('label')}"]
    ver_a, ver_b = a.get("version"), b.get("version")
    if ver_a != ver_b:
        # Cross-version diffs are supported (every field below reads
        # with .get defaults); the note explains why one side may lack
        # v2-only blocks like attribution or phases.
        lines.append(f"  schema: v{ver_a} vs v{ver_b} "
                     f"(fields absent in the older schema are skipped)")
    hash_a, hash_b = a.get("config_hash"), b.get("config_hash")
    if hash_a != hash_b:
        lines.append(f"  CONFIG MISMATCH: {hash_a} vs {hash_b} — "
                     f"deltas compare different architectures")
    else:
        lines.append(f"  config: {hash_a} (identical)")
    lines.append(f"  git: {a.get('git_rev')} -> {b.get('git_rev')}")
    rows_a = {row.get("name"): row for row in a.get("layers", [])}
    rows_b = {row.get("name"): row for row in b.get("layers", [])}
    for name in list(rows_a) + [n for n in rows_b if n not in rows_a]:
        in_a, in_b = rows_a.get(name), rows_b.get(name)
        if in_a is None or in_b is None:
            side = "b only" if in_a is None else "a only"
            lines.append(f"  {name}: {side}")
            continue
        cyc_a, cyc_b = float(in_a.get("cycles", 0)), float(
            in_b.get("cycles", 0))
        delta = cyc_b - cyc_a
        rel = f" ({delta / cyc_a:+.1%})" if cyc_a else ""
        lines.append(
            f"  {name}: cycles {cyc_a:.0f} -> {cyc_b:.0f} "
            f"[{delta:+.0f}{rel}], packets "
            f"{float(in_a.get('packets', 0)):.0f} -> "
            f"{float(in_b.get('packets', 0)):.0f}")
    tot_a, tot_b = a.get("totals", {}), b.get("totals", {})
    cyc_a = float(tot_a.get("cycles", 0))
    cyc_b = float(tot_b.get("cycles", 0))
    delta = cyc_b - cyc_a
    rel = f" ({delta / cyc_a:+.1%})" if cyc_a else ""
    lines.append(f"  TOTAL cycles {cyc_a:.0f} -> {cyc_b:.0f}"
                 f" [{delta:+.0f}{rel}]")
    lines.append(
        f"  host {float(tot_a.get('host_seconds', 0)):.3f}s -> "
        f"{float(tot_b.get('host_seconds', 0)):.3f}s")
    return "\n".join(lines)
