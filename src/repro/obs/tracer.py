"""Cycle-level tracer for the Neurocube simulator.

One :class:`Tracer` records a single pass: typed events (PNG injections,
NoC hops, vault read bursts, MAC fires, cache parks/evicts, skip-ahead
jumps) with local-clock timestamps, sampled counters, and a packet
latency histogram.  :meth:`Tracer.finish` freezes the collection into a
picklable :class:`Trace`, and :meth:`Trace.merged` stitches per-pass
traces into one run-global trace by offsetting each pass into the global
clock — the offsets come from the serial fold order, so a parallel run's
merged trace is identical to the serial run's.

Overhead discipline: every instrumentation hook in the simulator is
guarded by a single ``if tracer is not None`` test, so the tracing-off
hot path costs one pointer comparison per *event site* (not per cycle)
and simulated results are bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.obs.counters import CounterSeries, LatencyHistogram

# ----------------------------------------------------------------------
# event taxonomy (see docs/observability.md)
# ----------------------------------------------------------------------

#: PNG encapsulated a vault word and injected one packet into the NoC.
PNG_INJECT = "png.inject"
#: one packet crossed one NoC link (link stage move).
NOC_HOP = "noc.hop"
#: one packet left the fabric at its destination's local port.
NOC_DELIVER = "noc.deliver"
#: one vault word read: issue to data-return (duration = access latency).
VAULT_READ = "vault.read"
#: one MAC operation: fire to OP-counter advance (duration = n_mac).
MAC_FIRE = "pe.fire"
#: a future-op packet parked in a PE cache sub-bank.
CACHE_PARK = "cache.park"
#: parked packets recovered for the new OP (sub-bank search, §V-B).
CACHE_EVICT = "cache.evict"
#: the simulator skipped a quiescent stretch in one jump.
SKIP_AHEAD = "sim.skip"
#: one fault was injected (DRAM flip, link transient, jitter, stuck MAC).
FAULT_INJECT = "fault.inject"
#: the link retry protocol acted (retransmission scheduled or packet lost).
NOC_RETRY = "noc.retry"
#: the simulator saved (or resumed from) a cycle checkpoint.
SIM_CHECKPOINT = "sim.checkpoint"

#: Events drawn as spans (Chrome ``ph: "X"``); the rest are instants.
SPAN_KINDS = frozenset({VAULT_READ, MAC_FIRE, SKIP_AHEAD})

ALL_KINDS = (PNG_INJECT, NOC_HOP, NOC_DELIVER, VAULT_READ, MAC_FIRE,
             CACHE_PARK, CACHE_EVICT, SKIP_AHEAD, FAULT_INJECT,
             NOC_RETRY, SIM_CHECKPOINT)


@dataclass(frozen=True)
class TraceOptions:
    """What a tracing run collects.

    Attributes:
        events: record typed events (spans and instants).
        counters: record sampled time-series counters.
        sample_interval: cycles between counter samples.
        max_events: safety cap on stored events per pass; once reached,
            further events are counted in ``Trace.dropped_events``
            instead of stored, so a runaway trace degrades gracefully.
    """

    events: bool = True
    counters: bool = True
    sample_interval: int = 64
    max_events: int | None = 1_000_000

    def __post_init__(self) -> None:
        if self.sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {self.sample_interval}")


class Trace:
    """A frozen trace: events, counter series, latency histogram.

    Events are compact tuples ``(kind, ts, dur, track, args)`` with
    ``ts``/``dur`` in reference-clock cycles, ``track`` a stable agent
    label (``"pe/3"``, ``"vault/0"``, ``"noc/1->2"``, ``"sim"``), and
    ``args`` a small dict or None.  The same structure describes one
    pass, one layer, or a whole network run — :meth:`merged` is closed
    over it.
    """

    __slots__ = ("events", "counters", "latency", "cycles",
                 "dropped_events", "meta")

    def __init__(self, events: list | None = None,
                 counters: CounterSeries | None = None,
                 latency: LatencyHistogram | None = None,
                 cycles: int = 0, dropped_events: int = 0,
                 meta: dict | None = None) -> None:
        self.events: list[tuple] = events if events is not None else []
        self.counters = counters if counters is not None else CounterSeries()
        self.latency = latency if latency is not None else LatencyHistogram()
        self.cycles = cycles
        self.dropped_events = dropped_events
        # Run-level annotations (memo/fault/degradation counters) merged
        # in by the session; rides into exports so a trace file is
        # self-describing without its manifest.
        self.meta: dict = meta if meta is not None else {}

    # -- introspection --------------------------------------------------

    def events_of_kind(self, kind: str) -> list[tuple]:
        """All events of one taxonomy kind, in time order."""
        return [event for event in self.events if event[0] == kind]

    def kind_counts(self) -> dict[str, int]:
        """Event count per kind (stable taxonomy order, zeros omitted)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event[0]] = counts.get(event[0], 0) + 1
        return {kind: counts[kind] for kind in ALL_KINDS if kind in counts}

    def tracks(self) -> list[str]:
        """Sorted distinct track labels."""
        return sorted({event[3] for event in self.events})

    # -- merging --------------------------------------------------------

    @classmethod
    def merged(cls, parts: Iterable[tuple[int, Trace]]) -> Trace:
        """Stitch per-pass traces into one global-clock trace.

        Args:
            parts: ``(offset, trace)`` pairs in serial fold order; each
                trace's local cycle 0 maps to ``offset`` on the global
                clock.
        """
        out = cls()
        for offset, part in parts:
            out.events.extend(
                (kind, ts + offset, dur, track, args)
                for kind, ts, dur, track, args in part.events)
            out.counters.merge_from(part.counters, offset)
            out.latency.merge_from(part.latency)
            out.cycles = max(out.cycles, offset + part.cycles)
            out.dropped_events += part.dropped_events
            if part.meta:
                out.meta.update(part.meta)
        return out

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible native trace representation."""
        doc = {"kind": "neurocube-trace", "version": 1,
               "cycles": self.cycles,
               "dropped_events": self.dropped_events,
               "events": [[kind, ts, dur, track, args]
                          for kind, ts, dur, track, args in self.events],
               "counters": self.counters.to_dict(),
               "latency": self.latency.to_dict()}
        if self.meta:
            doc["meta"] = self.meta
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> Trace:
        if data.get("kind") != "neurocube-trace":
            raise ValueError(
                "not a neurocube trace (missing kind='neurocube-trace')")
        events = [(str(kind), int(ts), int(dur), str(track), args)
                  for kind, ts, dur, track, args in data.get("events", [])]
        return cls(events=events,
                   counters=CounterSeries.from_dict(
                       data.get("counters", {})),
                   latency=LatencyHistogram.from_dict(
                       data.get("latency", {})),
                   cycles=int(data.get("cycles", 0)),
                   dropped_events=int(data.get("dropped_events", 0)),
                   meta=dict(data.get("meta", {})))

    def __repr__(self) -> str:
        return (f"Trace(cycles={self.cycles}, events={len(self.events)}, "
                f"counters={len(self.counters.samples)}, "
                f"delivered={self.latency.count})")


class Tracer:
    """Collects one pass's events and counters (local clock from 0).

    The simulator hands one tracer to every agent of a pass; agents call
    the typed hook methods below.  ``bind_sampler`` attaches a callable
    ``(cycle) -> iterable[(name, value)]`` that reads the live agents'
    gauges; :meth:`on_cycle` invokes it whenever a sample is due
    (including the catch-up sample after a skip-ahead jump).
    """

    __slots__ = ("options", "_events", "_counters", "_latency", "_sampler",
                 "_next_sample", "_last_sample", "_capacity",
                 "dropped_events")

    def __init__(self, options: TraceOptions | None = None) -> None:
        self.options = options if options is not None else TraceOptions()
        self._events: list[tuple] = []
        self._counters = CounterSeries()
        self._latency = LatencyHistogram()
        self._sampler: Callable | None = None
        self._next_sample = 0
        self._last_sample = -1
        self._capacity = self.options.max_events
        self.dropped_events = 0

    # -- event intake ---------------------------------------------------

    def _emit(self, kind: str, ts: int, dur: int, track: str,
              args: dict | None) -> None:
        if not self.options.events:
            return
        if self._capacity is None or len(self._events) < self._capacity:
            self._events.append((kind, ts, dur, track, args))
        else:
            self.dropped_events += 1

    def png_inject(self, cycle: int, vault_id: int, packet) -> None:
        """One packet left a PNG for the fabric."""
        self._emit(PNG_INJECT, cycle, 0, f"png/{vault_id}",
                   {"dst": packet.dst, "op": packet.op_id,
                    "kind": packet.kind.value})

    def noc_hop(self, cycle: int, link: str) -> None:
        """One packet crossed one link."""
        self._emit(NOC_HOP, cycle, 0, f"noc/{link}", None)

    def packet_delivered(self, cycle: int, node: int, latency: int,
                         packet) -> None:
        """One packet ejected at its destination (fills the histogram)."""
        self._latency.record(latency)
        self._emit(NOC_DELIVER, cycle, 0, f"noc/eject@{node}",
                   {"latency": latency, "kind": packet.kind.value})

    def vault_read(self, vault_id: int, issued: int, completed: int,
                   address: int) -> None:
        """One vault word read issued (span covers the access latency)."""
        self._emit(VAULT_READ, issued, completed - issued,
                   f"vault/{vault_id}", {"addr": address})

    def mac_fire(self, cycle: int, pe_id: int, duration: int, lanes: int,
                 op: int) -> None:
        """One MAC operation fired on a PE (span covers the MAC period)."""
        self._emit(MAC_FIRE, cycle, duration, f"pe/{pe_id}",
                   {"lanes": lanes, "op": op})

    def cache_park(self, cycle: int, pe_id: int, op_id: int,
                   occupancy: int) -> None:
        """A future-op packet parked in a PE cache sub-bank."""
        self._emit(CACHE_PARK, cycle, 0, f"pe/{pe_id}",
                   {"op": op_id, "fill": occupancy})

    def cache_evict(self, cycle: int, pe_id: int, recovered: int,
                    stall: int) -> None:
        """Parked packets recovered after a sub-bank search."""
        self._emit(CACHE_EVICT, cycle, 0, f"pe/{pe_id}",
                   {"recovered": recovered, "stall": stall})

    def skip_ahead(self, cycle: int, jump: int) -> None:
        """The simulator jumped ``jump`` quiescent cycles at ``cycle``."""
        self._emit(SKIP_AHEAD, cycle, jump, "sim", {"jump": jump})

    def fault_inject(self, cycle: int, model: str, track: str,
                     args: dict | None = None) -> None:
        """One fault injected by a :class:`repro.faults.FaultInjector`."""
        payload = {"model": model}
        if args:
            payload.update(args)
        self._emit(FAULT_INJECT, cycle, 0, track, payload)

    def noc_retry(self, cycle: int, link: str,
                  args: dict | None = None) -> None:
        """The link retry protocol scheduled a retransmission or gave up."""
        self._emit(NOC_RETRY, cycle, 0, f"noc/{link}", args)

    def sim_checkpoint(self, cycle: int, action: str, label: str) -> None:
        """A checkpoint was saved (``action="save"``) or resumed from."""
        self._emit(SIM_CHECKPOINT, cycle, 0, "sim",
                   {"action": action, "label": label})

    # -- counter sampling -----------------------------------------------

    def bind_sampler(self, sampler: Callable) -> None:
        """Attach the per-pass gauge reader built by the simulator."""
        self._sampler = sampler

    def sample_jump_limit(self, cycle: int) -> int | None:
        """Largest skip-ahead jump that lands before the next sample.

        The simulator clamps its event-horizon jumps with this so every
        sample is taken on a *stepped* cycle, exactly where lock-step
        stepping would take it — sample positions, spans, and therefore
        the delta-based counter values (MAC utilisation, vault
        bandwidth) are bit-identical with and without skip-ahead.
        Returns None when counter sampling is off (no clamp needed).
        """
        if self._sampler is None:
            return None
        boundary = (self._next_sample if self._next_sample > cycle
                    else cycle + 1)
        return boundary - cycle - 1

    def on_cycle(self, cycle: int) -> None:
        """Sample the counters when a sample is due.

        Called once per stepped cycle; with skip-ahead the simulator
        clamps jumps to :meth:`sample_jump_limit`, so every call that
        samples lands on the same cycle lock-step stepping would
        sample.
        """
        if self._sampler is None or cycle < self._next_sample:
            return
        for name, value in self._sampler(cycle):
            self._counters.add(name, cycle, value)
        self._last_sample = cycle
        interval = self.options.sample_interval
        self._next_sample = cycle - cycle % interval + interval

    # -- completion -----------------------------------------------------

    def finish(self, cycles: int) -> Trace:
        """Freeze the collection into a :class:`Trace`.

        Takes a final counter sample at the pass-end cycle so every
        series covers the full pass.
        """
        if self._sampler is not None and self._last_sample != cycles:
            for name, value in self._sampler(cycles):
                self._counters.add(name, cycles, value)
        return Trace(events=self._events, counters=self._counters,
                     latency=self._latency, cycles=cycles,
                     dropped_events=self.dropped_events)
