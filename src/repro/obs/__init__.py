"""Observability for the Neurocube simulator (`repro.obs`).

Cycle-level tracing with typed event spans, sampled time-series
counters, packet-latency histograms, Chrome-trace/CSV exporters,
per-run JSON manifests, live telemetry (phase timers, heartbeats,
OpenMetrics snapshots), per-layer bottleneck attribution, and an
append-only cross-run registry — see ``docs/observability.md`` for the
event taxonomy, the manifest schema, the stable OpenMetrics names, and
how to open traces in Perfetto.

The package has three entry points:

* explicit — ``NeurocubeSimulator(config, trace=TraceOptions())``;
* ambient — ``with TraceSession() as session: ...`` captures every
  descriptor run in the block (how the runner's ``--trace`` works);
  ``with LiveTelemetry(...)`` likewise activates phase timers and
  heartbeats for the block;
* CLI — ``tools/ncprof.py record | summary | export | diff |
  attribute`` and ``tools/ncbench.py record | timeline | regress |
  export``.

:mod:`repro.obs.attribution` is imported on demand (not re-exported
here): it builds on :mod:`repro.core.analytic`, and importing it at
package load would cycle through ``repro.core``.
"""

from repro.obs.counters import CounterSeries, LatencyHistogram
from repro.obs.export import (
    load_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
    write_events_csv,
    write_trace,
)
from repro.obs.live import (
    METRIC_FAMILIES,
    PHASES,
    LiveTelemetry,
    MetricsRegistry,
    ambient_phase,
    current_live,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    SUPPORTED_MANIFEST_VERSIONS,
    build_manifest,
    config_digest,
    diff_manifests,
    git_revision,
    load_manifest,
    manifest_from_session,
    write_manifest,
)
from repro.obs.registry import RunRegistry
from repro.obs.session import CapturedRun, TraceSession, current_session
from repro.obs.tracer import (
    ALL_KINDS,
    CACHE_EVICT,
    CACHE_PARK,
    MAC_FIRE,
    NOC_DELIVER,
    NOC_HOP,
    PNG_INJECT,
    SKIP_AHEAD,
    SPAN_KINDS,
    VAULT_READ,
    Trace,
    TraceOptions,
    Tracer,
)

__all__ = [
    "ALL_KINDS",
    "CACHE_EVICT",
    "CACHE_PARK",
    "CapturedRun",
    "CounterSeries",
    "LatencyHistogram",
    "LiveTelemetry",
    "MANIFEST_VERSION",
    "METRIC_FAMILIES",
    "MetricsRegistry",
    "MAC_FIRE",
    "NOC_DELIVER",
    "NOC_HOP",
    "PHASES",
    "PNG_INJECT",
    "RunRegistry",
    "SKIP_AHEAD",
    "SPAN_KINDS",
    "SUPPORTED_MANIFEST_VERSIONS",
    "Trace",
    "TraceOptions",
    "TraceSession",
    "Tracer",
    "VAULT_READ",
    "ambient_phase",
    "build_manifest",
    "config_digest",
    "current_live",
    "current_session",
    "diff_manifests",
    "git_revision",
    "load_manifest",
    "load_trace",
    "manifest_from_session",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_counters_csv",
    "write_events_csv",
    "write_manifest",
    "write_trace",
]
