"""Observability for the Neurocube simulator (`repro.obs`).

Cycle-level tracing with typed event spans, sampled time-series
counters, packet-latency histograms, Chrome-trace/CSV exporters and
per-run JSON manifests — see ``docs/observability.md`` for the event
taxonomy, the manifest schema, and how to open traces in Perfetto.

The package has three entry points:

* explicit — ``NeurocubeSimulator(config, trace=TraceOptions())``;
* ambient — ``with TraceSession() as session: ...`` captures every
  descriptor run in the block (how the runner's ``--trace`` works);
* CLI — ``tools/ncprof.py record | summary | export | diff``.
"""

from repro.obs.counters import CounterSeries, LatencyHistogram
from repro.obs.export import (
    load_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
    write_events_csv,
    write_trace,
)
from repro.obs.manifest import (
    build_manifest,
    config_digest,
    diff_manifests,
    git_revision,
    load_manifest,
    manifest_from_session,
    write_manifest,
)
from repro.obs.session import CapturedRun, TraceSession, current_session
from repro.obs.tracer import (
    ALL_KINDS,
    CACHE_EVICT,
    CACHE_PARK,
    MAC_FIRE,
    NOC_DELIVER,
    NOC_HOP,
    PNG_INJECT,
    SKIP_AHEAD,
    SPAN_KINDS,
    VAULT_READ,
    Trace,
    TraceOptions,
    Tracer,
)

__all__ = [
    "ALL_KINDS",
    "CACHE_EVICT",
    "CACHE_PARK",
    "CapturedRun",
    "CounterSeries",
    "LatencyHistogram",
    "MAC_FIRE",
    "NOC_DELIVER",
    "NOC_HOP",
    "PNG_INJECT",
    "SKIP_AHEAD",
    "SPAN_KINDS",
    "Trace",
    "TraceOptions",
    "TraceSession",
    "Tracer",
    "VAULT_READ",
    "build_manifest",
    "config_digest",
    "current_session",
    "diff_manifests",
    "git_revision",
    "load_manifest",
    "load_trace",
    "manifest_from_session",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_counters_csv",
    "write_events_csv",
    "write_manifest",
    "write_trace",
]
