"""Per-layer bottleneck attribution: measured counters vs predictions.

The paper's headline claims are utilization numbers (MAC efficiency,
vault bandwidth use), but a cycle count alone does not say *why* a
layer underperforms.  This module joins the simulator's measured
counters — MAC utilization, stall ledgers, packet traffic — against the
closed-form predictions of :class:`repro.core.analytic.AnalyticModel`
and :class:`repro.core.roofline.RooflineModel`, and emits one verdict
per layer:

* ``compute-bound`` — the MAC array's demand dominates the analytic
  breakdown; more arithmetic would need more PEs or MAC lanes.
* ``vault-bandwidth-bound`` — the vault supply term dominates; the
  layer sits under the slanted roofline roof.
* ``noc-bound`` — mesh link capacity, destination inbound ports, or FC
  source serialisation dominates.
* ``stall-dominated`` — whatever the static bound, the *measured* run
  spent the majority of its cycles in cache-search or injection stalls,
  so out-of-order arrival (or fault retries), not raw capacity, set the
  cycle count.

Each :class:`LayerAttribution` carries the measured-vs-predicted gap
and the top contributing counters, and renders on
:meth:`repro.core.metrics.RunReport.to_table`, in the v2 JSON manifest
(:mod:`repro.obs.manifest`), and via ``ncprof attribute``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analytic import AnalyticModel
from repro.core.roofline import RooflineModel
from repro.errors import ConfigurationError

#: The closed verdict vocabulary, in display precedence order.
#: "intercube-link-bound" is emitted only by multi-cube sharded runs
#: (:mod:`repro.core.shard`) for layers whose inter-cube exchange
#: barrier costs at least as much as the slowest cube's compute.
VERDICTS = ("compute-bound", "vault-bandwidth-bound", "noc-bound",
            "stall-dominated", "intercube-link-bound")

#: Fraction of measured cycles the stall ledgers must cover before the
#: static verdict is overridden with ``stall-dominated``.
STALL_DOMINANCE = 0.5

#: Analytic-breakdown term -> verdict it argues for.
_TERM_VERDICTS = (
    ("compute", "compute-bound"),
    ("supply", "vault-bandwidth-bound"),
    ("link", "noc-bound"),
    ("last_hop", "noc-bound"),
    ("broadcast", "noc-bound"),
)

#: Measured LayerStats counter fields ranked for ``top_counters``.
_COUNTER_FIELDS = ("pe_busy_cycles", "pe_idle_cycles",
                   "search_stall_cycles", "inject_stall_cycles")


@dataclass(frozen=True)
class LayerAttribution:
    """One layer's bottleneck verdict with its supporting evidence.

    Attributes:
        name, kind: from the layer's descriptor.
        verdict: one of :data:`VERDICTS`.
        measured_cycles: the simulated (or modeled) cycle count.
        predicted_cycles: the analytic model's prediction for the same
            descriptor (total across passes).
        gap: ``(measured - predicted) / predicted`` — positive when the
            simulator ran slower than the model predicts.
        predicted_bound: the analytic breakdown's binding term name.
        stall_share: fraction of measured cycles covered by the per-PE
            search-stall and per-channel inject-stall ledgers (0.0 for
            analytic rows, which carry no measured counters).
        shares: analytic term -> fraction of the breakdown total.
        top_counters: the largest nonzero measured counters,
            ``(field, value)`` descending — the evidence trail.
        roofline: intensity / attainable / achieved from the roofline
            model, or None when the descriptor streams no DRAM bytes.
    """

    name: str
    kind: str
    verdict: str
    measured_cycles: float
    predicted_cycles: float
    gap: float
    predicted_bound: str
    stall_share: float
    shares: dict = field(default_factory=dict)
    top_counters: tuple = ()
    roofline: dict | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "verdict": self.verdict,
            "measured_cycles": self.measured_cycles,
            "predicted_cycles": self.predicted_cycles,
            "gap": self.gap,
            "predicted_bound": self.predicted_bound,
            "stall_share": self.stall_share,
            "shares": dict(self.shares),
            "top_counters": [list(pair) for pair in self.top_counters],
            "roofline": self.roofline,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> LayerAttribution:
        return cls(
            name=doc["name"], kind=doc["kind"], verdict=doc["verdict"],
            measured_cycles=doc["measured_cycles"],
            predicted_cycles=doc["predicted_cycles"], gap=doc["gap"],
            predicted_bound=doc["predicted_bound"],
            stall_share=doc["stall_share"],
            shares=dict(doc.get("shares", {})),
            top_counters=tuple(tuple(pair) for pair
                               in doc.get("top_counters", [])),
            roofline=doc.get("roofline"))

    def format(self) -> str:
        """One human line: verdict, gap, leading evidence."""
        parts = [f"{self.name}: {self.verdict}",
                 f"gap {100 * self.gap:+.1f}% vs analytic"]
        if self.stall_share > 0:
            parts.append(f"stalls {100 * self.stall_share:.0f}% "
                         "of cycles")
        if self.top_counters:
            name, value = self.top_counters[0]
            parts.append(f"top counter {name}={value:.0f}")
        if self.roofline is not None:
            parts.append(
                f"roofline {self.roofline['achieved_gops']:.1f}"
                f"/{self.roofline['attainable_gops']:.1f} GOPs/s")
        return " | ".join(parts)


def _verdict_from_breakdown(breakdown: dict) -> tuple[str, dict]:
    """Static verdict plus per-term shares from an analytic breakdown."""
    denominator = sum(breakdown[term] for term, _ in _TERM_VERDICTS)
    shares = {term: (breakdown[term] / denominator if denominator
                     else 0.0)
              for term, _ in _TERM_VERDICTS}
    best_term, best_verdict = _TERM_VERDICTS[0]
    for term, verdict in _TERM_VERDICTS:
        if breakdown[term] > breakdown[best_term]:
            best_term, best_verdict = term, verdict
    return best_verdict, shares


def _measured_stall_share(layer, cycles: float, n_pe: int,
                          n_channels: int) -> float:
    """Fraction of the layer's cycles covered by stall ledgers.

    Counters accumulate across agents, so each ledger is normalised by
    its population (PEs for cache-search stalls, channels for
    injection stalls) before comparing against the reference clock.
    """
    if cycles <= 0:
        return 0.0
    search = getattr(layer, "search_stall_cycles", 0) / max(1, n_pe)
    inject = (getattr(layer, "inject_stall_cycles", 0)
              / max(1, n_channels))
    return min(1.0, (search + inject) / cycles)


def attribute_layers(layers, descriptors, config) -> list[
        LayerAttribution]:
    """Attribute every layer with a matching descriptor.

    Args:
        layers: :class:`repro.core.metrics.LayerStats` rows (measured
            or analytic — analytic rows carry zero stall counters and
            so never flip to ``stall-dominated``).
        descriptors: the compiled
            :class:`repro.core.layerdesc.LayerDescriptor` list; layers
            are matched to descriptors by name, unmatched layers are
            skipped (the verdict needs the analytic prediction).
        config: the :class:`repro.core.config.NeurocubeConfig` the run
            used.
    """
    by_name = {desc.name: desc for desc in descriptors}
    analytic = AnalyticModel(config)
    roofline = RooflineModel(config)
    out: list[LayerAttribution] = []
    for layer in layers:
        desc = by_name.get(layer.name)
        if desc is None:
            continue
        breakdown = analytic.pass_breakdown(desc)
        predicted = breakdown["total"] * desc.passes
        verdict, shares = _verdict_from_breakdown(breakdown)
        stall_share = _measured_stall_share(
            layer, layer.cycles, config.n_pe, config.n_channels)
        if stall_share >= STALL_DOMINANCE:
            verdict = "stall-dominated"
        gap = ((layer.cycles - predicted) / predicted if predicted
               else 0.0)
        counters = sorted(
            ((name, float(getattr(layer, name, 0)))
             for name in _COUNTER_FIELDS),
            key=lambda pair: pair[1], reverse=True)
        top = tuple(pair for pair in counters if pair[1] > 0)[:3]
        try:
            point = roofline.point_for(desc)
            roof = {"intensity": point.intensity,
                    "attainable_gops": point.attainable_gops,
                    "achieved_gops": point.achieved_gops}
        except ConfigurationError:
            roof = None
        out.append(LayerAttribution(
            name=layer.name, kind=layer.kind, verdict=verdict,
            measured_cycles=float(layer.cycles),
            predicted_cycles=float(predicted), gap=gap,
            predicted_bound=breakdown["bound"], stall_share=stall_share,
            shares=shares, top_counters=top, roofline=roof))
    return out
