"""Cross-run performance registry: append-only run-history store.

``BENCH_*.json`` files and run manifests are one-shots — each CI run
overwrites the last, so performance *trajectories* (is the simulator
getting slower release over release? did a config change move the
conv benchmark?) are invisible.  This module keeps them: an
append-only, fingerprint-keyed store of schema-versioned run records
(manifest + attribution + bench metrics), one JSON file per record:

    <root>/<fingerprint>/run-<time_ns>-<pid>.json

The fingerprint is the manifest's ``config_hash`` (PR-2's canonical
config digest), so records are only ever compared against runs of the
same architecture — the same apples-to-apples guard ``ncprof diff``
applies.  Writes are atomic (PID-tempfile + ``os.replace``, the
:mod:`repro.memo.store` idiom) and existing records are never mutated,
so concurrent recorders cannot corrupt each other.

Like :mod:`repro.memo.store`, this module is an NC109-allowlisted
persistence root: direct ``open()``/``pickle`` persistence elsewhere in
the cycle model stays banned.  Unlike the memo store it lives in the
obs layer, so wall-clock reads are legal (record timestamps are
provenance, not simulation state).

The ``ncbench`` CLI (:mod:`repro.obs.ncbench`) fronts this store with
``record`` / ``timeline`` / ``regress`` / ``export`` subcommands, and
``bench_compare --registry`` prints informational drift notes against
the last-K recorded runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, SchemaMismatch

REGISTRY_KIND = "neurocube-run-record"
REGISTRY_VERSION = 1

#: Partition for records whose manifest carries no config hash.
UNFINGERPRINTED = "unfingerprinted"

#: ``timeline``'s default metric menu: dotted paths into a record.
DEFAULT_METRICS = ("totals.cycles", "totals.simulated_cycles_per_second")


def metric_value(record: dict, path: str):
    """Resolve a dotted metric path inside one record.

    Paths resolve against the record root; ``totals.*`` is shorthand
    for ``manifest.totals.*`` and ``bench.*`` digs into the recorded
    bench metrics.  Returns None when any segment is missing.
    """
    parts = path.split(".")
    if parts[0] == "totals":
        parts = ["manifest", "totals"] + parts[1:]
    node = record
    for part in parts:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


@dataclass(frozen=True)
class DriftFinding:
    """One metric's drift verdict over the last-K recorded runs."""

    fingerprint: str
    metric: str
    latest: float
    reference: float
    ratio: float
    window: int

    def format(self) -> str:
        return (f"{self.fingerprint}/{self.metric}: latest "
                f"{self.latest:.6g} vs best-of-{self.window} "
                f"{self.reference:.6g} ({self.ratio:.2f}x)")


class RunRegistry:
    """Append-only, fingerprint-keyed store of run records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- writing --------------------------------------------------------

    def record_run(self, manifest: dict, *, attribution=None,
                   bench: dict | None = None,
                   label: str | None = None) -> Path:
        """Append one record; returns the path written.

        Args:
            manifest: a run manifest dict (any supported schema
                version); its ``config_hash`` keys the partition.
            attribution: optional list of
                :class:`repro.obs.attribution.LayerAttribution` (or
                already-plain dicts) to embed.
            bench: optional bench-metrics dict (e.g. the per-benchmark
                ``stats``/``extra_info`` table from a BENCH_*.json).
            label: overrides the manifest's label on the record.
        """
        if not isinstance(manifest, dict):
            raise ConfigurationError(
                f"manifest must be a dict, got {type(manifest).__name__}")
        fingerprint = manifest.get("config_hash") or UNFINGERPRINTED
        rows = []
        for entry in attribution or ():
            rows.append(entry.to_dict() if hasattr(entry, "to_dict")
                        else dict(entry))
        record = {
            "kind": REGISTRY_KIND,
            "version": REGISTRY_VERSION,
            "recorded_unix": time.time(),
            "label": label or manifest.get("label"),
            "fingerprint": fingerprint,
            "manifest": manifest,
            "attribution": rows,
            "bench": bench or {},
        }
        directory = self.root / fingerprint
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"run-{time.time_ns():020d}-{os.getpid()}.json"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    # -- reading --------------------------------------------------------

    def fingerprints(self) -> list[str]:
        """Partition names present in the store, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(entry.name for entry in self.root.iterdir()
                      if entry.is_dir())

    def records(self, fingerprint: str | None = None) -> list[dict]:
        """All records (optionally one partition), oldest first.

        Unreadable or foreign-kind files are skipped silently — the
        store is append-only, so a torn write can only be a stray
        tempfile from a crashed recorder.  A record with a *newer*
        schema version raises :class:`~repro.errors.SchemaMismatch`
        loudly instead: silently dropping it would make a regression
        window quietly shorter than requested.
        """
        out: list[tuple[float, str, dict]] = []
        parts = ([fingerprint] if fingerprint is not None
                 else self.fingerprints())
        for part in parts:
            directory = self.root / part
            if not directory.is_dir():
                continue
            for path in directory.glob("run-*.json"):
                try:
                    record = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                if (not isinstance(record, dict)
                        or record.get("kind") != REGISTRY_KIND):
                    continue
                if record.get("version", 0) > REGISTRY_VERSION:
                    raise SchemaMismatch(
                        f"{path} has registry schema version "
                        f"{record.get('version')}; this build reads "
                        f"<= {REGISTRY_VERSION}")
                out.append((float(record.get("recorded_unix", 0.0)),
                            path.name, record))
        out.sort(key=lambda item: (item[0], item[1]))
        return [record for _, _, record in out]

    def timeline(self, fingerprint: str | None = None,
                 metrics: tuple[str, ...] = DEFAULT_METRICS) -> list[
                     dict]:
        """Per-record metric rows, oldest first."""
        rows = []
        for record in self.records(fingerprint):
            row = {
                "recorded_unix": record.get("recorded_unix"),
                "label": record.get("label"),
                "fingerprint": record.get("fingerprint"),
                "git_rev": (record.get("manifest") or {}).get("git_rev"),
            }
            for metric in metrics:
                row[metric] = metric_value(record, metric)
            rows.append(row)
        return rows

    def regress(self, *, last: int = 5, threshold: float = 0.30,
                metrics: tuple[str, ...] = DEFAULT_METRICS,
                fingerprint: str | None = None) -> list[DriftFinding]:
        """Flag drift of the newest record against its predecessors.

        For each fingerprint partition with >= 2 records in the
        ``last``-record window, compares the newest record's metrics
        against the best among the earlier window records.  "Worse" is
        metric-directional: cycles and ``*seconds*`` metrics regress
        upward, rate metrics (``*_per_second``) regress downward.
        """
        findings: list[DriftFinding] = []
        parts = ([fingerprint] if fingerprint is not None
                 else self.fingerprints())
        for part in parts:
            window = self.records(part)[-last:]
            if len(window) < 2:
                continue
            latest, earlier = window[-1], window[:-1]
            for metric in metrics:
                current = metric_value(latest, metric)
                history = [metric_value(record, metric)
                           for record in earlier]
                history = [value for value in history
                           if isinstance(value, (int, float)) and value]
                if not isinstance(current, (int, float)) or not history:
                    continue
                higher_is_better = metric.endswith("_per_second")
                reference = (max(history) if higher_is_better
                             else min(history))
                if reference == 0:
                    continue
                ratio = current / reference
                regressed = (ratio < 1.0 / (1.0 + threshold)
                             if higher_is_better
                             else ratio > 1.0 + threshold)
                if regressed:
                    findings.append(DriftFinding(
                        fingerprint=part, metric=metric,
                        latest=float(current),
                        reference=float(reference), ratio=ratio,
                        window=len(window)))
        return findings

    def export(self) -> dict:
        """The whole store as one JSON document (artifact upload)."""
        return {
            "kind": "neurocube-run-registry-export",
            "version": REGISTRY_VERSION,
            "fingerprints": self.fingerprints(),
            "records": self.records(),
        }
