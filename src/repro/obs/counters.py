"""Sampled time-series counters and packet-latency histograms.

The tracer samples a set of named counters every ``sample_interval``
cycles (per-PE MAC utilisation, per-vault bandwidth, per-link NoC
occupancy, cache fill, ...) into a :class:`CounterSeries`, and folds
every delivered packet's inject-to-eject latency into a
:class:`LatencyHistogram` with power-of-two buckets.  Both structures
are plain data — picklable across the parallel executor's process
boundary and JSON-serialisable for the exporters.
"""

from __future__ import annotations


class CounterSeries:
    """Named time series of ``(cycle, value)`` samples.

    Samples for one counter are appended in cycle order; merging shifts
    the incoming series by a clock offset, which is how per-pass series
    (each starting at cycle 0) are stitched into one run-global series.
    """

    __slots__ = ("samples",)

    def __init__(self,
                 samples: dict[str, list[tuple[int, float]]] | None = None,
                 ) -> None:
        self.samples: dict[str, list[tuple[int, float]]] = samples or {}

    def add(self, name: str, cycle: int, value: float) -> None:
        """Append one sample to counter ``name``."""
        self.samples.setdefault(name, []).append((cycle, value))

    def merge_from(self, other: "CounterSeries", offset: int = 0) -> None:
        """Fold ``other``'s samples in, shifting cycles by ``offset``."""
        for name, points in other.samples.items():
            series = self.samples.setdefault(name, [])
            series.extend((cycle + offset, value)
                          for cycle, value in points)

    @property
    def n_samples(self) -> int:
        """Total samples across all counters."""
        return sum(len(points) for points in self.samples.values())

    def to_dict(self) -> dict:
        return {name: [[cycle, value] for cycle, value in points]
                for name, points in self.samples.items()}

    @classmethod
    def from_dict(cls, data: dict) -> CounterSeries:
        return cls({name: [(int(c), float(v)) for c, v in points]
                    for name, points in data.items()})


class LatencyHistogram:
    """Power-of-two-bucketed histogram of packet latencies.

    Bucket ``i`` counts latencies in ``[2**i, 2**(i+1))`` (bucket 0 is
    ``[0, 2)``).  The exact count and sum are kept alongside, so the
    mean is not a bucket approximation.
    """

    __slots__ = ("buckets", "count", "total", "max_value")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    def record(self, latency: int) -> None:
        """Fold one latency observation in."""
        bucket = latency.bit_length() - 1 if latency > 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += latency
        if latency > self.max_value:
            self.max_value = latency

    def merge_from(self, other: "LatencyHistogram") -> None:
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    @property
    def mean(self) -> float:
        """Exact mean latency in cycles."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given percentile."""
        if not self.count:
            return 0
        threshold = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= threshold:
                return 2 ** (bucket + 1) - 1
        return self.max_value

    def to_dict(self) -> dict:
        return {"buckets": {str(k): v for k, v in self.buckets.items()},
                "count": self.count, "total": self.total,
                "max": self.max_value}

    @classmethod
    def from_dict(cls, data: dict) -> LatencyHistogram:
        hist = cls()
        hist.buckets = {int(k): int(v)
                        for k, v in data.get("buckets", {}).items()}
        hist.count = int(data.get("count", 0))
        hist.total = int(data.get("total", 0))
        hist.max_value = int(data.get("max", 0))
        return hist
