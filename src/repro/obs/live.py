"""Live telemetry: metrics registry, host-phase timers, heartbeats.

PR 2's tracer records *one run* for post-mortem analysis; this module
watches a *process*: a :class:`MetricsRegistry` of gauges, counters and
histograms fed by the simulator's sampled counters and by host-phase
wall timers (compile / simulate / memo-I/O / checkpoint / trace-export),
snapshotted on a cycle-period heartbeat during long runs.  Snapshots
export two ways:

* **OpenMetrics text** (:meth:`MetricsRegistry.to_openmetrics`) — the
  ``/metrics`` payload a future ``repro.serve`` front-end will expose to
  a Prometheus scraper.  The metric names below are a *stable contract*
  (see ``docs/observability.md``); renaming one is a breaking change.
* **JSONL heartbeat records** (:attr:`LiveTelemetry.heartbeats`, or
  appended to ``heartbeat_path``) — one JSON object per heartbeat, for
  offline trend analysis without a scrape target.

Activation mirrors :class:`repro.obs.session.TraceSession`: a
:class:`LiveTelemetry` is a context manager; while one is active the
simulator feeds it (compile/simulate phases, per-layer counters,
heartbeat cycle advance) through ``is not None`` guards.  With no
session active — the default — every hook is a single pointer
comparison and simulated results are bit-identical (the PR-2/PR-5 guard
convention, pinned by ``tests/obs/test_live.py``).

This module is the **only** sanctioned home for wall-clock phase timing
(``time.monotonic``): nclint's NC110 bans direct monotonic reads
everywhere else, so every phase second lands in one registry instead of
scattered ad-hoc ``time.monotonic()`` deltas.
"""

from __future__ import annotations

import json
import re
import time
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.obs.counters import LatencyHistogram

#: Heartbeat-record schema version (bump on layout changes).
HEARTBEAT_VERSION = 1

#: The host-phase taxonomy: every wall-clock second of a run is billed
#: to exactly one of these on ``neurocube_phase_seconds``.
PHASES = ("compile", "simulate", "memo_io", "checkpoint", "trace_export")

#: The stable OpenMetrics families this package emits, with types and
#: help strings.  ``docs/observability.md`` documents these as the
#: ``repro.serve`` scrape contract; add freely, never rename.
METRIC_FAMILIES: dict[str, tuple[str, str]] = {
    "neurocube_phase_seconds": (
        "counter", "host wall-clock seconds per phase"),
    "neurocube_sim_cycles": (
        "counter", "simulated reference-clock cycles"),
    "neurocube_layer_runs": (
        "counter", "descriptor runs completed"),
    "neurocube_macs_fired": (
        "counter", "MAC operations executed"),
    "neurocube_packets_delivered": (
        "counter", "NoC packets delivered"),
    "neurocube_stall_cycles": (
        "counter", "PE/PNG stall cycles by kind"),
    "neurocube_degraded_results": (
        "counter", "fault-degraded results recorded"),
    "neurocube_memo_lookups": (
        "counter", "persistent memo-store lookups by outcome"),
    "neurocube_heartbeats": (
        "counter", "heartbeat snapshots emitted"),
    "neurocube_pe_mac_utilization": (
        "gauge", "MAC-array busy fraction of the last layer run"),
    "neurocube_intercube_link_occupancy": (
        "gauge", "per-cube SerDes link busy fraction of a sharded run"),
    "neurocube_layer_cycles": (
        "histogram", "per-layer simulated cycle distribution"),
    # -- repro.serve service families ----------------------------------
    "neurocube_serve_queue_depth": (
        "gauge", "jobs waiting in the admission queue"),
    "neurocube_serve_admission_rejects": (
        "counter", "submissions rejected by reason"),
    "neurocube_serve_jobs": (
        "counter", "jobs reaching a terminal state, by state"),
    "neurocube_serve_job_retries": (
        "counter", "job attempts restarted after a worker failure"),
    "neurocube_serve_worker_restarts": (
        "counter", "supervised workers respawned, by cause"),
    "neurocube_serve_plan_cache": (
        "counter", "plan-cache lookups by outcome"),
    "neurocube_serve_job_latency_ms": (
        "histogram", "submit-to-terminal job latency by tenant"),
}

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    """Escape a label value per the OpenMetrics text format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class MetricsRegistry:
    """Named gauges, counters and histograms with OpenMetrics export.

    Families are declared on first touch; a family keeps one sample per
    distinct label set.  Counters only ever go up (monotonic within one
    registry), gauges are set, histograms fold integer observations
    into the tracer's power-of-two
    :class:`~repro.obs.counters.LatencyHistogram` buckets.
    """

    def __init__(self) -> None:
        self._types: dict[str, str] = {}
        self._values: dict[str, dict[tuple, float]] = {}
        self._hists: dict[str, dict[tuple, LatencyHistogram]] = {}

    # -- intake ---------------------------------------------------------

    def _declare(self, family: str, mtype: str) -> None:
        if not _NAME_RE.match(family):
            raise ConfigurationError(
                f"invalid metric family name {family!r}")
        known = self._types.get(family)
        if known is None:
            declared = METRIC_FAMILIES.get(family)
            if declared is not None and declared[0] != mtype:
                raise ConfigurationError(
                    f"metric {family} is declared as {declared[0]}, "
                    f"not {mtype}")
            self._types[family] = mtype
        elif known != mtype:
            raise ConfigurationError(
                f"metric {family} already registered as {known}, "
                f"cannot reuse as {mtype}")

    def set_gauge(self, family: str, value: float, **labels) -> None:
        """Set a gauge sample (last write wins)."""
        self._declare(family, "gauge")
        self._values.setdefault(family, {})[_label_key(labels)] = (
            float(value))

    def inc(self, family: str, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to a counter sample (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {family} increment must be >= 0, got {amount}")
        self._declare(family, "counter")
        samples = self._values.setdefault(family, {})
        key = _label_key(labels)
        samples[key] = samples.get(key, 0.0) + float(amount)

    def observe(self, family: str, value: int, **labels) -> None:
        """Fold one observation into a histogram sample."""
        self._declare(family, "histogram")
        hists = self._hists.setdefault(family, {})
        key = _label_key(labels)
        if key not in hists:
            hists[key] = LatencyHistogram()
        hists[key].record(max(0, int(value)))

    # -- introspection --------------------------------------------------

    def value(self, family: str, **labels) -> float:
        """Current value of one gauge/counter sample (0.0 if unset)."""
        return self._values.get(family, {}).get(_label_key(labels), 0.0)

    def families(self) -> list[str]:
        """Declared family names, sorted."""
        return sorted(self._types)

    def snapshot(self) -> dict:
        """JSON-compatible dump of every sample (the heartbeat body)."""
        out: dict[str, dict] = {}
        for family in self.families():
            mtype = self._types[family]
            entry: dict = {"type": mtype, "samples": []}
            if mtype == "histogram":
                for key, hist in sorted(self._hists.get(family,
                                                        {}).items()):
                    entry["samples"].append(
                        {"labels": dict(key), **hist.to_dict()})
            else:
                for key, value in sorted(self._values.get(family,
                                                          {}).items()):
                    entry["samples"].append(
                        {"labels": dict(key), "value": value})
            out[family] = entry
        return out

    # -- OpenMetrics export ---------------------------------------------

    def to_openmetrics(self) -> str:
        """Render every family as OpenMetrics text (``/metrics`` body).

        Counter sample names get the mandated ``_total`` suffix;
        histograms render cumulative ``_bucket{le=...}`` series plus
        ``_count``/``_sum``.  Ends with the ``# EOF`` terminator.
        """
        lines: list[str] = []
        for family in self.families():
            mtype = self._types[family]
            lines.append(f"# TYPE {family} {mtype}")
            declared = METRIC_FAMILIES.get(family)
            if declared is not None:
                lines.append(f"# HELP {family} {declared[1]}")
            if mtype == "histogram":
                self._render_histogram(lines, family)
                continue
            suffix = "_total" if mtype == "counter" else ""
            for key, value in sorted(self._values.get(family,
                                                      {}).items()):
                lines.append(
                    f"{family}{suffix}{_render_labels(key)} {value:.9g}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def _render_histogram(self, lines: list[str], family: str) -> None:
        for key, hist in sorted(self._hists.get(family, {}).items()):
            cumulative = 0
            for bucket in sorted(hist.buckets):
                cumulative += hist.buckets[bucket]
                upper = float(2 ** (bucket + 1))
                lines.append(
                    f"{family}_bucket"
                    f"{_render_labels(key, (('le', f'{upper:g}'),))} "
                    f"{cumulative}")
            lines.append(
                f"{family}_bucket"
                f"{_render_labels(key, (('le', '+Inf'),))} {hist.count}")
            lines.append(
                f"{family}_count{_render_labels(key)} {hist.count}")
            lines.append(
                f"{family}_sum{_render_labels(key)} {hist.total}")


class _PhaseTimer:
    """Context manager billing a wall-clock span to one phase counter."""

    __slots__ = ("_registry", "_phase", "_start")

    def __init__(self, registry: MetricsRegistry, phase: str) -> None:
        self._registry = registry
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> _PhaseTimer:
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.inc("neurocube_phase_seconds",
                           time.monotonic() - self._start,
                           phase=self._phase)


class _NullTimer:
    """No-op stand-in so call sites need no ambient-session branching."""

    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_TIMER = _NullTimer()

_ACTIVE: list["LiveTelemetry"] = []


def current_live() -> LiveTelemetry | None:
    """The innermost active live-telemetry session, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


def ambient_phase(name: str):
    """Phase timer on the ambient session; a no-op with none active.

    The cycle model calls this for its compile/simulate spans so the
    telemetry-off path stays one list probe plus one ``is None`` test.
    """
    live = current_live()
    if live is None:
        return _NULL_TIMER
    return live.phase(name)


def ambient_timer(name: str) -> Callable | None:
    """A zero-arg phase-timer factory bound to the ambient session.

    Returns None with no session active — the shape the optional
    ``timer=`` hooks on :class:`repro.memo.store.MemoStore` and
    :class:`repro.faults.checkpoint.CheckpointStore` expect, so the
    stores stay free of any observability import.
    """
    live = current_live()
    if live is None:
        return None
    return live.phase_factory(name)


class LiveTelemetry:
    """Ambient live-telemetry session: registry + heartbeat policy.

    Args:
        heartbeat_cycles: emit one heartbeat snapshot whenever the
            simulated-cycle total crosses a multiple of this period.
            0 (the default) disables the heartbeat entirely — metrics
            still accumulate, nothing is snapshotted automatically.
        heartbeat_path: optional JSONL file heartbeat records are
            appended to (one JSON object per line); records are always
            kept in :attr:`heartbeats` regardless.
        registry: share an existing :class:`MetricsRegistry`; a fresh
            one is created by default.
    """

    def __init__(self, heartbeat_cycles: int = 0,
                 heartbeat_path: str | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        if heartbeat_cycles < 0:
            raise ConfigurationError(
                f"heartbeat_cycles must be >= 0, got {heartbeat_cycles}")
        self.registry = registry if registry is not None else (
            MetricsRegistry())
        self.heartbeat_cycles = heartbeat_cycles
        self.heartbeat_path = heartbeat_path
        self.heartbeats: list[dict] = []
        self._cycles = 0
        self._seq = 0

    # -- ambient stack --------------------------------------------------

    def __enter__(self) -> LiveTelemetry:
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.remove(self)

    # -- phase timing ---------------------------------------------------

    def phase(self, name: str) -> _PhaseTimer:
        """Context manager billing its span to ``name``."""
        return _PhaseTimer(self.registry, name)

    def phase_factory(self, name: str) -> Callable[[], _PhaseTimer]:
        """A zero-arg callable producing :meth:`phase` timers."""
        def factory() -> _PhaseTimer:
            return _PhaseTimer(self.registry, name)
        return factory

    def phase_seconds(self, name: str) -> float:
        """Accumulated wall seconds billed to one phase."""
        return self.registry.value("neurocube_phase_seconds", phase=name)

    def phase_breakdown(self) -> dict[str, float]:
        """Nonzero phase -> seconds, in taxonomy order."""
        out = {}
        for phase in PHASES:
            seconds = self.phase_seconds(phase)
            if seconds:
                out[phase] = seconds
        return out

    # -- simulator feed -------------------------------------------------

    @property
    def cycles(self) -> int:
        """Simulated cycles advanced through this session."""
        return self._cycles

    def observe_layer(self, name: str, cycles: int,
                      host_seconds: float, *, n_pe: int = 1,
                      macs_fired: int = 0, pe_busy_cycles: int = 0,
                      search_stall_cycles: int = 0,
                      inject_stall_cycles: int = 0, packets: int = 0,
                      degraded: int = 0,
                      memo_stats=None) -> None:
        """Fold one finished descriptor run into the registry.

        Called by :meth:`repro.core.NeurocubeSimulator.run_descriptor`
        behind an ``is not None`` guard; also advances the heartbeat
        clock by the run's cycles.
        """
        reg = self.registry
        reg.inc("neurocube_layer_runs", 1, layer=name)
        reg.inc("neurocube_phase_seconds", max(0.0, host_seconds),
                phase="simulate")
        reg.inc("neurocube_macs_fired", macs_fired)
        reg.inc("neurocube_packets_delivered", packets)
        reg.inc("neurocube_stall_cycles", search_stall_cycles,
                kind="search")
        reg.inc("neurocube_stall_cycles", inject_stall_cycles,
                kind="inject")
        if degraded:
            reg.inc("neurocube_degraded_results", degraded)
        if cycles > 0 and n_pe > 0:
            reg.set_gauge("neurocube_pe_mac_utilization",
                          pe_busy_cycles / (cycles * n_pe), layer=name)
        reg.observe("neurocube_layer_cycles", cycles)
        if memo_stats is not None:
            for outcome in ("hits", "misses", "rejects"):
                count = getattr(memo_stats, outcome, 0)
                if count:
                    reg.inc("neurocube_memo_lookups", count,
                            outcome=outcome)
        self.advance_cycles(cycles, label=name)

    def advance_cycles(self, cycles: int, label: str = "") -> None:
        """Advance the heartbeat clock; snapshot on crossed boundaries.

        One heartbeat is emitted per advance that crosses at least one
        period boundary (a multi-period jump collapses to one snapshot:
        the interior ones would all show the same registry state, since
        metrics only change between advances).
        """
        if cycles <= 0:
            return
        self.registry.inc("neurocube_sim_cycles", cycles)
        before = self._cycles
        self._cycles += cycles
        period = self.heartbeat_cycles
        if period and self._cycles // period > before // period:
            self.heartbeat_now(label=label)

    def heartbeat_now(self, label: str = "") -> dict:
        """Snapshot the registry into one heartbeat record, now."""
        self.registry.inc("neurocube_heartbeats", 1)
        record = {
            "kind": "neurocube-heartbeat",
            "version": HEARTBEAT_VERSION,
            "seq": self._seq,
            "cycles": self._cycles,
            "unix": time.time(),
            "label": label,
            "metrics": self.registry.snapshot(),
        }
        self._seq += 1
        self.heartbeats.append(record)
        if self.heartbeat_path is not None:
            with open(self.heartbeat_path, "a") as handle:
                handle.write(json.dumps(record) + "\n")
        return record

    # -- export ---------------------------------------------------------

    def to_openmetrics(self) -> str:
        """The session's current ``/metrics`` payload."""
        return self.registry.to_openmetrics()

    def write_openmetrics(self, path: str) -> None:
        """Write the current OpenMetrics snapshot to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_openmetrics())


def attribute_report(report, config, descriptors=()):
    """Per-layer bottleneck attribution for a finished run report.

    Thin delegation so the cycle model — which may import this module
    as part of the telemetry hook protocol (NC102) — never imports
    :mod:`repro.obs.attribution` (which itself builds on
    :mod:`repro.core.analytic`) at module level.
    """
    from repro.obs.attribution import attribute_layers

    return attribute_layers(report.layers, descriptors, config)


def intercube_attribution(name, kind, exchange_cycles, compute_cycles):
    """Attribution row for an exchange-bound multi-cube sharded layer.

    Thin delegation for the same NC102 reason as
    :func:`attribute_report`: the sharded executor
    (:mod:`repro.core.shard`) calls this for layers whose inter-cube
    link barrier costs at least as much as the slowest cube's compute,
    without importing :mod:`repro.obs.attribution` at module level.
    """
    from repro.obs.attribution import LayerAttribution

    total = exchange_cycles + compute_cycles
    return LayerAttribution(
        name=name, kind=kind, verdict="intercube-link-bound",
        measured_cycles=float(total),
        predicted_cycles=float(compute_cycles),
        gap=(exchange_cycles / compute_cycles if compute_cycles
             else 0.0),
        predicted_bound="intercube_link",
        stall_share=0.0,
        shares={"intercube_link": (exchange_cycles / total if total
                                   else 0.0),
                "compute": compute_cycles / total if total else 0.0},
        top_counters=(("intercube_exchange_cycles",
                       float(exchange_cycles)),))
