"""Cycle-level model of one HMC vault (or generic DRAM channel).

A vault accepts read requests (item addresses), issues them at burst-mode
rate, and completes them ``access_latency_cycles`` later.  When constructed
with a backing array it also returns real data, which lets the system
simulator compute numerically exact layer outputs through the full
PNG -> NoC -> PE path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.memory.timing import ChannelTiming

#: Each data item is one 16-bit state or weight (paper §III-B1).
ITEM_BITS = 16


@dataclass(frozen=True)
class CompletedRead:
    """A word returned by the vault.

    Attributes:
        address: item address of the word's first item.
        items: raw fixed-point values, ``items_per_word`` of them.
        tag: opaque request tag (the PNG stores packet metadata here).
        issued_cycle: cycle the request left the queue.
        completed_cycle: cycle the data became visible.
    """

    address: int
    items: tuple[int, ...]
    tag: object
    issued_cycle: int
    completed_cycle: int


class VaultChannel:
    """One vault: request queue + burst-mode issue + fixed-latency return.

    Args:
        timing: channel timing parameters.
        vault_id: identifier used in packets and error messages.
        data: optional backing store of raw 16-bit items (int array).
            Reads beyond its end, or with no store at all, return zeros —
            timing-only mode.
        tracer: optional :class:`repro.obs.Tracer`; when set, every word
            read issue emits a ``vault.read`` span covering the access
            latency.  None (the default) keeps the issue loop hook-free.
        injector: optional :class:`repro.faults.FaultInjector`; when
            set, issued reads may complete late (latency jitter).  DRAM
            bit-flips are applied downstream, at the PNG's packetise
            step, where per-item addresses are known.
    """

    def __init__(self, timing: ChannelTiming, vault_id: int = 0,
                 data: np.ndarray | None = None, tracer=None,
                 injector=None) -> None:
        if timing.word_bits % ITEM_BITS:
            raise ConfigurationError(
                f"word size {timing.word_bits} not a multiple of the "
                f"{ITEM_BITS}-bit item size")
        self.timing = timing
        self.vault_id = vault_id
        self.tracer = tracer
        self.injector = injector
        self.data = None if data is None else np.asarray(data, dtype=np.int64)
        self.items_per_word = timing.word_bits // ITEM_BITS
        self.cycle = 0
        self._queue: deque[tuple[int, object]] = deque()
        self._in_flight: deque[CompletedRead] = deque()
        self._burst_pos = 0
        self._gap_remaining = 0
        self._issue_credit = 0.0
        # statistics
        self.words_served = 0
        self.busy_cycles = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------

    def enqueue_read(self, address: int, tag: object = None) -> None:
        """Queue a word read starting at item ``address``."""
        if address < 0:
            raise ConfigurationError(f"negative address {address}")
        self._queue.append((address, tag))

    def enqueue_reads(self, addresses, tags=None) -> None:
        """Queue many word reads; ``tags`` parallels ``addresses``."""
        if tags is None:
            for address in addresses:
                self.enqueue_read(address)
        else:
            for address, tag in zip(addresses, tags, strict=True):
                self.enqueue_read(address, tag)

    @property
    def pending(self) -> int:
        """Requests queued but not yet issued."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while any request is queued or in flight."""
        return bool(self._queue) or bool(self._in_flight)

    def _read_items(self, address: int) -> tuple[int, ...]:
        if self.data is None:
            return (0,) * self.items_per_word
        end = address + self.items_per_word
        if address >= len(self.data):
            return (0,) * self.items_per_word
        chunk = self.data[address:end]
        if len(chunk) < self.items_per_word:
            chunk = np.concatenate(
                [chunk, np.zeros(self.items_per_word - len(chunk),
                                 dtype=np.int64)])
        return tuple(int(v) for v in chunk)

    def can_issue_soon(self) -> bool:
        """True when the next :meth:`step` call would issue a request."""
        if not self._queue or self._gap_remaining > 0:
            return False
        credit = min(2.0, self._issue_credit + self.timing.words_per_cycle)
        return credit >= 1.0

    def next_event_delta(self) -> int | None:
        """Cycles until this vault can next act, or None when fully idle.

        An "event" is a state change visible outside the vault: a request
        issue becoming possible (burst gap elapsing, issue credit
        reaching one word) or an in-flight read completing.  Between now
        and the returned delta the vault only counts down, which is what
        lets the simulator skip those cycles wholesale.
        """
        deltas = []
        if self._in_flight:
            deltas.append(max(1, self._in_flight[0].completed_cycle
                              - self.cycle))
        if self._queue:
            if self._gap_remaining > 0:
                deltas.append(self._gap_remaining)
            else:
                # Credit accrues words_per_cycle per step; issue happens
                # on the first step where the accumulated credit >= 1.
                # Walked iteratively so the float arithmetic is the same
                # sequence step() would produce.
                rate = self.timing.words_per_cycle
                if rate > 0:
                    credit = self._issue_credit
                    steps = 0
                    while credit < 1.0:
                        credit = min(2.0, credit + rate)
                        steps += 1
                    deltas.append(max(1, steps))
        if not deltas:
            return None
        return min(deltas)

    def skip(self, cycles: int) -> None:
        """Fast-forward ``cycles`` event-free cycles.

        Replicates exactly what ``cycles`` consecutive :meth:`step` calls
        would do under the precondition that none of them issues or
        completes a request (the caller guarantees this by skipping at
        most ``next_event_delta() - 1`` cycles): the clock and issue
        credit advance, a pending burst gap drains (charging stall cycles
        while requests wait), and the burst position resets on any cycle
        the channel sat idle outside a gap.
        """
        self.cycle += cycles
        # Accrue credit one cycle at a time: repeated `min(2, c + rate)`
        # is not `min(2, c + n*rate)` in floating point, and skip-ahead
        # must be bit-identical to stepping.
        rate = self.timing.words_per_cycle
        credit = self._issue_credit
        for _ in range(cycles):
            credit = min(2.0, credit + rate)
        self._issue_credit = credit
        if self._gap_remaining > 0:
            idle_after_gap = cycles > self._gap_remaining
            if self._queue:
                self.stall_cycles += min(cycles, self._gap_remaining)
            self._gap_remaining = max(0, self._gap_remaining - cycles)
        else:
            idle_after_gap = cycles > 0
        if idle_after_gap:
            self._burst_pos = 0

    def step(self) -> list[CompletedRead]:
        """Advance one I/O clock cycle; return reads completing this cycle.

        At most one word issues per cycle; after ``burst_length``
        consecutive issues the channel idles for ``tccd_gap_cycles``.
        """
        self.cycle += 1
        # Issue stage.  The credit accumulator paces channels whose native
        # word rate is below the stepping clock (words_per_cycle < 1).
        self._issue_credit = min(
            2.0, self._issue_credit + self.timing.words_per_cycle)
        if self._gap_remaining > 0:
            self._gap_remaining -= 1
            if self._queue:
                self.stall_cycles += 1
        elif self._queue and self._issue_credit >= 1.0:
            self._issue_credit -= 1.0
            address, tag = self._queue.popleft()
            completed = self.cycle + self.timing.access_latency_cycles
            if self.injector is not None:
                # Latency jitter: the read completes late.  Completion
                # stays in issue order (the head of the in-flight queue
                # gates the pop loop), so jitter is purely a delay.
                completed += self.injector.read_extra_latency(
                    self.vault_id, self.cycle, address)
            self._in_flight.append(CompletedRead(
                address=address, items=self._read_items(address), tag=tag,
                issued_cycle=self.cycle, completed_cycle=completed))
            self.busy_cycles += 1
            self.words_served += 1
            if self.tracer is not None:
                self.tracer.vault_read(self.vault_id, self.cycle,
                                       completed, address)
            self._burst_pos += 1
            if self._burst_pos >= self.timing.burst_length:
                self._burst_pos = 0
                self._gap_remaining = self.timing.tccd_gap_cycles
        else:
            self._burst_pos = 0
        # Completion stage (requests complete in issue order).
        done: list[CompletedRead] = []
        while self._in_flight and self._in_flight[0].completed_cycle <= self.cycle:
            done.append(self._in_flight.popleft())
        return done

    def drain(self, max_cycles: int = 10_000_000) -> list[CompletedRead]:
        """Step until idle; convenience for tests.  Raises on runaway."""
        out: list[CompletedRead] = []
        for _ in range(max_cycles):
            if not self.busy:
                return out
            out.extend(self.step())
        raise SimulationError(
            f"vault {self.vault_id} did not drain within {max_cycles} cycles")

    def state_dict(self) -> dict:
        """Picklable snapshot for checkpointing.

        The backing data array is copied (write-backs mutate it), and
        restored *in place* on load — PNG sinks and readers hold a
        reference to the live array.
        """
        return {
            "cycle": self.cycle,
            "queue": tuple(self._queue),
            "in_flight": tuple(self._in_flight),
            "burst_pos": self._burst_pos,
            "gap_remaining": self._gap_remaining,
            "issue_credit": self._issue_credit,
            "words_served": self.words_served,
            "busy_cycles": self.busy_cycles,
            "stall_cycles": self.stall_cycles,
            "data": None if self.data is None else self.data.copy(),
        }

    def load_state(self, state: dict) -> None:
        self.cycle = state["cycle"]
        self._queue = deque(state["queue"])
        self._in_flight = deque(state["in_flight"])
        self._burst_pos = state["burst_pos"]
        self._gap_remaining = state["gap_remaining"]
        self._issue_credit = state["issue_credit"]
        self.words_served = state["words_served"]
        self.busy_cycles = state["busy_cycles"]
        self.stall_cycles = state["stall_cycles"]
        if state["data"] is not None and self.data is not None:
            self.data[:] = state["data"]

    def write_items(self, address: int, items) -> None:
        """Store raw items into the backing array (write-back path).

        A vault in timing-only mode ignores writes.
        """
        if self.data is None:
            return
        items = np.asarray(items, dtype=np.int64)
        end = address + len(items)
        if end > len(self.data):
            raise SimulationError(
                f"vault {self.vault_id}: write [{address}, {end}) beyond "
                f"store of {len(self.data)} items")
        self.data[address:end] = items
