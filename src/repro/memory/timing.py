"""Channel timing derived from a memory specification.

The paper's simulator (§VI) models a vault as a burst-mode streamer: a
32-bit word is pushed every I/O clock at 5 GHz, and "after pushing 8 words,
the HMC needs to wait tCCD before sending the next 8 words".  The gap
length is the knob that sets sustained/peak efficiency; it is exposed here
so the calibration pass can fit it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.specs import MemorySpec
from repro.units import cycles_for_time

#: Default inter-burst gap in I/O-clock cycles.  Eight idle cycles per
#: 8-word burst gives a 0.5 duty factor, which reconciles the paper's two
#: statements about the vault interface: words are "pushed at 5 GHz"
#: (§VI), i.e. a 20 GB/s burst rate for 32-bit words, while Table I lists
#: 10 GB/s peak per HMC-Int channel — exactly the 0.5-duty sustained
#: rate.  See EXPERIMENTS.md for the calibration record.
DEFAULT_TCCD_GAP_CYCLES = 8

#: Default burst length in words (paper §VI: "burst length is assumed as 8").
DEFAULT_BURST_LENGTH = 8


@dataclass(frozen=True)
class ChannelTiming:
    """Cycle-level timing of one memory channel (vault).

    All cycle quantities are in channel I/O clock cycles, which is the
    simulator's reference clock (§VI).

    Attributes:
        io_clock_hz: the stepping (reference) clock the channel is
            simulated at — ``f_dram_io`` in the paper.
        word_bits: bits delivered per issued word.
        words_per_cycle: word issue rate relative to the stepping clock,
            in (0, 1].  1.0 for HMC vaults (one word per 5 GHz cycle);
            fractional for channels whose native word rate is below the
            reference clock (DDR3 at a 5 GHz reference issues a 64-bit
            word only every ~3 cycles).
        burst_length: words per burst.
        tccd_gap_cycles: idle cycles between bursts.
        access_latency_cycles: cycles from request issue to data return
            (``tCL + tRCD``).
    """

    io_clock_hz: float
    word_bits: int
    words_per_cycle: float = 1.0
    burst_length: int = DEFAULT_BURST_LENGTH
    tccd_gap_cycles: int = DEFAULT_TCCD_GAP_CYCLES
    access_latency_cycles: int = 0

    def __post_init__(self) -> None:
        if self.io_clock_hz <= 0:
            raise ConfigurationError("io_clock_hz must be positive")
        if not 0.0 < self.words_per_cycle <= 1.0:
            raise ConfigurationError(
                f"words_per_cycle must be in (0, 1], got "
                f"{self.words_per_cycle}")
        if self.burst_length < 1:
            raise ConfigurationError("burst_length must be >= 1")
        if self.tccd_gap_cycles < 0:
            raise ConfigurationError("tccd_gap_cycles must be >= 0")
        if self.access_latency_cycles < 0:
            raise ConfigurationError("access_latency_cycles must be >= 0")

    @classmethod
    def from_spec(cls, spec: MemorySpec, io_clock_hz: float | None = None,
                  reference_clock_hz: float | None = None,
                  burst_length: int = DEFAULT_BURST_LENGTH,
                  tccd_gap_cycles: int = DEFAULT_TCCD_GAP_CYCLES,
                  ) -> ChannelTiming:
        """Build channel timing from a Table I specification.

        Args:
            spec: the memory technology.
            io_clock_hz: the channel's native word-issue clock; defaults
                to the rate implied by the spec's peak bandwidth and word
                size.
            reference_clock_hz: the simulation stepping clock; defaults
                to the native clock.  A channel slower than the reference
                issues words at the fractional rate
                ``native / reference``.
            burst_length, tccd_gap_cycles: burst shape knobs.
        """
        native = io_clock_hz if io_clock_hz is not None else spec.io_clock_hz
        reference = (reference_clock_hz if reference_clock_hz is not None
                     else native)
        latency = (cycles_for_time(spec.access_latency, reference)
                   if spec.access_latency is not None else 0)
        return cls(io_clock_hz=reference, word_bits=spec.word_bits,
                   words_per_cycle=min(1.0, native / reference),
                   burst_length=burst_length,
                   tccd_gap_cycles=tccd_gap_cycles,
                   access_latency_cycles=latency)

    @property
    def burst_duty(self) -> float:
        """Fraction of issue slots a saturated channel spends delivering."""
        period = self.burst_length + self.tccd_gap_cycles
        return self.burst_length / period

    @property
    def sustained_words_per_cycle(self) -> float:
        """Long-run delivery rate in words per reference cycle."""
        return self.burst_duty * self.words_per_cycle

    @property
    def sustained_bandwidth(self) -> float:
        """Long-run bandwidth in bytes/second."""
        return (self.sustained_words_per_cycle * self.word_bits / 8
                * self.io_clock_hz)

    def cycles_to_stream_words(self, n_words: int) -> int:
        """Reference cycles for a saturated channel to deliver ``n_words``.

        Counts full bursts plus the trailing partial burst; inter-burst
        gaps are charged between bursts, not after the final one.  The
        count is scaled by the fractional issue rate for sub-reference
        channels.
        """
        if n_words < 0:
            raise ConfigurationError("n_words must be >= 0")
        if n_words == 0:
            return 0
        full_bursts, remainder = divmod(n_words, self.burst_length)
        if remainder == 0:
            full_bursts -= 1
            remainder = self.burst_length
        slots = (full_bursts * (self.burst_length + self.tccd_gap_cycles)
                 + remainder)
        exact = slots / self.words_per_cycle
        return int(exact) if exact == int(exact) else int(exact) + 1
