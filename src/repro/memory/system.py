"""A multi-channel memory system (the HMC's 16 vaults, or DDR3's 2 channels).

The Neurocube attaches one PE per channel; when a system has fewer channels
than PEs (the DDR3 comparison of Fig. 15a), several PEs share one channel
and the paper's concurrency argument plays out: fewer, faster channels lose
to many slower ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.specs import HMC_INT, HMC_VAULT_IO_CLOCK_HZ, MemorySpec
from repro.memory.timing import (
    DEFAULT_BURST_LENGTH,
    DEFAULT_TCCD_GAP_CYCLES,
    ChannelTiming,
)
from repro.memory.vault import VaultChannel


class MemorySystem:
    """A set of identical, independently steppable channels.

    Args:
        spec: the memory technology (a Table I row).
        channels: number of active channels; defaults to the spec maximum.
        io_clock_hz: override of the channel I/O clock.
        burst_length, tccd_gap_cycles: burst shape knobs.
        store_items: per-channel backing-store size in 16-bit items;
            0 means timing-only channels.
    """

    def __init__(self, spec: MemorySpec, channels: int | None = None,
                 io_clock_hz: float | None = None,
                 burst_length: int = DEFAULT_BURST_LENGTH,
                 tccd_gap_cycles: int = DEFAULT_TCCD_GAP_CYCLES,
                 store_items: int = 0) -> None:
        self.spec = spec
        self.channels = spec.max_channels if channels is None else channels
        if not 1 <= self.channels <= spec.max_channels:
            raise ConfigurationError(
                f"{spec.name} supports 1..{spec.max_channels} channels, "
                f"got {self.channels}")
        self.timing = ChannelTiming.from_spec(
            spec, io_clock_hz=io_clock_hz, burst_length=burst_length,
            tccd_gap_cycles=tccd_gap_cycles)
        self.vaults = [
            VaultChannel(
                self.timing, vault_id=i,
                data=(np.zeros(store_items, dtype=np.int64)
                      if store_items else None))
            for i in range(self.channels)
        ]

    @classmethod
    def hmc(cls, channels: int = 16, store_items: int = 0,
            tccd_gap_cycles: int = DEFAULT_TCCD_GAP_CYCLES) -> MemorySystem:
        """The paper's HMC-Internal configuration: 16 vaults at 5 GHz I/O."""
        return cls(HMC_INT, channels=channels,
                   io_clock_hz=HMC_VAULT_IO_CLOCK_HZ,
                   tccd_gap_cycles=tccd_gap_cycles, store_items=store_items)

    def step(self) -> list[list]:
        """Step every channel one cycle; returns per-channel completions."""
        return [vault.step() for vault in self.vaults]

    @property
    def busy(self) -> bool:
        """True while any channel has queued or in-flight work."""
        return any(vault.busy for vault in self.vaults)

    @property
    def total_words_served(self) -> int:
        return sum(vault.words_served for vault in self.vaults)

    @property
    def sustained_bandwidth(self) -> float:
        """Aggregate sustained bandwidth across channels, bytes/s."""
        return self.timing.sustained_bandwidth * self.channels

    def access_energy(self, bits: float) -> float:
        """DRAM access energy in joules for moving ``bits`` (Table I)."""
        if self.spec.energy_per_bit is None:
            raise ConfigurationError(
                f"{self.spec.name} has no published energy/bit")
        return bits * self.spec.energy_per_bit
