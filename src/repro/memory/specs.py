"""Memory technology specifications (paper Table I).

Each row of Table I becomes a :class:`MemorySpec`.  The cycle simulator
derives its channel timing from these values; the power model uses the
per-bit access energies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GBps, GHz, ns, pJ


@dataclass(frozen=True)
class MemorySpec:
    """One memory technology (a column of Table I).

    Attributes:
        name: technology name as used in the paper.
        interface: "2D", "2.5D" or "3D".
        max_channels: maximum independent channels (vaults for HMC).
        word_bits: channel word size in bits.
        peak_bandwidth: peak bandwidth per channel, bytes/second.
        access_latency: ``tCL + tRCD`` in seconds (None where the paper
            reports N/A).
        operating_voltage: supply voltage in volts.
        energy_per_bit: access energy in joules/bit (None where N/A).
    """

    name: str
    interface: str
    max_channels: int
    word_bits: int
    peak_bandwidth: float
    access_latency: float | None
    operating_voltage: float
    energy_per_bit: float | None

    def __post_init__(self) -> None:
        if self.max_channels < 1:
            raise ConfigurationError(
                f"{self.name}: max_channels must be >= 1")
        if self.word_bits < 1 or self.word_bits % 8:
            raise ConfigurationError(
                f"{self.name}: word_bits must be a positive multiple of 8")
        if self.peak_bandwidth <= 0:
            raise ConfigurationError(
                f"{self.name}: peak bandwidth must be positive")

    @property
    def word_bytes(self) -> int:
        """Channel word size in bytes."""
        return self.word_bits // 8

    @property
    def io_clock_hz(self) -> float:
        """Word rate sustaining the peak bandwidth (words/second)."""
        return self.peak_bandwidth / self.word_bytes

    @property
    def total_peak_bandwidth(self) -> float:
        """Aggregate peak bandwidth with all channels active, bytes/s."""
        return self.peak_bandwidth * self.max_channels


DDR3 = MemorySpec(
    name="DDR3", interface="2D", max_channels=2, word_bits=64,
    peak_bandwidth=GBps(12.8), access_latency=ns(25.0),
    operating_voltage=1.5, energy_per_bit=pJ(70.0))

WIDE_IO_2 = MemorySpec(
    name="WideIO2", interface="3D", max_channels=8, word_bits=128,
    peak_bandwidth=GBps(6.4), access_latency=None,
    operating_voltage=1.1, energy_per_bit=None)

HBM = MemorySpec(
    name="HBM", interface="2.5D", max_channels=8, word_bits=128,
    peak_bandwidth=GBps(16.0), access_latency=None,
    operating_voltage=1.2, energy_per_bit=None)

HMC_EXT = MemorySpec(
    name="HMC-Ext", interface="3D", max_channels=8, word_bits=32,
    peak_bandwidth=GBps(40.0), access_latency=ns(27.5),
    operating_voltage=1.2, energy_per_bit=pJ(10.0))

HMC_INT = MemorySpec(
    name="HMC-Int", interface="3D", max_channels=16, word_bits=32,
    peak_bandwidth=GBps(10.0), access_latency=ns(27.5),
    operating_voltage=1.2, energy_per_bit=pJ(3.7))

#: All Table I rows by name.
TABLE_I: dict[str, MemorySpec] = {
    spec.name: spec for spec in (DDR3, WIDE_IO_2, HBM, HMC_EXT, HMC_INT)
}

#: Vault I/O clock used by the paper's simulator (§VI): 2.5 GHz x 2 (DDR).
HMC_VAULT_IO_CLOCK_HZ = GHz(5.0)
