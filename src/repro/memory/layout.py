"""Data-layout planning across vaults (paper Fig. 10 and §V-A).

The Neurocube stores a layer's inputs and weights partitioned over the
HMC's vaults.  Two strategies exist per connectivity class:

* **Locally connected (2D conv)** — the input image is tiled into one
  rectangle per vault (Fig. 10b).  *Duplication* additionally copies a halo
  of neighbouring pixels into each vault (Fig. 10c) so every window access
  is local; without it, window pixels falling in another vault's tile cross
  the NoC.
* **Fully connected** — the weight matrix is always split by output neuron
  across vaults.  *Duplication* copies the whole input vector into every
  vault (Fig. 10d); without it the input vector is split and most state
  accesses are remote (Fig. 10e).

This module computes the exact geometry: per-vault tiles, duplicated
bytes, and the remote-access fraction that drives NoC traffic in both the
cycle simulator and the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.memory.vault import ITEM_BITS

ITEM_BYTES = ITEM_BITS // 8


@dataclass(frozen=True)
class Rect:
    """A half-open rectangle ``[x0, x1) x [y0, y1)`` in pixel coordinates."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise MappingError(f"empty rectangle {self}")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height

    def contains(self, x: int, y: int) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def expanded(self, halo: int, width: int, height: int) -> Rect:
        """Grow by ``halo`` pixels on every side, clipped to the image."""
        return Rect(max(0, self.x0 - halo), max(0, self.y0 - halo),
                    min(width, self.x1 + halo), min(height, self.y1 + halo))


def grid_dimensions(n_parts: int) -> tuple[int, int]:
    """Choose a near-square ``rows x cols`` factorisation of ``n_parts``."""
    if n_parts < 1:
        raise MappingError(f"n_parts must be >= 1, got {n_parts}")
    best = (1, n_parts)
    for rows in range(1, int(np.sqrt(n_parts)) + 1):
        if n_parts % rows == 0:
            best = (rows, n_parts // rows)
    return best


def partition_grid(height: int, width: int, n_parts: int) -> list[Rect]:
    """Tile a ``height x width`` image into ``n_parts`` rectangles.

    Uses a near-square grid (4x4 for 16 vaults, 1x2 for DDR3's two
    channels) with remainder pixels spread over the leading rows/columns.
    """
    rows, cols = grid_dimensions(n_parts)
    if rows > height or cols > width:
        raise MappingError(
            f"cannot tile a {height}x{width} image into a {rows}x{cols} "
            f"grid")
    y_edges = np.linspace(0, height, rows + 1).astype(int)
    x_edges = np.linspace(0, width, cols + 1).astype(int)
    return [Rect(int(x_edges[c]), int(y_edges[r]),
                 int(x_edges[c + 1]), int(y_edges[r + 1]))
            for r in range(rows) for c in range(cols)]


@dataclass(frozen=True)
class LayoutPlan:
    """Common result of a layout decision for one layer.

    Attributes:
        connectivity: "local" or "full".
        duplicate: whether the duplication strategy is in force.
        vaults: number of vaults used.
        state_bytes: bytes of input neuron state stored once.
        weight_bytes: bytes of synaptic weights stored once.
        duplicated_bytes: extra bytes stored due to duplication.
        remote_state_fraction: fraction of *state* accesses that cross
            vaults (weights are always resident with the consuming PE's
            vault or weight memory, §V-A1).
        packets_per_connection: NoC packets per connection evaluation;
            2 when weights stream from DRAM alongside states, 1 when the
            weights live in PE weight memory.
    """

    connectivity: str
    duplicate: bool
    vaults: int
    state_bytes: int
    weight_bytes: int
    duplicated_bytes: int
    remote_state_fraction: float
    packets_per_connection: int

    @property
    def total_bytes(self) -> int:
        """All bytes stored, including duplication overhead."""
        return self.state_bytes + self.weight_bytes + self.duplicated_bytes

    @property
    def memory_overhead(self) -> float:
        """Duplicated bytes relative to the un-duplicated footprint."""
        base = self.state_bytes + self.weight_bytes
        return self.duplicated_bytes / base if base else 0.0

    @property
    def remote_packet_fraction(self) -> float:
        """Fraction of all NoC-injected packets that travel laterally."""
        state_packets = 1.0
        total_packets = float(self.packets_per_connection)
        return self.remote_state_fraction * state_packets / total_packets


@dataclass(frozen=True)
class ConvLayout(LayoutPlan):
    """Layout of a locally connected layer; adds the tile geometry.

    Attributes:
        tiles: per-vault owned input tiles.
        stored_tiles: per-vault stored tiles (expanded by the halo when
            duplicating).
        kernel: convolution kernel side.
    """

    tiles: tuple[Rect, ...] = ()
    stored_tiles: tuple[Rect, ...] = ()
    kernel: int = 1


@dataclass(frozen=True)
class FullLayout(LayoutPlan):
    """Layout of a fully connected layer.

    Attributes:
        inputs: input-vector length.
        outputs: output-neuron count.
    """

    inputs: int = 0
    outputs: int = 0


def _conv_remote_fraction(height: int, width: int, kernel: int,
                          tiles: list[Rect]) -> float:
    """Exact fraction of window accesses that leave the owning tile.

    Builds the input-ownership map and counts, over every output neuron
    and every kernel offset, accesses whose input pixel belongs to a
    different vault than the neuron's owner.  The neuron's owner is the
    vault owning its window's top-left pixel's tile-expanded centre.
    """
    owner = np.empty((height, width), dtype=np.int32)
    for vault, tile in enumerate(tiles):
        owner[tile.y0:tile.y1, tile.x0:tile.x1] = vault
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    if out_h < 1 or out_w < 1:
        raise MappingError(
            f"kernel {kernel} larger than image {height}x{width}")
    half = kernel // 2
    # Owner of each output neuron: the vault holding its window centre.
    centre = owner[half:half + out_h, half:half + out_w]
    remote = 0
    for dy in range(kernel):
        for dx in range(kernel):
            window = owner[dy:dy + out_h, dx:dx + out_w]
            remote += int(np.count_nonzero(window != centre))
    total = out_h * out_w * kernel * kernel
    return remote / total


def conv_layout(height: int, width: int, kernel: int, in_maps: int,
                out_maps: int, vaults: int,
                duplicate: bool) -> ConvLayout:
    """Plan a locally connected layer's storage across vaults.

    Weights (``out_maps * in_maps * kernel^2`` values) are small and, per
    §V-A1, duplicated into every PE's weight memory; only states stream
    from DRAM, so each connection costs one NoC packet.

    Args:
        height, width: input image size.
        kernel: square kernel side.
        in_maps, out_maps: feature-map counts.
        vaults: number of vaults (= PEs).
        duplicate: store overlapped halos (Fig. 10c) to kill lateral
            traffic at the price of duplicated pixels.
    """
    tiles = partition_grid(height, width, vaults)
    halo = kernel // 2
    kernel_weights = out_maps * in_maps * kernel * kernel
    state_bytes = in_maps * height * width * ITEM_BYTES
    weight_bytes = kernel_weights * ITEM_BYTES
    if duplicate:
        stored = [tile.expanded(halo, width, height) for tile in tiles]
        extra_pixels = sum(s.area for s in stored) - height * width
        duplicated = extra_pixels * in_maps * ITEM_BYTES
        remote = 0.0
    else:
        stored = list(tiles)
        duplicated = 0
        remote = _conv_remote_fraction(height, width, kernel, tiles)
    # Weight memory duplication across PEs is counted as SRAM, not DRAM,
    # so it does not appear in duplicated_bytes (it appears in Table II's
    # weight-register area instead).
    return ConvLayout(
        connectivity="local", duplicate=duplicate, vaults=vaults,
        state_bytes=state_bytes, weight_bytes=weight_bytes,
        duplicated_bytes=duplicated, remote_state_fraction=remote,
        packets_per_connection=1, tiles=tuple(tiles),
        stored_tiles=tuple(stored), kernel=kernel)


def fc_layout(inputs: int, outputs: int, vaults: int,
              duplicate: bool) -> FullLayout:
    """Plan a fully connected layer's storage across vaults.

    The ``outputs x inputs`` weight matrix is split by output neuron
    across vaults and streams from DRAM (it is far too large for PE weight
    memory), so each connection costs two packets: one weight, one state.

    With duplication the input vector is copied into every vault
    (Fig. 10d): all accesses local, overhead ``(vaults-1) * inputs``
    items.  Without duplication the input vector is scattered (Fig. 10e)
    and a fraction ``(vaults-1)/vaults`` of state reads are remote.
    """
    if inputs < 1 or outputs < 1:
        raise MappingError(
            f"fully connected layer needs inputs, outputs >= 1; got "
            f"{inputs}, {outputs}")
    if vaults < 1:
        raise MappingError(f"vaults must be >= 1, got {vaults}")
    state_bytes = inputs * ITEM_BYTES
    weight_bytes = inputs * outputs * ITEM_BYTES
    if duplicate:
        duplicated = (vaults - 1) * inputs * ITEM_BYTES
        remote = 0.0
    else:
        duplicated = 0
        remote = (vaults - 1) / vaults
    return FullLayout(
        connectivity="full", duplicate=duplicate, vaults=vaults,
        state_bytes=state_bytes, weight_bytes=weight_bytes,
        duplicated_bytes=duplicated, remote_state_fraction=remote,
        packets_per_connection=2, inputs=inputs, outputs=outputs)
