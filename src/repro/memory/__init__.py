"""3D high-density memory substrate.

Models the memory technologies of Table I at the level the paper's
evaluation exercises them: per-channel streaming bandwidth with burst-mode
timing (burst of 8 words, then a ``tCCD`` gap), access latency
(``tCL + tRCD``), channel concurrency (16 vaults for HMC-Int vs 2 channels
for DDR3), and per-bit access energy.  Also provides the Fig. 10 data
layout planner that partitions layer inputs and weights across vaults with
or without duplication.
"""

from repro.memory.specs import (
    DDR3,
    HBM,
    HMC_EXT,
    HMC_INT,
    WIDE_IO_2,
    TABLE_I,
    MemorySpec,
)
from repro.memory.timing import ChannelTiming
from repro.memory.vault import CompletedRead, VaultChannel
from repro.memory.system import MemorySystem
from repro.memory.layout import (
    ConvLayout,
    FullLayout,
    LayoutPlan,
    Rect,
    conv_layout,
    fc_layout,
    partition_grid,
)

__all__ = [
    "MemorySpec",
    "TABLE_I",
    "DDR3",
    "WIDE_IO_2",
    "HBM",
    "HMC_EXT",
    "HMC_INT",
    "ChannelTiming",
    "VaultChannel",
    "CompletedRead",
    "MemorySystem",
    "Rect",
    "partition_grid",
    "ConvLayout",
    "FullLayout",
    "LayoutPlan",
    "conv_layout",
    "fc_layout",
]
