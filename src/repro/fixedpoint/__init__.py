"""Saturating fixed-point arithmetic (the paper's Q1.7.8 format).

The Neurocube stores neuron states and synaptic weights as 16-bit fixed
point: 1 sign bit, 7 integer bits, 8 fractional bits (paper §III-B1).  This
package provides the :class:`QFormat` descriptor and vectorised numpy
operations that behave like the hardware datapath: values saturate instead
of wrapping, and multiplies truncate back to the storage format.
"""

from repro.fixedpoint.qformat import Q_1_7_8, QFormat
from repro.fixedpoint.array import (
    from_float,
    to_float,
    add,
    multiply,
    mac,
    quantize_float,
)

__all__ = [
    "QFormat",
    "Q_1_7_8",
    "from_float",
    "to_float",
    "add",
    "multiply",
    "mac",
    "quantize_float",
]
