"""Q-format descriptors for signed fixed-point numbers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format: ``sign_bits.integer_bits.fraction_bits``.

    The paper's format is ``Q1.7.8`` — 1 sign bit, 7 integer bits and
    8 fractional bits, 16 bits total.  Stored values are integers in
    ``[min_raw, max_raw]``; the represented real value is ``raw / scale``.

    Attributes:
        integer_bits: number of integer (non-sign) bits.
        fraction_bits: number of fractional bits.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ConfigurationError(
                f"Q-format bit counts must be non-negative, got "
                f"integer_bits={self.integer_bits}, "
                f"fraction_bits={self.fraction_bits}")
        if self.integer_bits + self.fraction_bits == 0:
            raise ConfigurationError(
                "Q-format needs at least one magnitude bit")

    @property
    def total_bits(self) -> int:
        """Storage width in bits, including the sign bit."""
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> int:
        """Integer units per 1.0 (``2 ** fraction_bits``)."""
        return 1 << self.fraction_bits

    @property
    def max_raw(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.integer_bits + self.fraction_bits)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest (most negative) representable raw integer."""
        return -(1 << (self.integer_bits + self.fraction_bits))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw / self.scale

    @property
    def resolution(self) -> float:
        """Distance between adjacent representable values."""
        return 1.0 / self.scale

    def __str__(self) -> str:
        return f"Q1.{self.integer_bits}.{self.fraction_bits}"


#: The paper's storage format for states and weights (§III-B1).
Q_1_7_8 = QFormat(integer_bits=7, fraction_bits=8)
