"""Vectorised saturating fixed-point operations on numpy arrays.

Raw fixed-point values travel through this module as ``int64`` arrays so a
full 16x16-bit product plus a long accumulation chain never overflows the
intermediate type; only the explicit :func:`saturate` step clamps back into
the storage format, mirroring the hardware's saturating datapath.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import Q_1_7_8, QFormat

RawArray = np.ndarray


def saturate(raw: RawArray, fmt: QFormat = Q_1_7_8) -> RawArray:
    """Clamp raw integer values into the representable range of ``fmt``."""
    return np.clip(raw, fmt.min_raw, fmt.max_raw)


def from_float(values: np.ndarray | float, fmt: QFormat = Q_1_7_8) -> RawArray:
    """Quantise real values to raw fixed-point integers (round-to-nearest).

    Values outside the representable range saturate, as the hardware would.
    """
    scaled = np.rint(np.asarray(values, dtype=np.float64) * fmt.scale)
    return saturate(scaled.astype(np.int64), fmt)


def to_float(raw: RawArray, fmt: QFormat = Q_1_7_8) -> np.ndarray:
    """Convert raw fixed-point integers back to float64 real values."""
    return np.asarray(raw, dtype=np.float64) / fmt.scale


def quantize_float(values: np.ndarray | float,
                   fmt: QFormat = Q_1_7_8) -> np.ndarray:
    """Round real values to the nearest representable value of ``fmt``.

    Convenience for "simulate fixed-point error while staying in floats",
    which is how the training path models quantisation.
    """
    return to_float(from_float(values, fmt), fmt)


def add(a: RawArray, b: RawArray, fmt: QFormat = Q_1_7_8) -> RawArray:
    """Saturating fixed-point addition of two raw arrays."""
    return saturate(np.asarray(a, np.int64) + np.asarray(b, np.int64), fmt)


def multiply(a: RawArray, b: RawArray, fmt: QFormat = Q_1_7_8) -> RawArray:
    """Saturating fixed-point multiply.

    The double-width product is rescaled by ``fmt.scale`` (arithmetic shift
    with truncation toward negative infinity, matching a hardware
    right-shift) and then saturated.
    """
    product = np.asarray(a, np.int64) * np.asarray(b, np.int64)
    return saturate(product >> fmt.fraction_bits, fmt)


def mac(acc: RawArray, a: RawArray, b: RawArray,
        fmt: QFormat = Q_1_7_8) -> RawArray:
    """One multiply-accumulate step: ``saturate(acc + (a*b) >> frac)``.

    This is the per-cycle operation of a Neurocube MAC unit (Eq. 1 term).
    """
    product = np.asarray(a, np.int64) * np.asarray(b, np.int64)
    term = product >> fmt.fraction_bits
    return saturate(np.asarray(acc, np.int64) + term, fmt)
