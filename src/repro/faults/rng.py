"""Counter-based deterministic RNG for fault injection.

Fault injection must not perturb the simulator's bit-identity contract:
serial, parallel, skip-ahead and resumed runs of the same configuration
must inject *exactly* the same faults at the same sites.  A stateful
generator (``random.Random``, ``numpy.random``) cannot give that — the
draw sequence depends on execution order, which differs between a serial
run and a process-pool worker, and its hidden state would have to ride
along in every checkpoint.

:class:`DeterministicRNG` is therefore counter-based (splitmix64): every
draw is a pure function of ``seed x site-key``, where the site key is a
tuple of integers identifying the injection site (site constant, agent
id, cycle, address...).  There is no hidden state, so:

* the same (seed, site) always yields the same draw, regardless of how
  many other draws happened before it or in which process;
* checkpoints need not store RNG state at all;
* skip-ahead cannot drift the stream, because skipped cycles perform no
  actions and therefore no draws.

Site keys are integers only — never Python ``hash()`` of strings, which
is salted per interpreter run (``PYTHONHASHSEED``) and would silently
break cross-run reproducibility.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
#: 2**53 — draws are reduced to IEEE-double-exact uniforms in [0, 1).
_DOUBLE_DENOM = float(1 << 53)


def splitmix64(x: int) -> int:
    """One splitmix64 output step on a 64-bit state (pure function)."""
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def pass_salt(map_index: int, sub_pass: int = 0) -> int:
    """Stable per-pass salt from the (map, sub-pass) identity.

    Mixed into every transient fault draw so structurally identical
    passes (conv output maps) see independent fault patterns.  Derived
    from the pass's *logical* identity, never from execution order, so
    serial, parallel and resumed runs agree on every pass's salt.
    """
    return splitmix64(splitmix64(int(map_index) + 1) ^ (int(sub_pass) + 1))


class DeterministicRNG:
    """Stateless keyed RNG: each draw is ``f(seed, *key_ints)``.

    Args:
        seed: the run-level fault seed (any int; reduced mod 2**64).
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = int(seed) & _MASK64

    def _mix(self, keys: tuple[int, ...]) -> int:
        """64-bit digest of the seed and the site key chain."""
        x = splitmix64(self.seed)
        for key in keys:
            x = splitmix64(x ^ (int(key) & _MASK64))
        return x

    def raw64(self, *keys: int) -> int:
        """The raw 64-bit draw for a site key."""
        return self._mix(keys)

    def uniform(self, *keys: int) -> float:
        """Uniform double in [0, 1) for a site key (53-bit mantissa)."""
        return (self._mix(keys) >> 11) / _DOUBLE_DENOM

    def bernoulli(self, p: float, *keys: int) -> bool:
        """One biased coin flip; ``p <= 0`` never draws (fast path)."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.uniform(*keys) < p

    def randint(self, n: int, *keys: int) -> int:
        """Uniform int in [0, n).  Modulo reduction of a 64-bit draw;
        the bias is < n / 2**64, irrelevant for the small ``n`` (bit
        positions, jitter spans) used at injection sites."""
        if n < 1:
            raise ConfigurationError(f"randint needs n >= 1, got {n}")
        return self._mix(keys) % n

    def __repr__(self) -> str:
        return f"DeterministicRNG(seed={self.seed:#x})"
