"""Fault-injection configuration.

One frozen :class:`FaultConfig` describes every fault model and
resilience-protocol knob of a run.  It hangs off
``NeurocubeConfig.faults`` (or rides ambiently on a
:class:`repro.faults.session.FaultSession`), travels pickled to
process-pool workers, and — together with the seed — fully determines
every injected fault: same config + same seed => same fault sites,
whatever the execution mode.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ConfigurationError

#: Supported DRAM ECC models (see docs/fault_injection.md).
ECC_MODES = ("none", "secded")


@dataclass(frozen=True)
class FaultConfig:
    """All fault-model rates and resilience-protocol parameters.

    Attributes:
        seed: fault RNG seed; every injection is a pure function of
            (seed, site), see :mod:`repro.faults.rng`.
        dram_bitflip_rate: per-bit probability that a bit of a 16-bit
            item read from a vault arrives flipped.
        ecc: DRAM ECC model — "none" (flips land as read) or "secded"
            (per-item single-error-correct / double-error-detect: one
            flip is corrected, two are detected and re-read at zero
            modelled cost, three or more corrupt silently).
        noc_corrupt_rate: per-link-traversal probability of a transient
            payload corruption on a mesh link.
        noc_drop_rate: per-link-traversal probability the flit is lost
            outright (no data arrives; detected by ack timeout).
        vault_jitter_rate: per-read probability of extra access latency.
        vault_jitter_max: maximum extra latency cycles per jittered read.
        mac_stuck_rate: per-(PE, lane) probability that a MAC's output
            latch has one permanently stuck bit (a manufacturing/wear
            fault: constant for a given seed, not per-cycle).
        intercube_corrupt_rate: per-transmission probability that an
            inter-cube SerDes frame arrives corrupted (multi-cube
            sharded runs only; protected by the same CRC/retransmit
            protocol as mesh links — see docs/multicube.md).
        intercube_drop_rate: per-transmission probability an inter-cube
            frame is lost outright (detected by ack timeout).
        crc: stamp packets with a CRC-8 and check it at every link
            receive.  CRC-8 detects all single-bit corruptions, turning
            them into retries; with ``crc=False`` corrupted payloads
            propagate silently (the contrast the resilience sweep
            measures).
        max_retries: link retransmissions before a packet is declared
            lost and recorded as a :class:`~repro.faults.injector.
            DegradedResult` (the run degrades instead of wedging).
        retry_backoff: base backoff in cycles; retry ``k`` waits
            ``retry_backoff * 2**(k-1)`` cycles (drops wait one extra
            ``retry_backoff`` for the ack timeout).
        watchdog_cycles: per-PE watchdog — after this many consecutive
            stalled cycles *with a recorded matching packet loss*, the
            PE force-fires with zeroed missing operands and marks the
            group's neurons degraded.  0 disables the watchdog (a lost
            operand packet then stalls the pass into the deadlock
            detector, whose diagnostics report the pending fault state).
    """

    seed: int = 0
    dram_bitflip_rate: float = 0.0
    ecc: str = "none"
    noc_corrupt_rate: float = 0.0
    noc_drop_rate: float = 0.0
    vault_jitter_rate: float = 0.0
    vault_jitter_max: int = 4
    mac_stuck_rate: float = 0.0
    intercube_corrupt_rate: float = 0.0
    intercube_drop_rate: float = 0.0
    crc: bool = True
    max_retries: int = 3
    retry_backoff: int = 2
    watchdog_cycles: int = 256

    def __post_init__(self) -> None:
        for name in ("dram_bitflip_rate", "noc_corrupt_rate",
                     "noc_drop_rate", "vault_jitter_rate",
                     "mac_stuck_rate", "intercube_corrupt_rate",
                     "intercube_drop_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {value}")
        if self.noc_corrupt_rate + self.noc_drop_rate > 1.0:
            raise ConfigurationError(
                "noc_corrupt_rate + noc_drop_rate must not exceed 1")
        if self.intercube_corrupt_rate + self.intercube_drop_rate > 1.0:
            raise ConfigurationError(
                "intercube_corrupt_rate + intercube_drop_rate must "
                "not exceed 1")
        if self.ecc not in ECC_MODES:
            raise ConfigurationError(
                f"unknown ECC model {self.ecc!r}; choose from {ECC_MODES}")
        if self.vault_jitter_max < 1:
            raise ConfigurationError(
                f"vault_jitter_max must be >= 1, got {self.vault_jitter_max}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 1:
            raise ConfigurationError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}")
        if self.watchdog_cycles < 0:
            raise ConfigurationError(
                f"watchdog_cycles must be >= 0, got {self.watchdog_cycles}")

    @property
    def any_rate(self) -> bool:
        """True when any fault model can actually fire."""
        return (self.dram_bitflip_rate > 0.0
                or self.noc_corrupt_rate > 0.0
                or self.noc_drop_rate > 0.0
                or self.vault_jitter_rate > 0.0
                or self.mac_stuck_rate > 0.0
                or self.intercube_corrupt_rate > 0.0
                or self.intercube_drop_rate > 0.0)

    @property
    def noc_active(self) -> bool:
        """True when the link stage must run its fault/retry path."""
        return self.noc_corrupt_rate > 0.0 or self.noc_drop_rate > 0.0

    @property
    def intercube_active(self) -> bool:
        """True when inter-cube exchanges must run their fault path."""
        return (self.intercube_corrupt_rate > 0.0
                or self.intercube_drop_rate > 0.0)

    def with_(self, **overrides) -> FaultConfig:
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def from_spec(cls, spec: str) -> FaultConfig:
        """Parse a ``key=value[,key=value...]`` CLI spec.

        Keys are field names (``dram_bitflip_rate=1e-5,seed=7,ecc=secded``);
        values are coerced by the field's type.  An empty spec yields the
        all-zero default (useful for a rate-0 bit-identity check).
        """
        by_name = {f.name: f for f in fields(cls)}
        values: dict[str, object] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ConfigurationError(
                    f"fault spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in by_name:
                raise ConfigurationError(
                    f"unknown fault config field {key!r}; choose from "
                    f"{sorted(by_name)}")
            values[key] = _coerce(by_name[key].type, raw.strip(), key)
        return cls(**values)


def _coerce(type_name: str | type, raw: str, key: str):
    """Coerce a CLI string to a FaultConfig field's declared type."""
    name = type_name if isinstance(type_name, str) else type_name.__name__
    try:
        if name == "bool":
            lowered = raw.lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(raw)
        if name == "int":
            return int(raw)
        if name == "float":
            return float(raw)
        return raw
    except ValueError as error:
        raise ConfigurationError(
            f"fault config field {key!r}: cannot parse {raw!r} as "
            f"{name}") from error
