"""The fault injector: deterministic fault models + degradation records.

One :class:`FaultInjector` serves one simulated pass.  The simulator
threads it through the agents exactly like the tracer — an optional
duck-typed reference, every call site behind a single ``is not None``
test — so the fault-free path stays hook-free and bit-identical to a run
with no injector at all.

Every draw goes through :class:`repro.faults.rng.DeterministicRNG`,
keyed by integer site tuples (site constant, agent id, cycle, address),
so the injected fault set is a pure function of (seed, salt, config):
identical across serial, parallel, skip-ahead and resumed execution.

The injector also owns the pass's *degradation ledger*: packets whose
retry budget is exhausted are recorded as :class:`LostPacket` entries,
watchdog force-fires and forgiven write-backs become
:class:`DegradedResult` records, and the aggregated :class:`FaultStats`
counters ride back to the caller on the pass outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.faults.config import FaultConfig
from repro.faults.rng import DeterministicRNG

#: Bits per fixed-point item (matches ``repro.memory.vault.ITEM_BITS``).
ITEM_BITS = 16

# Integer site constants: the first key of every RNG draw.  Never reuse
# a constant across models — distinct sites must see independent draws.
SITE_DRAM = 1
SITE_DRAM_BITS = 2
SITE_LINK = 3
SITE_LINK_BIT = 4
SITE_JITTER = 5
SITE_JITTER_SPAN = 6
SITE_MAC = 7
SITE_CUBE_LINK = 8
SITE_CUBE_LINK_BIT = 9


def _flip_bits(raw: int, bits: tuple[int, ...]) -> int:
    """XOR the given bit positions of a signed 16-bit raw value."""
    unsigned = raw & 0xFFFF
    for bit in bits:
        unsigned ^= 1 << bit
    return unsigned - 0x10000 if unsigned & 0x8000 else unsigned


@dataclass
class FaultStats:
    """Picklable fault/resilience counters for one pass (or a fold).

    All counters are exact and deterministic for a given (seed, salt,
    config) — the CI smoke job pins them for a seeded run.
    """

    dram_flip_events: int = 0
    dram_bits_flipped: int = 0
    ecc_corrected: int = 0
    ecc_detected: int = 0
    corrupted_items: int = 0
    link_corruptions: int = 0
    link_drops: int = 0
    link_silent_corruptions: int = 0
    retries: int = 0
    packets_lost: int = 0
    jitter_events: int = 0
    jitter_cycles: int = 0
    stuck_lanes: int = 0
    stuck_applied: int = 0
    watchdog_fires: int = 0
    writebacks_forgiven: int = 0
    late_packets: int = 0
    intercube_corruptions: int = 0
    intercube_drops: int = 0
    intercube_silent_corruptions: int = 0
    intercube_retries: int = 0
    intercube_frames_lost: int = 0

    def merge(self, other: FaultStats) -> None:
        """Fold another pass's counters in (serial fold order)."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict[str, int]:
        """JSON-compatible counter dict (stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def any_injected(self) -> bool:
        """True when any fault actually fired."""
        return any(getattr(self, f.name) for f in fields(self))


@dataclass(frozen=True)
class LostPacket:
    """A packet dropped after exhausting its link retry budget.

    Kept on the injector's loss ledger so the PE watchdog and the PNG
    write-back forgiveness can match it — the protocols only ever react
    to *recorded* permanent losses, never to packets that are merely
    slow (backoff-delayed), which is what keeps rate-0 behaviour exact.
    """

    cycle: int
    src: int
    dst: int
    kind: str
    op_id: int
    neuron: object
    link: str

    def describe(self) -> str:
        return (f"{self.kind} {self.src}->{self.dst} op={self.op_id} "
                f"lost on link {self.link} @cycle {self.cycle}")


@dataclass(frozen=True)
class DegradedResult:
    """One graceful-degradation event recorded on a run.

    Attributes:
        kind: "packet_lost", "watchdog_fire" or "writeback_forgiven".
        cycle: pass-local cycle the degradation was recorded.
        detail: human-readable description for reports and stall logs.
        neurons: output-neuron tags whose values are degraded (possibly
            empty for pure transport losses).
    """

    kind: str
    cycle: int
    detail: str
    neurons: tuple = ()


class FaultInjector:
    """Deterministic fault models + loss ledger for one pass.

    Args:
        config: the fault configuration (rates, protocol knobs).
        salt: pass-identity salt mixed into every *transient* fault key
            so different conv maps / sub-passes see independent fault
            patterns while staying reproducible (the salt derives from
            the map/sub-pass index, not from execution order).
            Permanent faults (stuck MAC lanes) deliberately ignore the
            salt: a broken lane is broken in every pass.
        tracer: optional :class:`repro.obs.Tracer`; every injected fault
            emits a ``fault.inject`` event when set.
    """

    def __init__(self, config: FaultConfig, salt: int = 0,
                 tracer=None) -> None:
        self.config = config
        self.salt = int(salt)
        self.rng = DeterministicRNG(config.seed)
        self._tracer = tracer
        self.stats = FaultStats()
        self.degraded: list[DegradedResult] = []
        self._losses: list[LostPacket] = []
        self._stuck: dict[tuple[int, int], tuple[int, int] | None] = {}
        # Probability that a 16-bit item has >= 1 flipped bit, and the
        # conditional thresholds for exactly-1 / exactly-2 flips, from
        # the per-bit rate (binomial).  Precomputed once so the per-item
        # hot path costs a single uniform draw in the common no-fault
        # case.
        p = config.dram_bitflip_rate
        if p > 0.0:
            p0 = (1.0 - p) ** ITEM_BITS
            p1 = ITEM_BITS * p * (1.0 - p) ** (ITEM_BITS - 1)
            p2 = (ITEM_BITS * (ITEM_BITS - 1) / 2.0
                  * p * p * (1.0 - p) ** (ITEM_BITS - 2))
            self._p_any = 1.0 - p0
            self._c1 = p1 / self._p_any
            self._c2 = (p1 + p2) / self._p_any
        else:
            self._p_any = 0.0
            self._c1 = self._c2 = 1.0

    # ------------------------------------------------------------------
    # DRAM read bit-flips (+ ECC model)
    # ------------------------------------------------------------------

    def corrupt_item(self, vault_id: int, issue_cycle: int, address: int,
                     slot: int, raw: int) -> int:
        """Maybe flip bits of one item read from a vault.

        Keyed by (vault, issue cycle, address, word slot): the identical
        read in any execution mode draws the identical fault.  The ECC
        model is per 16-bit item (a simplification of word-level SECDED,
        documented in docs/fault_injection.md): 1 flip corrected, 2
        detected (re-read at zero modelled cost), >= 3 silent.
        """
        if self._p_any <= 0.0:
            return raw
        u = self.rng.uniform(self.salt, SITE_DRAM, vault_id, issue_cycle,
                             address, slot)
        if u >= self._p_any:
            return raw
        pick = self.rng.uniform(self.salt, SITE_DRAM_BITS, vault_id,
                                issue_cycle, address, slot)
        n_flips = 1 if pick < self._c1 else (2 if pick < self._c2 else 3)
        bits: list[int] = []
        for index in range(n_flips):
            bit = self.rng.randint(ITEM_BITS, self.salt, SITE_DRAM_BITS,
                                   vault_id, issue_cycle, address, slot,
                                   index + 1)
            while bit in bits:  # distinct positions via linear probing
                bit = (bit + 1) % ITEM_BITS
            bits.append(bit)
        self.stats.dram_flip_events += 1
        self.stats.dram_bits_flipped += n_flips
        if self.config.ecc == "secded":
            if n_flips == 1:
                self.stats.ecc_corrected += 1
                self._emit_fault(issue_cycle, "dram.ecc_corrected",
                                 f"vault/{vault_id}",
                                 {"addr": address, "bits": n_flips})
                return raw
            if n_flips == 2:
                self.stats.ecc_detected += 1
                self._emit_fault(issue_cycle, "dram.ecc_detected",
                                 f"vault/{vault_id}",
                                 {"addr": address, "bits": n_flips})
                return raw
        self.stats.corrupted_items += 1
        self._emit_fault(issue_cycle, "dram.bitflip", f"vault/{vault_id}",
                         {"addr": address, "bits": n_flips})
        return _flip_bits(raw, tuple(bits))

    # ------------------------------------------------------------------
    # vault latency jitter
    # ------------------------------------------------------------------

    def read_extra_latency(self, vault_id: int, issue_cycle: int,
                           address: int) -> int:
        """Extra access-latency cycles for one vault read (0 = none)."""
        config = self.config
        if not self.rng.bernoulli(config.vault_jitter_rate, self.salt,
                                  SITE_JITTER, vault_id, issue_cycle,
                                  address):
            return 0
        extra = 1 + self.rng.randint(config.vault_jitter_max, self.salt,
                                     SITE_JITTER_SPAN, vault_id,
                                     issue_cycle, address)
        self.stats.jitter_events += 1
        self.stats.jitter_cycles += extra
        self._emit_fault(issue_cycle, "vault.jitter", f"vault/{vault_id}",
                         {"addr": address, "extra": extra})
        return extra

    # ------------------------------------------------------------------
    # NoC link transients
    # ------------------------------------------------------------------

    @property
    def noc_active(self) -> bool:
        """True when the link stage must take its fault/retry path."""
        return self.config.noc_active

    def link_fault(self, link_index: int, cycle: int) -> str | None:
        """Fault outcome for one link traversal attempt.

        Returns "drop", "corrupt" or None; one draw per attempt, keyed
        (link, cycle) — at most one packet crosses a link per cycle, so
        the key is unique per attempt and retransmissions of the same
        packet on later cycles draw independently.
        """
        config = self.config
        u = self.rng.uniform(self.salt, SITE_LINK, link_index, cycle)
        if u < config.noc_drop_rate:
            return "drop"
        if u < config.noc_drop_rate + config.noc_corrupt_rate:
            return "corrupt"
        return None

    def corrupt_payload(self, link_index: int, cycle: int,
                        raw: int) -> int:
        """Flip one payload bit (the undetected-corruption path)."""
        bit = self.rng.randint(ITEM_BITS, self.salt, SITE_LINK_BIT,
                               link_index, cycle)
        return _flip_bits(raw, (bit,))

    # ------------------------------------------------------------------
    # inter-cube SerDes link transients (multi-cube sharded runs)
    # ------------------------------------------------------------------

    @property
    def intercube_active(self) -> bool:
        """True when inter-cube exchanges must take their fault path."""
        return self.config.intercube_active

    def intercube_fault(self, exchange_salt: int, cube: int,
                        attempt: int) -> str | None:
        """Fault outcome for one inter-cube frame transmission attempt.

        Returns "drop", "corrupt" or None.  Keyed by the exchange's
        *logical* identity (a :func:`repro.faults.rng.pass_salt` of the
        exchange index and receiving cube) plus the attempt number —
        never by wall order or worker identity — so serial and sharded
        executions of the same plan draw the identical fault set.
        """
        config = self.config
        u = self.rng.uniform(self.salt, SITE_CUBE_LINK, exchange_salt,
                             cube, attempt)
        if u < config.intercube_drop_rate:
            return "drop"
        if u < config.intercube_drop_rate + config.intercube_corrupt_rate:
            return "corrupt"
        return None

    def intercube_corrupt_site(self, exchange_salt: int, cube: int,
                               n_items: int) -> tuple[int, int]:
        """(item index, bit) of a silent inter-cube frame corruption."""
        item = self.rng.randint(max(1, n_items), self.salt,
                                SITE_CUBE_LINK_BIT, exchange_salt, cube, 1)
        bit = self.rng.randint(ITEM_BITS, self.salt, SITE_CUBE_LINK_BIT,
                               exchange_salt, cube, 2)
        return item, bit

    def intercube_transfer(self, exchange_salt: int, cube: int,
                           serialization_cycles: int) -> tuple[int, int,
                                                               str | None]:
        """Run the CRC/retransmit protocol for one cube's inbound frame.

        Mirrors the mesh-link protocol at frame granularity: with CRC
        on, a corrupted frame is detected and retransmitted (retry ``k``
        waits ``retry_backoff * 2**k`` cycles plus the frame's
        serialization time again); a dropped frame additionally waits
        one ``retry_backoff`` for the ack timeout.  With CRC off, a
        corruption lands silently.  After ``max_retries`` failed
        retransmissions the frame is declared lost.

        Returns ``(extra_cycles, retransmissions, outcome)`` where
        ``outcome`` is None (clean delivery after 0+ retries),
        "corrupt" (silent corruption, CRC off) or "lost" (retry budget
        exhausted; the caller zeroes the received region and records the
        degradation).  At rate 0 the first draw is clean and the method
        returns ``(0, 0, None)`` without touching any counter.
        """
        config = self.config
        extra = 0
        retransmissions = 0
        attempt = 0
        while True:
            fault = self.intercube_fault(exchange_salt, cube, attempt)
            if fault is None:
                return extra, retransmissions, None
            if fault == "corrupt":
                self.stats.intercube_corruptions += 1
                if not config.crc:
                    self.stats.intercube_silent_corruptions += 1
                    return extra, retransmissions, "corrupt"
            else:
                self.stats.intercube_drops += 1
            if attempt >= config.max_retries:
                self.stats.intercube_frames_lost += 1
                return extra, retransmissions, "lost"
            self.stats.intercube_retries += 1
            backoff = config.retry_backoff * (2 ** attempt)
            if fault == "drop":
                backoff += config.retry_backoff
            extra += backoff + serialization_cycles
            retransmissions += 1
            attempt += 1

    # ------------------------------------------------------------------
    # stuck-at MAC faults (permanent; salt-independent)
    # ------------------------------------------------------------------

    def stuck_fault(self, pe_id: int, lane: int) -> tuple[int, int] | None:
        """The (bit, value) stuck fault of a MAC lane, or None.

        A permanent hardware fault: drawn once per (PE, lane) from the
        seed alone (no salt, no cycle), so the same physical lane is
        broken — identically — in every pass of the run.
        """
        key = (pe_id, lane)
        cached = self._stuck.get(key, -1)
        if cached != -1:
            return cached
        fault: tuple[int, int] | None = None
        if self.rng.bernoulli(self.config.mac_stuck_rate,
                              SITE_MAC, pe_id, lane):
            bit = self.rng.randint(ITEM_BITS, SITE_MAC, pe_id, lane, 1)
            value = self.rng.randint(2, SITE_MAC, pe_id, lane, 2)
            fault = (bit, value)
            self.stats.stuck_lanes += 1
        self._stuck[key] = fault
        return fault

    def apply_stuck(self, pe_id: int, lane: int, raw: int) -> int:
        """Force a lane's stuck bit onto an outgoing result value."""
        fault = self.stuck_fault(pe_id, lane)
        if fault is None:
            return raw
        bit, value = fault
        unsigned = raw & 0xFFFF
        forced = (unsigned | (1 << bit)) if value else (unsigned
                                                        & ~(1 << bit))
        if forced != unsigned:
            self.stats.stuck_applied += 1
        return forced - 0x10000 if forced & 0x8000 else forced

    # ------------------------------------------------------------------
    # loss ledger + degradation records
    # ------------------------------------------------------------------

    def record_loss(self, cycle: int, packet, link: str) -> LostPacket:
        """Register a packet dropped after exhausting its retry budget."""
        loss = LostPacket(cycle=cycle, src=packet.src, dst=packet.dst,
                          kind=packet.kind.value, op_id=packet.op_id,
                          neuron=packet.neuron, link=link)
        self._losses.append(loss)
        self.stats.packets_lost += 1
        self.record_degraded("packet_lost", cycle, loss.describe(),
                             neurons=(packet.neuron,)
                             if packet.neuron is not None else ())
        return loss

    def record_degraded(self, kind: str, cycle: int, detail: str,
                        neurons: tuple = ()) -> None:
        """Append one degradation record to the pass ledger."""
        self.degraded.append(DegradedResult(kind=kind, cycle=cycle,
                                            detail=detail,
                                            neurons=neurons))

    @property
    def has_losses(self) -> bool:
        """Cheap gate for the watchdog paths (False at rate 0, always)."""
        return bool(self._losses)

    def pending_losses(self) -> tuple[LostPacket, ...]:
        """Unresolved losses, for diagnostics (stall reports)."""
        return tuple(self._losses)

    def loss_matches(self, pe_id: int, op_id: int) -> bool:
        """True when a lost WEIGHT/STATE packet targets (pe, op)."""
        return any(loss.dst == pe_id and loss.op_id == op_id
                   and loss.kind in ("weight", "state")
                   for loss in self._losses)

    def resolve_losses(self, pe_id: int, op_id: int) -> None:
        """Drop ledger entries a watchdog force-fire just compensated."""
        self._losses = [loss for loss in self._losses
                        if not (loss.dst == pe_id and loss.op_id == op_id
                                and loss.kind in ("weight", "state"))]

    def has_lost_writebacks(self, node: int) -> bool:
        """True when a lost WRITEBACK was headed for this PNG node."""
        return any(loss.dst == node and loss.kind == "writeback"
                   for loss in self._losses)

    def take_lost_writebacks(self, node: int) -> list[LostPacket]:
        """Remove and return the lost write-backs destined to a node."""
        taken = [loss for loss in self._losses
                 if loss.dst == node and loss.kind == "writeback"]
        if taken:
            self._losses = [loss for loss in self._losses
                            if not (loss.dst == node
                                    and loss.kind == "writeback")]
        return taken

    # ------------------------------------------------------------------
    # tracer hook + checkpoint support
    # ------------------------------------------------------------------

    def _emit_fault(self, cycle: int, model: str, track: str,
                    args: dict) -> None:
        if self._tracer is not None:
            self._tracer.fault_inject(cycle, model, track, args)

    def state_dict(self) -> dict:
        """Picklable ledger/counter state for a checkpoint.

        The RNG needs no state (it is a pure function of seed x site);
        only the counters, the loss ledger and the degradation records
        accumulate.
        """
        return {"stats": FaultStats(**self.stats.as_dict()),
                "degraded": list(self.degraded),
                "losses": list(self._losses),
                "stuck": dict(self._stuck)}

    def load_state(self, state: dict) -> None:
        self.stats = FaultStats(**state["stats"].as_dict())
        self.degraded = list(state["degraded"])
        self._losses = list(state["losses"])
        self._stuck = dict(state["stuck"])
