"""repro.faults: deterministic fault injection and resilience.

Fault models (DRAM bit-flips with optional SECDED ECC, NoC link
transients, vault latency jitter, stuck-at MAC lanes) driven by a
counter-based :class:`DeterministicRNG`; link retry/timeout protocols
and per-PE watchdogs that degrade gracefully into
:class:`DegradedResult` records; and cycle-checkpoint/resume for long
runs.  See docs/fault_injection.md.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointSpec,
    CheckpointStore,
)
from repro.faults.config import ECC_MODES, FaultConfig
from repro.faults.injector import (
    DegradedResult,
    FaultInjector,
    FaultStats,
    LostPacket,
)
from repro.faults.rng import DeterministicRNG, pass_salt, splitmix64
from repro.faults.session import (
    CheckpointSession,
    FaultSession,
    current_checkpoint_session,
    current_fault_session,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "ECC_MODES",
    "CheckpointSession",
    "CheckpointSpec",
    "CheckpointStore",
    "DegradedResult",
    "DeterministicRNG",
    "FaultConfig",
    "FaultInjector",
    "FaultSession",
    "FaultStats",
    "LostPacket",
    "current_checkpoint_session",
    "current_fault_session",
    "pass_salt",
    "splitmix64",
]
