"""Cycle-checkpointing: periodic simulator snapshots + resume.

A long soak run should survive a crash.  :class:`CheckpointStore` keeps
a directory of pickled per-pass snapshots, one file per (pass label,
cycle); ``run_pass`` saves one every :attr:`CheckpointSpec.every` cycles
and, when resuming, loads the newest snapshot for its label and fast-
forwards past the simulated prefix.

Snapshots hold explicit per-agent ``state_dict()`` payloads, not pickled
agent graphs — the live graph is full of closures (routing lambdas, PNG
sinks over the shared ``outputs`` dict) that cannot pickle and would
drag the whole simulator along.  ``load_state`` restores mutable state
*in place* wherever closures capture it (the outputs dict, vault data),
so a resumed pass is the same object graph the uninterrupted run had at
that cycle: the remainder replays bit-identically.

Pass labels are stable across execution modes (they derive from the
descriptor name and the map/sub-pass index, never from worker identity),
so a serial resume can pick up a parallel run's checkpoints and vice
versa.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, SimulationError

#: Snapshot file-format version; bump on layout changes.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint policy for a run.

    Attributes:
        directory: where snapshot files live.
        every: snapshot period in simulated cycles (per pass).
        resume: when True, each pass first looks for its newest
            snapshot in ``directory`` and resumes from it; passes with
            no snapshot start from cycle 0 as usual.
        keep_last: retain only the newest K snapshots per pass label,
            pruning older ones after each save; 0 keeps everything.
            The newest snapshot is never pruned, so a label always
            stays resumable.
    """

    directory: str
    every: int = 0
    resume: bool = False
    keep_last: int = 0

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ConfigurationError(
                f"checkpoint period must be >= 0, got {self.every}")
        if self.keep_last < 0:
            raise ConfigurationError(
                f"checkpoint keep_last must be >= 0, got {self.keep_last}")
        if not self.every and not self.resume:
            raise ConfigurationError(
                "checkpoint spec needs a period (every > 0), resume=True, "
                "or both")


class CheckpointStore:
    """A directory of pickled pass snapshots, ``{label}@{cycle}.pkl``.

    Writes are atomic (temp file + ``os.replace``) so a crash mid-save
    never leaves a truncated snapshot for resume to trip over.

    Args:
        directory: where snapshot files live (created on demand).
        timer: optional zero-arg callable returning a context manager;
            when set, every :meth:`save`/:meth:`load` wraps its disk
            I/O in one (how live telemetry bills the ``checkpoint``
            phase without this module importing the obs layer).  Host-
            side only — it never affects snapshot contents.
        keep_last: retain only the newest K snapshots per label; every
            :meth:`save` prunes older ones afterwards.  0 disables
            pruning.  The just-saved (newest) snapshot is exempt, so a
            label is always resumable even with ``keep_last=1``.
    """

    def __init__(self, directory: str | Path, timer=None,
                 keep_last: int = 0) -> None:
        if keep_last < 0:
            raise ConfigurationError(
                f"checkpoint keep_last must be >= 0, got {keep_last}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.timer = timer
        self.keep_last = keep_last

    def _path(self, label: str, cycle: int) -> Path:
        if "@" in label or "/" in label:
            raise ConfigurationError(
                f"checkpoint label {label!r} must not contain '@' or '/'")
        return self.directory / f"{label}@{cycle:012d}.pkl"

    def save(self, label: str, cycle: int, state: dict) -> Path:
        """Atomically write one snapshot; returns its path."""
        path = self._path(label, cycle)
        payload = {"version": CHECKPOINT_VERSION, "label": label,
                   "cycle": cycle, "state": state}
        tmp = path.with_suffix(".tmp")
        if self.timer is not None:
            with self.timer():
                with tmp.open("wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
        else:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        if self.keep_last:
            self.prune(label, self.keep_last)
        return path

    def prune(self, label: str, keep_last: int) -> list[Path]:
        """Delete all but the newest ``keep_last`` snapshots of a label.

        Each removal is a single ``unlink`` (atomic on POSIX), oldest
        first, so an interrupted prune leaves a well-formed store that
        is simply less pruned.  ``keep_last`` is clamped to 1: the
        newest snapshot is never deleted, so resume always finds the
        furthest-forward state.  Returns the deleted paths.
        """
        keep = max(1, keep_last)
        cycles = self.checkpoints(label)
        deleted = []
        for cycle in cycles[:-keep] if len(cycles) > keep else []:
            path = self._path(label, cycle)
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            deleted.append(path)
        return deleted

    def checkpoints(self, label: str) -> list[int]:
        """Snapshot cycles available for a pass label, ascending."""
        prefix = f"{label}@"
        cycles = []
        for path in self.directory.glob(f"{prefix}*.pkl"):
            stem = path.name[len(prefix):-len(".pkl")]
            if stem.isdigit():
                cycles.append(int(stem))
        return sorted(cycles)

    def latest(self, label: str) -> int | None:
        """The newest snapshot cycle for a label, or None."""
        cycles = self.checkpoints(label)
        return cycles[-1] if cycles else None

    def load(self, label: str, cycle: int) -> dict:
        """Load one snapshot's state dict (validates version + header)."""
        path = self._path(label, cycle)
        try:
            if self.timer is not None:
                with self.timer(), path.open("rb") as handle:
                    payload = pickle.load(handle)
            else:
                with path.open("rb") as handle:
                    payload = pickle.load(handle)
        except FileNotFoundError as error:
            raise SimulationError(
                f"no checkpoint {label!r} @ cycle {cycle} in "
                f"{self.directory}") from error
        if payload.get("version") != CHECKPOINT_VERSION:
            raise SimulationError(
                f"checkpoint {path} has version {payload.get('version')}, "
                f"expected {CHECKPOINT_VERSION}")
        if payload.get("label") != label or payload.get("cycle") != cycle:
            raise SimulationError(
                f"checkpoint {path} header mismatch: "
                f"{payload.get('label')!r}@{payload.get('cycle')}")
        return payload["state"]
