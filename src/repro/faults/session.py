"""Ambient fault and checkpoint sessions.

Mirrors :class:`repro.obs.session.TraceSession`: a context manager that
makes a fault configuration (or checkpoint policy) ambient, so the
experiment runner's ``--faults`` / ``--checkpoint-every`` flags work
without threading parameters through every experiment.  While a
:class:`FaultSession` is active, every descriptor run that was not given
an explicit fault config injects with the session's; finished runs
register their fault counters and degradation records here.

Sessions are resolved *once*, at descriptor-run entry, into explicit
arguments — ambient state never crosses the process-pool boundary, so a
parallel run behaves identically to a serial one.

Sessions nest; the innermost active session wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.checkpoint import CheckpointSpec
from repro.faults.config import FaultConfig
from repro.faults.injector import DegradedResult, FaultStats

_ACTIVE_FAULTS: list["FaultSession"] = []
_ACTIVE_CHECKPOINTS: list["CheckpointSession"] = []


def current_fault_session() -> FaultSession | None:
    """The innermost active fault session, or None."""
    return _ACTIVE_FAULTS[-1] if _ACTIVE_FAULTS else None


def current_checkpoint_session() -> CheckpointSession | None:
    """The innermost active checkpoint session, or None."""
    return _ACTIVE_CHECKPOINTS[-1] if _ACTIVE_CHECKPOINTS else None


@dataclass
class CapturedFaults:
    """Fault outcome of one descriptor run captured by a session."""

    label: str
    stats: FaultStats
    degraded: tuple[DegradedResult, ...]


@dataclass
class FaultSession:
    """Makes a :class:`FaultConfig` ambient and collects run outcomes.

    Attributes:
        config: fault configuration applied to captured runs.
        runs: fault outcomes in execution order.
    """

    config: FaultConfig = field(default_factory=FaultConfig)
    runs: list[CapturedFaults] = field(default_factory=list)

    def __enter__(self) -> FaultSession:
        _ACTIVE_FAULTS.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE_FAULTS.remove(self)

    def add_run(self, label: str, stats: FaultStats,
                degraded: tuple[DegradedResult, ...]) -> None:
        """Register one finished descriptor run (simulator callback)."""
        self.runs.append(CapturedFaults(label=label, stats=stats,
                                        degraded=degraded))

    def total_stats(self) -> FaultStats:
        """All captured runs' counters folded in run order."""
        total = FaultStats()
        for run in self.runs:
            total.merge(run.stats)
        return total


@dataclass
class CheckpointSession:
    """Makes a :class:`CheckpointSpec` ambient for descriptor runs."""

    spec: CheckpointSpec

    def __enter__(self) -> CheckpointSession:
        _ACTIVE_CHECKPOINTS.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE_CHECKPOINTS.remove(self)
