"""Physical-unit helpers used across the library.

The library stores frequencies in hertz, times in seconds, energies in
joules, and powers in watts.  These helpers exist so that specification
tables read like the paper (``GHz(5)``, ``ns(27.5)``, ``pJ_per_bit(3.7)``)
rather than as bare exponents.
"""

from __future__ import annotations

KILO = 1e3
MEGA = 1e6
GIGA = 1e9

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12


def MHz(value: float) -> float:
    """Megahertz to hertz."""
    return value * MEGA


def GHz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * GIGA


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * NANO


def GBps(value: float) -> float:
    """Gigabytes per second to bytes per second."""
    return value * GIGA


def MB(value: float) -> float:
    """Megabytes to bytes."""
    return value * MEGA


def KB(value: float) -> float:
    """Kilobytes to bytes."""
    return value * KILO


def pJ(value: float) -> float:
    """Picojoules to joules."""
    return value * PICO


def mW(value: float) -> float:
    """Milliwatts to watts."""
    return value * MILLI


def mm2(value: float) -> float:
    """Square millimetres (kept as-is; the library's area unit is mm^2)."""
    return value


def cycles_for_time(duration_s: float, frequency_hz: float) -> int:
    """Number of whole clock cycles covering ``duration_s`` at ``frequency_hz``.

    Rounds up: a latency of 27.5 ns at 5 GHz costs 138 cycles, because the
    hardware cannot release data mid-cycle.
    """
    if duration_s < 0:
        raise ValueError(f"duration must be non-negative, got {duration_s}")
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    exact = duration_s * frequency_hz
    whole = int(exact)
    return whole if exact == whole else whole + 1


def seconds_for_cycles(cycles: float, frequency_hz: float) -> float:
    """Wall-clock seconds taken by ``cycles`` ticks at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def giga_ops_per_second(total_ops: float, total_cycles: float,
                        frequency_hz: float) -> float:
    """Throughput in GOPs/s given an op count and a cycle count."""
    if total_cycles <= 0:
        raise ValueError(f"cycle count must be positive, got {total_cycles}")
    return total_ops / seconds_for_cycles(total_cycles, frequency_hz) / GIGA
