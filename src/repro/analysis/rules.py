"""The NC1xx simulator-invariant lint rules.

Each rule encodes one invariant the cycle model's correctness rests on;
the catalogue with bad/good examples lives in
``docs/static_analysis.md``.  Importing this module registers every rule
with :mod:`repro.analysis.nclint`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.nclint import ModuleContext, Rule, register

#: Dotted-call prefixes that read ambient nondeterministic state.  Any
#: of these inside a cycle-model module would break bit-identical
#: replay, skip-ahead equivalence and timing-pass memoization.
_NONDETERMINISTIC_PREFIXES = (
    "time.", "random.", "np.random.", "numpy.random.", "datetime.",
)

_OBS_ALLOWED_MODULES = frozenset({
    # The tracer-hook protocol: agents accept an optional Tracer and the
    # simulator discovers the ambient TraceSession.  repro.obs.live is
    # the same shape for telemetry — the simulator reads the ambient
    # LiveTelemetry and bills host phases through opaque timer hooks.
    # Everything else in repro.obs (counters, exporters, manifests) is
    # presentation-layer.
    "repro.obs.tracer",
    "repro.obs.session",
    "repro.obs.live",
})

_TRACER_EXPR_RE = re.compile(r"^(self\.)?_?tracer$")


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _imported_modules(tree: ast.Module) -> Iterator[tuple[int, int, str]]:
    """Yield ``(line, col, module)`` for every import in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, node.col_offset, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:  # relative import: not a repro.* absolute path
                continue
            yield node.lineno, node.col_offset, node.module


@register
class NoWallClockOrRandom(Rule):
    """NC101: no wall-clock, random or datetime calls in the cycle model."""

    code = "NC101"
    title = "no wall-clock/random calls in cycle-model modules"
    rationale = (
        "The simulator guarantees bit-identical results across "
        "serial/parallel/skip-ahead/memoized execution; any read of "
        "host time or entropy inside repro.core/noc/memory silently "
        "breaks replay and memoization.")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for line, col, module in _imported_modules(ctx.tree):
            if module == "random" or module.startswith("random."):
                yield line, col, ("import of 'random' in cycle-model "
                                  f"module {ctx.module}")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            for prefix in _NONDETERMINISTIC_PREFIXES:
                if name.startswith(prefix):
                    yield (node.lineno, node.col_offset,
                           f"call to nondeterministic '{name}' in "
                           f"cycle-model module {ctx.module}")
                    break


@register
class ObsLayering(Rule):
    """NC102: cycle model reaches repro.obs only via the tracer hooks."""

    code = "NC102"
    title = "cycle model imports repro.obs only via the tracer protocol"
    rationale = (
        "Observability must stay optional and one-directional: agents "
        "accept a Tracer (repro.obs.tracer) and the simulator reads the "
        "ambient session (repro.obs.session).  Importing exporters, "
        "counters or manifests from the cycle model would invert the "
        "layering and drag I/O into the hot loop.")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for line, col, module in _imported_modules(ctx.tree):
            if module == "repro.obs" or module.startswith("repro.obs."):
                if module not in _OBS_ALLOWED_MODULES:
                    yield line, col, (
                        f"cycle-model module {ctx.module} imports "
                        f"{module}; only "
                        f"{sorted(_OBS_ALLOWED_MODULES)} are part of the "
                        f"tracer-hook protocol")


@register
class NnIsolation(Rule):
    """NC103: repro.nn may not import repro.core."""

    code = "NC103"
    title = "repro.nn does not reach into repro.core"
    rationale = (
        "The NN reference library is the simulator's ground truth; a "
        "dependency on repro.core would make the check circular and "
        "couple the numerics to simulator internals.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.nn")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for line, col, module in _imported_modules(ctx.tree):
            if module == "repro.core" or module.startswith("repro.core."):
                yield line, col, (
                    f"{ctx.module} imports {module}; repro.nn must stay "
                    f"independent of the simulator")


@register
class SchedulerContract(Rule):
    """NC104: next_event_delta and skip are defined together."""

    code = "NC104"
    title = "event-horizon scheduler contract is complete"
    rationale = (
        "The skip-ahead scheduler fast-forwards any agent whose "
        "next_event_delta exceeds one by calling skip; a class "
        "implementing only half the contract either cannot be skipped "
        "(stalling the event horizon) or advertises skippability it "
        "cannot honour.")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {item.name for item in node.body
                       if isinstance(item, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            has_delta = "next_event_delta" in methods
            has_skip = "skip" in methods
            if has_delta != has_skip:
                present, missing = (("next_event_delta", "skip")
                                    if has_delta
                                    else ("skip", "next_event_delta"))
                yield (node.lineno, node.col_offset,
                       f"class {node.name} defines {present} without "
                       f"{missing}; the scheduler contract needs both")


def _nonnull_guards(test: ast.expr) -> set[str]:
    """Expressions proven ``is not None`` when ``test`` is true."""
    guards: set[str] = set()
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        guards.add(ast.unparse(test.left))
    elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            guards |= _nonnull_guards(value)
    return guards


def _null_test_expr(test: ast.expr) -> str | None:
    """The expression X when ``test`` is exactly ``X is None``."""
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return ast.unparse(test.left)
    return None


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


class _TracerGuardScanner:
    """Flow-aware scan for unguarded tracer method calls.

    Tracks, per lexical position, the set of expressions proven
    ``is not None`` by enclosing ``if`` statements, ``and`` chains,
    conditional expressions, and early-return null checks — the guard
    idioms the hot paths actually use.
    """

    def __init__(self) -> None:
        self.findings: list[tuple[int, int, str]] = []

    def scan_block(self, stmts: list[ast.stmt], guards: set[str]) -> None:
        guards = set(guards)
        for stmt in stmts:
            self.scan_stmt(stmt, guards)
            if isinstance(stmt, ast.If) and _terminates(stmt.body):
                null_expr = _null_test_expr(stmt.test)
                if null_expr is not None:
                    guards.add(null_expr)

    def scan_stmt(self, stmt: ast.stmt, guards: set[str]) -> None:
        if isinstance(stmt, ast.If):
            self.scan_expr(stmt.test, guards)
            self.scan_block(stmt.body, guards | _nonnull_guards(stmt.test))
            orelse_guards = set(guards)
            null_expr = _null_test_expr(stmt.test)
            if null_expr is not None:
                orelse_guards.add(null_expr)
            self.scan_block(stmt.orelse, orelse_guards)
        elif isinstance(stmt, ast.While):
            self.scan_expr(stmt.test, guards)
            self.scan_block(stmt.body, guards | _nonnull_guards(stmt.test))
            self.scan_block(stmt.orelse, guards)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter, guards)
            self.scan_block(stmt.body, guards)
            self.scan_block(stmt.orelse, guards)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later; enclosing guards need not
            # hold at call time.
            self.scan_block(stmt.body, set())
        elif isinstance(stmt, ast.ClassDef):
            self.scan_block(stmt.body, set())
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr, guards)
            self.scan_block(stmt.body, guards)
        elif isinstance(stmt, ast.Try):
            self.scan_block(stmt.body, guards)
            for handler in stmt.handlers:
                self.scan_block(handler.body, guards)
            self.scan_block(stmt.orelse, guards)
            self.scan_block(stmt.finalbody, guards)
        else:
            for child in ast.iter_child_nodes(stmt):
                self.scan_expr(child, guards)

    def scan_expr(self, node: ast.AST, guards: set[str]) -> None:
        if isinstance(node, ast.IfExp):
            self.scan_expr(node.test, guards)
            self.scan_expr(node.body, guards | _nonnull_guards(node.test))
            orelse_guards = set(guards)
            null_expr = _null_test_expr(node.test)
            if null_expr is not None:
                orelse_guards.add(null_expr)
            self.scan_expr(node.orelse, orelse_guards)
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            acc = set(guards)
            for value in node.values:
                self.scan_expr(value, acc)
                acc |= _nonnull_guards(value)
            return
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            base = ast.unparse(node.func.value)
            if _TRACER_EXPR_RE.match(base) and base not in guards:
                self.findings.append((
                    node.lineno, node.col_offset,
                    f"tracer emit '{base}.{node.func.attr}(...)' not "
                    f"guarded by '{base} is not None'"))
        for child in ast.iter_child_nodes(node):
            self.scan_expr(child, guards)


@register
class TracerEmitsGuarded(Rule):
    """NC105: every tracer emit sits behind an ``is not None`` guard."""

    code = "NC105"
    title = "tracer emits guarded by 'is not None'"
    rationale = (
        "The untraced hot path must stay a single pointer comparison "
        "per instrumentation site.  An unguarded tracer call crashes "
        "every untraced run with AttributeError on None — or worse, "
        "quietly adds per-cycle overhead.")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        scanner = _TracerGuardScanner()
        scanner.scan_block(ctx.tree.body, set())
        yield from scanner.findings


@register
class NoAmbientEnvironment(Rule):
    """NC106: no environment-variable reads in the cycle model."""

    code = "NC106"
    title = "no ambient environment reads in cycle-model modules"
    rationale = (
        "os.environ is ambient state: two runs of the same plan on the "
        "same inputs could diverge because a shell variable changed.  "
        "Configuration must flow through NeurocubeConfig fields (waived "
        "call sites must prove they cannot alter simulated results).")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for line, col, module in _imported_modules(ctx.tree):
            if module == "os.environ":
                yield line, col, "import of os.environ in cycle model"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in ("environ", "getenv", "putenv"):
                        yield (node.lineno, node.col_offset,
                               f"import of os.{alias.name} in "
                               f"cycle-model module {ctx.module}")
            name = (_dotted_name(node)
                    if isinstance(node, ast.Attribute) else None)
            if name in ("os.environ", "os.getenv", "os.putenv"):
                yield (node.lineno, node.col_offset,
                       f"ambient environment access '{name}' in "
                       f"cycle-model module {ctx.module}")


@register
class NoBareAsserts(Rule):
    """NC107: datapath code raises typed errors, not bare asserts."""

    code = "NC107"
    title = "no bare asserts in cycle-model modules"
    rationale = (
        "Asserts vanish under 'python -O' and carry no message a user "
        "can act on.  Datapath validation must raise the typed "
        "repro.errors hierarchy (ConfigurationError, MappingError, "
        "SimulationError) with actionable messages.")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield (node.lineno, node.col_offset,
                       f"bare assert in cycle-model module {ctx.module}; "
                       f"raise a typed repro.errors exception instead")


#: Module roots whose import anywhere in the cycle model means ambient,
#: order-dependent entropy.  ``repro.faults`` provides the counter-based
#: :class:`repro.faults.rng.DeterministicRNG` instead.
_AMBIENT_RNG_MODULES = ("random", "numpy.random")


@register
class NoAmbientRNG(Rule):
    """NC108: fault injection must use the counter-based RNG."""

    code = "NC108"
    title = "no ambient RNG imports in cycle-model modules"
    rationale = (
        "Stateful generators (random.Random, numpy.random) draw in "
        "execution order, which differs between serial, parallel and "
        "skip-ahead runs, and their hidden state would have to ride in "
        "every checkpoint.  Fault injection and any other stochastic "
        "modelling must go through repro.faults.rng.DeterministicRNG, "
        "whose draws are pure functions of (seed, site key).")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        # Plain and dotted imports (``import random``,
        # ``import numpy.random as npr``) plus from-imports of the
        # module itself or any name out of it
        # (``from random import gauss``, ``from numpy import random``).
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if any(alias.name == root
                           or alias.name.startswith(root + ".")
                           for root in _AMBIENT_RNG_MODULES):
                        yield (node.lineno, node.col_offset,
                               f"ambient RNG import '{alias.name}' in "
                               f"cycle-model module {ctx.module}; use "
                               f"repro.faults.rng.DeterministicRNG")
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue
                if any(node.module == root
                       or node.module.startswith(root + ".")
                       for root in _AMBIENT_RNG_MODULES):
                    yield (node.lineno, node.col_offset,
                           f"from-import of ambient RNG module "
                           f"'{node.module}' in cycle-model module "
                           f"{ctx.module}; use "
                           f"repro.faults.rng.DeterministicRNG")
                elif node.module == "numpy" and any(
                        alias.name == "random" for alias in node.names):
                    yield (node.lineno, node.col_offset,
                           f"from-import of numpy.random in cycle-model "
                           f"module {ctx.module}; use "
                           f"repro.faults.rng.DeterministicRNG")


#: Module roots that exist to persist state: importing any of them in a
#: cycle-model module means ad-hoc durable state off the validated paths.
_DURABLE_STATE_MODULES = ("pickle", "shelve", "marshal", "dbm")

#: The sanctioned durable-state modules: the checkpoint store, the
#: persistent memo store, and the cross-run registry.  All three do
#: atomic versioned writes and validate (or reject) entries on load;
#: everything else in the cycle model must go through them.  (The
#: registry lives outside the cycle-model packages, so the entry is
#: future-proofing: it stays sanctioned if the packages it may move
#: under ever join CYCLE_MODEL_PACKAGES.)
_PERSISTENCE_ALLOWED_MODULES = frozenset({
    "repro.faults.checkpoint",
    "repro.memo.store",
    "repro.obs.registry",
})


@register
class NoAdhocPersistence(Rule):
    """NC109: durable state only via the checkpoint/memo stores."""

    code = "NC109"
    title = "no ad-hoc open()/pickle persistence in cycle-model modules"
    rationale = (
        "Durable state that bypasses the validated stores "
        "(repro.faults.checkpoint, repro.memo.store) is written "
        "non-atomically, carries no version or fingerprint header, and "
        "is replayed without the key-to-hash check — a torn or stale "
        "file then silently corrupts a bit-identical run.  Cycle-model "
        "code must persist through CheckpointStore or MemoStore.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return (ctx.in_cycle_model()
                and ctx.module not in _PERSISTENCE_ALLOWED_MODULES)

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for line, col, module in _imported_modules(ctx.tree):
            root = module.split(".", 1)[0]
            if root in _DURABLE_STATE_MODULES:
                yield line, col, (
                    f"import of serialisation module '{module}' in "
                    f"cycle-model module {ctx.module}; persist through "
                    f"CheckpointStore or MemoStore instead")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield (node.lineno, node.col_offset,
                       f"ad-hoc open() in cycle-model module "
                       f"{ctx.module}; persist through CheckpointStore "
                       f"or MemoStore instead")
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                yield (node.lineno, node.col_offset,
                       f"ad-hoc '{ast.unparse(func)}(...)' in "
                       f"cycle-model module {ctx.module}; persist "
                       f"through CheckpointStore or MemoStore instead")


#: The one module allowed to read the monotonic clock: live telemetry's
#: phase timers.  Everything else — including host-side tooling — must
#: take timing through those timers so phase accounting stays complete
#: and a grep for monotonic() has exactly one hit.
_PHASE_TIMING_MODULE = "repro.obs.live"

_MONOTONIC_CALLS = ("time.monotonic", "time.monotonic_ns")


@register
class NoAdhocPhaseTiming(Rule):
    """NC110: ``time.monotonic`` only inside ``repro.obs.live``."""

    code = "NC110"
    title = "host-phase timing only via repro.obs.live timers"
    rationale = (
        "Scattered time.monotonic() calls fragment host-phase "
        "accounting: a phase timed outside LiveTelemetry never reaches "
        "the phase_seconds metric, the manifest's phases block, or the "
        "OpenMetrics export, so the breakdown silently under-reports.  "
        "All host timing goes through repro.obs.live phase timers "
        "(ambient_phase / ambient_timer); only that module may read "
        "the monotonic clock.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        # Unlike the NC10x rules this applies to *every* module, not
        # just the cycle model — ad-hoc timing in tooling leaks past
        # the phase breakdown just the same.
        return ctx.module != _PHASE_TIMING_MODULE

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                if node.level:
                    continue
                for alias in node.names:
                    if alias.name in ("monotonic", "monotonic_ns"):
                        yield (node.lineno, node.col_offset,
                               f"import of time.{alias.name} in "
                               f"{ctx.module}; time host phases via "
                               f"repro.obs.live timers instead")
            elif isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name in _MONOTONIC_CALLS:
                    yield (node.lineno, node.col_offset,
                           f"ad-hoc '{name}()' in {ctx.module}; time "
                           f"host phases via repro.obs.live timers "
                           f"(ambient_phase / LiveTelemetry.phase) "
                           f"instead")


#: Builtins whose result depends on the order their input arrives in
#: (float sums, sequence construction, string joins).  Feeding them a
#: set makes the outcome hash-order-dependent.
_ORDER_DEPENDENT_FOLDS = frozenset({"sum", "list", "tuple"})


def _set_expr_label(node: ast.expr) -> str | None:
    """A short label when ``node`` is syntactically an unordered set."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name in ("set", "frozenset"):
            return f"a {name}(...) call"
    return None


@register
class NoUnorderedFolds(Rule):
    """NC111: no iteration/reduction over unordered sets in the cycle
    model."""

    code = "NC111"
    title = "no set-ordered iteration or dict.popitem in cycle-model folds"
    rationale = (
        "Set iteration order follows the hash seed, and dict.popitem "
        "pops whatever happens to be last — a reduction folded over "
        "either gives results that differ between interpreter runs.  "
        "The sharded executor's barrier arithmetic is exactly such a "
        "fold (parent-side integer math over per-cube outcomes, in "
        "cube order); any cycle-model reduction must iterate a list, "
        "tuple or sorted() view so serial, parallel and replayed runs "
        "fold identically.")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                label = _set_expr_label(node.iter)
                if label is not None:
                    yield (node.iter.lineno, node.iter.col_offset,
                           f"for-loop over {label} in cycle-model "
                           f"module {ctx.module}; iteration order "
                           f"follows the hash seed — fold over a list, "
                           f"tuple or sorted() view")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    label = _set_expr_label(gen.iter)
                    if label is not None:
                        yield (gen.iter.lineno, gen.iter.col_offset,
                               f"comprehension over {label} in "
                               f"cycle-model module {ctx.module}; "
                               f"iterate a sorted() view instead")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "popitem"):
                    yield (node.lineno, node.col_offset,
                           f"'{ast.unparse(func)}()' in cycle-model "
                           f"module {ctx.module}; popitem order is "
                           f"incidental — pop an explicit key instead")
                    continue
                name = func.id if isinstance(func, ast.Name) else None
                is_join = (isinstance(func, ast.Attribute)
                           and func.attr == "join")
                if ((name in _ORDER_DEPENDENT_FOLDS or is_join)
                        and node.args):
                    label = _set_expr_label(node.args[0])
                    if label is not None:
                        what = "join" if is_join else name
                        yield (node.lineno, node.col_offset,
                               f"order-dependent '{what}' over {label} "
                               f"in cycle-model module {ctx.module}; "
                               f"the fold result would follow the "
                               f"hash seed — sort first")


#: Dotted call names that block the event loop when awaited-around in
#: service coroutines.  ``asyncio`` has a native replacement for each:
#: asyncio.sleep, asyncio.create_subprocess_exec, loop.run_in_executor.
_BLOCKING_ASYNC_CALLS = (
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.popen",
)


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes in the coroutine's own body, skipping nested ``def``s.

    A nested (sync) helper may block legitimately — it runs wherever
    it is *called* from, and a nested ``async def`` is visited on its
    own by the outer walk.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class NoBlockingInAsync(Rule):
    """NC112: no blocking calls inside ``async def`` bodies of the
    service."""

    code = "NC112"
    title = "no blocking calls in async service coroutines"
    rationale = (
        "The service runs admission, liveness and deadline sweeps on "
        "one event loop; a single time.sleep, synchronous subprocess "
        "call or un-awaited file open() inside a coroutine freezes "
        "every tenant at once — heartbeats go unread, deadlines fire "
        "late, and the liveness detector can mistake its own stalled "
        "loop for a dead worker.  Coroutines in repro.serve must use "
        "asyncio.sleep / create_subprocess_exec / run_in_executor "
        "(or hand blocking work to the worker pool).")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro.serve")

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _async_body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _dotted_name(node.func)
                if name in _BLOCKING_ASYNC_CALLS:
                    yield (node.lineno, node.col_offset,
                           f"blocking '{name}()' inside async def "
                           f"{func.name} in {ctx.module}; this stalls "
                           f"the whole service event loop — use the "
                           f"asyncio equivalent")
                elif (isinstance(node.func, ast.Name)
                        and node.func.id == "open"):
                    yield (node.lineno, node.col_offset,
                           f"blocking file open() inside async def "
                           f"{func.name} in {ctx.module}; file I/O "
                           f"blocks the event loop — use "
                           f"run_in_executor or do it before/after "
                           f"the coroutine runs")


#: Seeded one-violation sources per rule, keyed by code: the
#: ``nclint --self-test`` corpus.  Each fixture is the smallest module
#: (name, source) on which the rule must fire; the self-test also
#: re-lints with an ``allow()`` pragma to prove the waiver path works.
#: A rule registered without a fixture here fails the self-test.
SELF_TEST_FIXTURES: dict[str, tuple[str, str]] = {
    "NC101": ("repro.core.selftest",
              "import time\n\n"
              "def stamp():\n"
              "    return time.time()\n"),
    "NC102": ("repro.core.selftest",
              "from repro.obs.exporters import dump\n"),
    "NC103": ("repro.nn.selftest",
              "import repro.core\n"),
    "NC104": ("repro.core.selftest",
              "class Vault:\n"
              "    def next_event_delta(self):\n"
              "        return 1\n"),
    "NC105": ("repro.core.selftest",
              "class PE:\n"
              "    def fire(self):\n"
              "        self._tracer.mac_fire(self.cycle, 0)\n"),
    "NC106": ("repro.core.selftest",
              "from os import environ\n"),
    "NC107": ("repro.core.selftest",
              "def check(x):\n"
              "    assert x > 0\n"),
    "NC108": ("repro.faults.selftest",
              "import numpy.random\n"),
    "NC109": ("repro.memo.selftest",
              "import pickle\n"),
    "NC110": ("repro.obs.selftest",
              "import time\n\n"
              "def phase():\n"
              "    return time.monotonic()\n"),
    "NC111": ("repro.core.selftest",
              "def fold(states):\n"
              "    return sum({1, 2, 3})\n"),
    "NC112": ("repro.serve.selftest",
              "import time\n\n"
              "async def tick():\n"
              "    time.sleep(0.1)\n"),
}
