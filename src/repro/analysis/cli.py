"""Command-line front ends for nclint and nccheck.

Installed as the ``nclint`` / ``nccheck`` console scripts
(``pyproject.toml``); also reachable without installation through the
``tools/nclint.py`` and ``tools/nccheck.py`` shims.  Both exit nonzero
on any violation, so a CI step is just the bare invocation.
"""

from __future__ import annotations

import argparse

from repro.analysis import nccheck, nclint


def nclint_main(argv: list[str] | None = None) -> int:
    """Lint source trees against the NC1xx simulator invariants."""
    parser = argparse.ArgumentParser(
        prog="nclint",
        description="AST linter for Neurocube simulator invariants "
                    "(rules NC101-NC1xx; see docs/static_analysis.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="also write the JSON report here "
                             "(the CI artifact)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its seeded "
                             "fixture and that allow() waives it")
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in nclint.rule_catalogue():
            print(f"{entry['code']}: {entry['title']}")
            print(f"    {entry['rationale']}")
        return 0

    if args.self_test:
        failures = nclint.self_test()
        for failure in failures:
            print(f"nclint self-test FAILED: {failure}")
        rules = nclint.rule_catalogue()
        print(f"nclint self-test: {len(rules)} rule(s), "
              f"{len(failures)} failure(s)")
        if args.json_path:
            nclint.write_report(
                {"kind": "nclint-selftest-report",
                 "rules_checked": len(rules),
                 "failures": failures}, args.json_path)
        return 1 if failures else 0

    select = (args.select.split(",") if args.select else None)
    violations, files_checked = nclint.lint_paths(args.paths or ["src"],
                                                  select=select)
    for violation in violations:
        print(violation.format())
    if args.json_path:
        nclint.write_report(
            nclint.report_dict(violations, files_checked),
            args.json_path)
    print(f"nclint: {len(violations)} violation(s) in "
          f"{files_checked} file(s)")
    return 1 if violations else 0


def _parse_cube_counts(spec: str) -> list[int]:
    counts = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        count = int(part)
        if count < 1:
            raise ValueError(f"cube count must be >= 1, got {count}")
        counts.append(count)
    if not counts:
        raise ValueError(f"no cube counts in {spec!r}")
    return counts


def nccheck_main(argv: list[str] | None = None) -> int:
    """Statically verify compiled neurosequence plans and shard plans."""
    parser = argparse.ArgumentParser(
        prog="nccheck",
        description="Static verifier for compiled PassPlans (checks "
                    "NC201-NC2xx) and multi-cube shard plans (checks "
                    "NC301-NC3xx; see docs/static_analysis.md).")
    parser.add_argument("--self-test", action="store_true",
                        help="seed a violation for every plan check and "
                             "every shard check and verify each fires "
                             "(the CI mode)")
    parser.add_argument("--demo", action="store_true",
                        help="compile a small conv/pool/fc network and "
                             "verify every descriptor of its inference "
                             "and training programs")
    parser.add_argument("--cubes", metavar="N[,N...]",
                        help="shard the ext_shard workload across each "
                             "listed cube count and statically verify "
                             "every plan (NC301-NC306); e.g. "
                             "--cubes 1,2,4")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="also write the JSON report here "
                             "(the CI artifact)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check catalogues and exit")
    args = parser.parse_args(argv)

    from repro.analysis import shardcheck

    if args.list_checks:
        for entry in (nccheck.CHECK_CATALOGUE
                      + shardcheck.SHARD_CHECK_CATALOGUE):
            print(f"{entry.code}: {entry.title}")
            print(f"    {entry.guarantee}")
        return 0

    if args.self_test:
        failures = nccheck.self_test()
        shard_failures = shardcheck.self_test()
        checks = (nccheck.CHECK_CATALOGUE
                  + shardcheck.SHARD_CHECK_CATALOGUE)
        report = {"kind": "nccheck-selftest",
                  "checks": [vars(e) for e in checks],
                  "failures": failures + shard_failures}
        if args.json_path:
            nccheck.write_report(report, args.json_path)
        for failure in failures + shard_failures:
            print(f"nccheck self-test FAILED: {failure}")
        print(f"nccheck self-test: {len(checks)} checks "
              f"({len(nccheck.CHECK_CATALOGUE)} plan + "
              f"{len(shardcheck.SHARD_CHECK_CATALOGUE)} shard), "
              f"{len(failures) + len(shard_failures)} failure(s)")
        return 1 if failures or shard_failures else 0

    if args.cubes:
        from repro.core.config import NeurocubeConfig
        from repro.core.multicube import MultiCubeConfig
        from repro.core.shard import shard_network
        from repro.experiments.ext_shard import shard_workload

        try:
            counts = _parse_cube_counts(args.cubes)
        except ValueError as error:
            parser.error(str(error))
        network = shard_workload()
        cube = NeurocubeConfig.hmc_15nm()
        reports = []
        bad = 0
        for count in counts:
            cluster = MultiCubeConfig(cube=cube, n_cubes=count)
            plan = shard_network(network, cluster, validate=False)
            report = shardcheck.report_shard_plan(
                plan, cluster, label=f"{network.name}@{count}cube")
            reports.append(report)
            bad += report["violation_count"]
            print(f"  {network.name} on {count} cube(s): "
                  f"{report['violation_count']} violation(s) across "
                  f"{len(report['checks'])} check(s), "
                  f"{report['exchanges']} exchange(s)")
            for check in report["checks"]:
                if check["status"] == "skipped":
                    print(f"    {check['code']} skipped: "
                          f"{check['skipped']}")
                for violation in check["violations"]:
                    print(f"    {violation['code']} "
                          f"{violation['message']}")
        if args.json_path:
            nccheck.write_report(
                {"kind": "ncshardcheck-report-set",
                 "cube_counts": counts, "violation_count": bad,
                 "reports": reports}, args.json_path)
        print(f"nccheck: {bad} shard-plan violation(s) across "
              f"{len(counts)} cube count(s)")
        return 1 if bad else 0

    if args.demo:
        from repro.core.compiler import compile_inference, compile_training
        from repro.core.config import NeurocubeConfig
        from repro.nn.layers import AvgPool2D, Conv2D, Dense, Flatten
        from repro.nn.network import Network

        network = Network(
            [Conv2D(4, 3), AvgPool2D(2), Flatten(), Dense(10)],
            input_shape=(2, 12, 12), name="nccheck-demo")
        config = NeurocubeConfig.hmc_15nm()
        reports = []
        for program in (compile_inference(network, config),
                        compile_training(network, config)):
            reports.extend(nccheck.verify_program(program, config))
        if args.json_path:
            nccheck.write_report(nccheck.report_dict(reports),
                                 args.json_path)
        bad = 0
        for report in reports:
            status = ("skipped" if not report.checked
                      else "FAIL" if report.violations else "ok")
            note = f"  ({report.note})" if report.note else ""
            print(f"  {report.name}: {status}{note}")
            for violation in report.violations:
                print(f"    {violation.format()}")
                bad += 1
        print(f"nccheck: {bad} violation(s) across "
              f"{len(reports)} descriptor(s)")
        return 1 if bad else 0

    parser.print_usage()
    print("nccheck: nothing to do (pass --self-test, --demo, "
          "--cubes or --list-checks)")
    return 2
