"""nclint — AST-based simulator-invariant linter engine.

Generic lint engines (ruff, flake8) check Python style; they cannot
express the invariants this simulator's correctness rests on — that no
wall-clock or random call hides inside a cycle-model module, that the
observability layer is only reachable through the tracer-hook protocol,
or that every agent implementing ``next_event_delta`` also implements
``skip``.  ``nclint`` checks exactly those: each rule is a small plugin
registered under an ``NC1xx`` code, run over the :mod:`ast` of every
source file.

The engine is dependency-free (stdlib ``ast`` only).  Rules live in
:mod:`repro.analysis.rules`; importing that module populates the
registry.  Use :func:`lint_paths` for files/trees, :func:`lint_source`
for in-memory sources (the fixture tests lint seeded-violation snippets
without touching disk).

Suppression: a violation is waived when its line — or a comment line
directly above it — carries ``# nclint: allow(NCxxx) <reason>``.  The
pragma names specific codes; there is no blanket waiver.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

#: Packages whose modules form the deterministic cycle model.  Rules
#: scoped to the cycle model apply to any module under these roots.
CYCLE_MODEL_PACKAGES = ("repro.core", "repro.noc", "repro.memory",
                        "repro.faults", "repro.memo")

_PRAGMA_RE = re.compile(r"#.*\bnclint:\s*allow\(([A-Z0-9,\s]+)\)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.column + 1}: "
                f"{self.code} {self.message}")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule sees about one module under lint."""

    module: str
    path: str
    tree: ast.Module
    lines: tuple[str, ...]

    def in_cycle_model(self) -> bool:
        return any(self.module == pkg or self.module.startswith(pkg + ".")
                   for pkg in CYCLE_MODEL_PACKAGES)

    def in_package(self, package: str) -> bool:
        return (self.module == package
                or self.module.startswith(package + "."))


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code` (``NC1xx``), :attr:`title` and
    :attr:`rationale`, and implement :meth:`check` yielding
    ``(line, column, message)`` triples.  :meth:`applies_to` scopes the
    rule; the default is cycle-model modules only.
    """

    code: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_cycle_model()

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
        raise NotImplementedError


#: Registered rules by code, populated by the :func:`register` decorator.
RULES: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"{rule_cls.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule_cls


def _ensure_rules_loaded() -> None:
    if not RULES:
        from repro.analysis import rules  # noqa: F401  (registration)


def _suppressed(ctx: ModuleContext, line: int, code: str) -> bool:
    """True when an ``nclint: allow(...)`` pragma waives ``code`` here.

    Checks the violation's own line, then walks upward over directly
    preceding comment-only lines (a pragma often cannot fit within the
    line-length budget of the statement it waives).
    """
    candidates = []
    if 0 < line <= len(ctx.lines):
        candidates.append(ctx.lines[line - 1])
    above = line - 2
    while above >= 0 and ctx.lines[above].lstrip().startswith("#"):
        candidates.append(ctx.lines[above])
        above -= 1
    for text in candidates:
        match = _PRAGMA_RE.search(text)
        if match and code in {c.strip() for c in match.group(1).split(",")}:
            return True
    return False


def lint_source(source: str, module: str,
                path: str = "<string>",
                select: Iterable[str] | None = None) -> list[Violation]:
    """Lint one in-memory module; returns violations sorted by line.

    A module that does not parse cannot be checked against any rule, so
    a syntax error is itself reported as a violation (code ``NC100``)
    rather than aborting the whole run.
    """
    _ensure_rules_loaded()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Violation(code="NC100",
                          message=f"file does not parse: {error.msg} "
                                  f"(syntax error)",
                          path=path, line=error.lineno or 1,
                          column=(error.offset or 1) - 1)]
    ctx = ModuleContext(module=module, path=path, tree=tree,
                        lines=tuple(source.splitlines()))
    wanted = set(select) if select is not None else None
    violations: list[Violation] = []
    for code, rule in sorted(RULES.items()):
        if wanted is not None and code not in wanted:
            continue
        if not rule.applies_to(ctx):
            continue
        for line, column, message in rule.check(ctx):
            if _suppressed(ctx, line, code):
                continue
            violations.append(Violation(code=code, message=message,
                                        path=path, line=line,
                                        column=column))
    return sorted(violations, key=lambda v: (v.line, v.column, v.code))


def module_name_for(path: Path) -> str:
    """Infer the dotted module name of a source file.

    Walks the path's parts for the last ``repro`` component (the package
    root under ``src/``) and joins from there; files outside the package
    (tools, tests) fall back to their stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else ""


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        else:
            yield path


def lint_paths(paths: Iterable[str | Path],
               select: Iterable[str] | None = None,
               ) -> tuple[list[Violation], int]:
    """Lint files/trees; returns ``(violations, files_checked)``."""
    violations: list[Violation] = []
    checked = 0
    for path in iter_python_files(paths):
        source = path.read_text()
        violations.extend(lint_source(
            source, module_name_for(path), path=str(path), select=select))
        checked += 1
    return violations, checked


def self_test() -> list[str]:
    """Verify every registered rule fires on its seeded fixture.

    For each rule in the registry: lint its
    :data:`repro.analysis.rules.SELF_TEST_FIXTURES` entry restricted to
    that one code and require at least one hit, then re-lint with an
    ``nclint: allow(<code>)`` pragma inserted directly above the first
    hit and require silence there — proving both the detector and its
    waiver path work.  Returns failure strings; empty means pass.
    """
    _ensure_rules_loaded()
    from repro.analysis.rules import SELF_TEST_FIXTURES

    failures: list[str] = []
    for code in sorted(RULES):
        fixture = SELF_TEST_FIXTURES.get(code)
        if fixture is None:
            failures.append(f"{code}: no self-test fixture seeded")
            continue
        module, source = fixture
        hits = [v for v in lint_source(source, module, select=[code])
                if v.code == code]
        if not hits:
            failures.append(f"{code}: rule did not fire on its fixture")
            continue
        lines = source.splitlines()
        lines.insert(hits[0].line - 1,
                     f"# nclint: allow({code}) self-test waiver")
        waived = lint_source("\n".join(lines) + "\n", module,
                             select=[code])
        if any(v.code == code and v.line == hits[0].line + 1
               for v in waived):
            failures.append(f"{code}: allow() pragma did not waive "
                            f"the fixture violation")
    for code in SELF_TEST_FIXTURES:
        if code not in RULES:
            failures.append(f"{code}: fixture seeded but no such rule "
                            f"is registered")
    return failures


def rule_catalogue() -> list[dict]:
    """The registered rules as JSON-compatible records."""
    _ensure_rules_loaded()
    return [{"code": code, "title": rule.title,
             "rationale": rule.rationale}
            for code, rule in sorted(RULES.items())]


def report_dict(violations: list[Violation], files_checked: int) -> dict:
    """JSON-compatible lint report (the CI artifact format)."""
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.code] = counts.get(violation.code, 0) + 1
    return {
        "kind": "nclint-report",
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts_by_code": counts,
        "violations": [vars(v) for v in violations],
        "rules": rule_catalogue(),
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
