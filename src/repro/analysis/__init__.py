"""Static analysis for the Neurocube reproduction.

Two engines, two layers of the stack:

* :mod:`repro.analysis.nclint` — an AST linter over the *codebase*,
  enforcing the simulator invariants generic linters cannot express
  (determinism, layering, the scheduler contract, guarded tracer
  emits).  Rules carry ``NC1xx`` codes.
* :mod:`repro.analysis.nccheck` — a static verifier over compiled
  *plans* (:class:`~repro.core.scheduler.PassPlan`), proving
  deadlock-freedom, OP-ID/cache/address/route well-formedness and the
  memoization invariant before a single cycle is simulated.  Checks
  carry ``NC2xx`` codes.

See ``docs/static_analysis.md`` for the full catalogue.
"""

from repro.analysis.nccheck import (
    CHECK_CATALOGUE,
    DescriptorReport,
    PlanViolation,
    check_plan,
    self_test,
    stall_boundaries,
    verify_memo_pairs,
    verify_plan,
    verify_program,
)
from repro.analysis.nclint import (
    RULES,
    Rule,
    Violation,
    lint_paths,
    lint_source,
    rule_catalogue,
)

__all__ = [
    "CHECK_CATALOGUE",
    "DescriptorReport",
    "PlanViolation",
    "RULES",
    "Rule",
    "Violation",
    "check_plan",
    "lint_paths",
    "lint_source",
    "rule_catalogue",
    "self_test",
    "stall_boundaries",
    "verify_memo_pairs",
    "verify_plan",
    "verify_program",
]
