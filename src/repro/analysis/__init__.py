"""Static analysis for the Neurocube reproduction.

Three engines, three layers of the stack:

* :mod:`repro.analysis.nclint` — an AST linter over the *codebase*,
  enforcing the simulator invariants generic linters cannot express
  (determinism, layering, the scheduler contract, guarded tracer
  emits).  Rules carry ``NC1xx`` codes.
* :mod:`repro.analysis.nccheck` — a static verifier over compiled
  *plans* (:class:`~repro.core.scheduler.PassPlan`), proving
  deadlock-freedom, OP-ID/cache/address/route well-formedness and the
  memoization invariant before a single cycle is simulated.  Checks
  carry ``NC2xx`` codes.
* :mod:`repro.analysis.shardcheck` — a static verifier over multi-cube
  *shard plans* (:class:`~repro.core.shard.ShardPlan`), proving
  exchange completeness, byte-accounting equality with the analytic
  model, per-cube capacity feasibility, shard-geometry reconstruction,
  barrier-fold determinism and link sanity before a cube process is
  spawned.  Checks carry ``NC3xx`` codes;
  :func:`~repro.analysis.shardcheck.shard_feasible` is the fast DSE
  pruning predicate.

See ``docs/static_analysis.md`` for the full catalogue.
"""

from repro.analysis.nccheck import (
    CHECK_CATALOGUE,
    DescriptorReport,
    PlanViolation,
    check_plan,
    self_test,
    stall_boundaries,
    verify_memo_pairs,
    verify_plan,
    verify_program,
)
from repro.analysis.nclint import (
    RULES,
    Rule,
    Violation,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from repro.analysis.shardcheck import (
    SHARD_CHECK_CATALOGUE,
    ShardViolation,
    check_shard_plan,
    predict_exchange_cycles,
    report_shard_plan,
    shard_feasible,
    verify_shard_plan,
)

__all__ = [
    "CHECK_CATALOGUE",
    "DescriptorReport",
    "PlanViolation",
    "RULES",
    "Rule",
    "SHARD_CHECK_CATALOGUE",
    "ShardViolation",
    "Violation",
    "check_plan",
    "check_shard_plan",
    "lint_paths",
    "lint_source",
    "predict_exchange_cycles",
    "report_shard_plan",
    "rule_catalogue",
    "self_test",
    "shard_feasible",
    "stall_boundaries",
    "verify_memo_pairs",
    "verify_plan",
    "verify_program",
    "verify_shard_plan",
]
