"""nccheck — static verifier for compiled neurosequence plans.

A :class:`~repro.core.scheduler.PassPlan` is the PNG loop program the
host would upload to the cube: per-vault emission schedules, per-PE
group schedules, memory images and the write-back map.  A malformed
plan does not fail loudly — it deadlocks mid-simulation (a PE waiting
forever on an operand that has no producer), corrupts state (a
write-back address aliasing streamed input), or silently breaks the
memoization invariant.  ``nccheck`` proves the plan well-formed *before*
a single cycle is simulated:

======  ==========================================================
NC201   producer/consumer completeness (static deadlock-freedom)
NC202   OP-ID validity: in-range, unambiguous, no duplicate producers
NC203   worst-case cache sub-bank occupancy within the emission window
NC204   DRAM address ranges and write-back aliasing vs vault geometry
NC205   NoC route validity (walked against the routing tables)
NC206   write-back accounting (counts, map, neuron totals)
NC207   structural_hash consistency with the memoization key
======  ==========================================================

Use :func:`verify_plan` for a violation list, :func:`check_plan` to
fail fast (raises :class:`repro.errors.PlanCheckError`), and
:func:`verify_program` to sweep every descriptor of a compiled
:class:`~repro.core.layerdesc.NeurocubeProgram` with timing-only plans.

When NC201 fires, the violations carry the exact per-PE stall boundary
— the first OP-counter value each starved PE would wedge at — in the
same ``PE {pe}: op={op}`` shape the cycle simulator's deadlock
diagnostics print, so a static report and a dynamic stall trace can be
diffed line against line (the cross-check test pins this).
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor, NeurocubeProgram
from repro.core.pe import GroupPlan
from repro.core.scheduler import PassPlan
from repro.errors import PlanCheckError, ReproError
from repro.noc.packet import Packet, PacketKind
from repro.noc.routing import LOCAL_PORTS, local_delivery_port
from repro.noc.topology import FullyConnected, Mesh2D, Topology

#: Descriptors whose timing-only plan would exceed this many streamed
#: items are skipped by :func:`verify_program` (reported as a note, not
#: a pass): building the full emission schedule of a paper-scale layer
#: in Python costs as much as scheduling it for simulation would.
DEFAULT_MAX_STREAM_ITEMS = 2_000_000


@dataclass(frozen=True)
class PlanViolation:
    """One static check failure inside a plan.

    ``pe``/``op`` are set when the violation localises to a PE's
    OP-counter position (NC201 stall boundaries); -1 otherwise.
    """

    code: str
    message: str
    pe: int = -1
    op: int = -1

    def format(self) -> str:
        return f"{self.code} {self.message}"


@dataclass(frozen=True)
class CheckCatalogueEntry:
    code: str
    title: str
    guarantee: str


CHECK_CATALOGUE: tuple[CheckCatalogueEntry, ...] = (
    CheckCatalogueEntry(
        "NC201", "producer/consumer completeness",
        "every operand every PE waits on has at least one producer "
        "record in some vault's emission schedule — the plan cannot "
        "statically deadlock on a missing packet"),
    CheckCatalogueEntry(
        "NC202", "OP-ID validity",
        "every emission record targets an existing PE, a defined "
        "operation, a valid MAC lane, exactly once; group OP ranges "
        "never overlap, so an OP-ID names one operation unambiguously"),
    CheckCatalogueEntry(
        "NC203", "cache sub-bank occupancy bound",
        "under the emission-horizon window, the packets of the ops that "
        "can be in flight simultaneously fit their cache sub-banks — "
        "no head-of-line deadlock from a full sub-bank"),
    CheckCatalogueEntry(
        "NC204", "vault address ranges",
        "every streamed read and every write-back address falls inside "
        "its vault image, write-back slots are unique, and no "
        "write-back aliases an address the plan also streams as input"),
    CheckCatalogueEntry(
        "NC205", "mesh route validity",
        "every (source, destination, kind) the plan ships walks the "
        "routing tables to its destination's correct local port in "
        "exactly the minimal hop count"),
    CheckCatalogueEntry(
        "NC206", "write-back accounting",
        "per-channel expected write-back counts, the write-back "
        "address map and the PE group slots all agree, and their total "
        "matches the plan's neuron count"),
    CheckCatalogueEntry(
        "NC207", "memoization-key consistency",
        "plans built from tasks with equal structural keys have equal "
        "structural hashes — replaying a memoized outcome is sound"),
)


def _topology_for(config: NeurocubeConfig) -> Topology:
    if config.noc_topology == "fully_connected":
        return FullyConnected(config.n_pe)
    return Mesh2D.for_nodes(config.n_pe)


# ---------------------------------------------------------------------
# consumer-side demand model
# ---------------------------------------------------------------------

def _group_ranges(groups: Sequence[GroupPlan]) -> list[tuple[int, int]]:
    """Per-group ``[start, end)`` OP-ID ranges under the PE numbering.

    The PE computes ``op = group_idx * n_connections + conn`` with the
    *current* group's connection count (:attr:`ProcessingElement.
    op_counter`); the scheduler must number emissions identically.
    """
    return [(g * group.n_connections,
             g * group.n_connections + group.n_connections)
            for g, group in enumerate(groups)]


def _demand_for(group: GroupPlan) -> list[tuple[PacketKind, int]]:
    """Operand kinds/lanes one operation of ``group`` waits on."""
    demand: list[tuple[PacketKind, int]] = []
    if group.shared_state:
        demand.append((PacketKind.STATE, -1))  # any lane satisfies it
    else:
        demand.extend((PacketKind.STATE, lane)
                      for lane in range(len(group.slots)))
    if group.mode == "mac" and not group.weights_resident:
        demand.extend((PacketKind.WEIGHT, lane)
                      for lane in range(len(group.slots)))
    return demand


def _producer_index(plan: PassPlan) -> dict:
    """``(pe, op, kind, lane) -> count`` over all emission schedules."""
    producers: Counter = Counter()
    for records in plan.vault_emissions:
        for record in records:
            producers[(record.dst, record.op_id, record.kind,
                       record.mac_id)] += 1
    return producers


# ---------------------------------------------------------------------
# the checks
# ---------------------------------------------------------------------

def _check_producers(plan: PassPlan,
                     config: NeurocubeConfig) -> list[PlanViolation]:
    """NC201: every consumed operand has a producer (deadlock-freedom)."""
    producers = _producer_index(plan)
    shared_counts: Counter = Counter()
    for (pe, op, kind, _lane), count in producers.items():
        if kind == PacketKind.STATE:
            shared_counts[(pe, op)] += count
    violations: list[PlanViolation] = []
    for pe, groups in enumerate(plan.pe_groups):
        boundary: tuple[int, list[str]] | None = None
        for g, group in enumerate(groups):
            start = g * group.n_connections
            for conn in range(group.n_connections):
                op = start + conn
                missing = []
                for kind, lane in _demand_for(group):
                    if lane < 0:
                        if shared_counts[(pe, op)] == 0:
                            missing.append(f"{kind.name} (shared)")
                    elif producers[(pe, op, kind, lane)] == 0:
                        missing.append(f"{kind.name} lane {lane}")
                if missing and (boundary is None or op < boundary[0]):
                    boundary = (op, missing)
        if boundary is not None:
            op, missing = boundary
            violations.append(PlanViolation(
                code="NC201", pe=pe, op=op,
                message=(f"static deadlock: PE {pe}: op={op} has no "
                         f"producer for {', '.join(missing)}; the PE "
                         f"would wedge there with operands parked "
                         f"behind it")))
    return violations


def _check_op_ids(plan: PassPlan,
                  config: NeurocubeConfig) -> list[PlanViolation]:
    """NC202: producer records target real, unambiguous operations."""
    violations: list[PlanViolation] = []
    n_pe = len(plan.pe_groups)
    ranges = [_group_ranges(groups) for groups in plan.pe_groups]
    for pe, pe_ranges in enumerate(ranges):
        for g in range(1, len(pe_ranges)):
            prev_end = pe_ranges[g - 1][1]
            start = pe_ranges[g][0]
            if start < prev_end:
                violations.append(PlanViolation(
                    code="NC202", pe=pe,
                    message=(f"PE {pe}: group {g} OP range "
                             f"[{start}, {pe_ranges[g][1]}) overlaps "
                             f"group {g - 1} ending at {prev_end}; "
                             f"OP-IDs would be ambiguous (groups with "
                             f"different connection counts)")))

    def op_valid(pe: int, op: int) -> bool:
        return any(start <= op < end for start, end in ranges[pe])

    def group_of(pe: int, op: int) -> GroupPlan | None:
        for (start, end), group in zip(ranges[pe], plan.pe_groups[pe], strict=True):
            if start <= op < end:
                return group
        return None

    seen: Counter = Counter()
    for channel, records in enumerate(plan.vault_emissions):
        for record in records:
            if not 0 <= record.dst < n_pe:
                violations.append(PlanViolation(
                    code="NC202",
                    message=(f"vault {channel} emits to PE {record.dst}, "
                             f"outside 0..{n_pe - 1}")))
                continue
            if record.op_id < 0 or not op_valid(record.dst, record.op_id):
                violations.append(PlanViolation(
                    code="NC202", pe=record.dst, op=record.op_id,
                    message=(f"vault {channel} emits op {record.op_id} "
                             f"to PE {record.dst}, which defines no "
                             f"such operation")))
                continue
            group = group_of(record.dst, record.op_id)
            if record.mac_id >= len(group.slots) or record.mac_id < 0:
                violations.append(PlanViolation(
                    code="NC202", pe=record.dst, op=record.op_id,
                    message=(f"vault {channel} emits lane "
                             f"{record.mac_id} to PE {record.dst} op "
                             f"{record.op_id}, but that group has only "
                             f"{len(group.slots)} slots")))
                continue
            if not group.shared_state:
                key = (record.dst, record.op_id, record.kind,
                       record.mac_id)
                seen[key] += 1
                if seen[key] == 2:  # report each duplicate slot once
                    violations.append(PlanViolation(
                        code="NC202", pe=record.dst, op=record.op_id,
                        message=(f"duplicate producer for PE "
                                 f"{record.dst} op {record.op_id} "
                                 f"{record.kind.name} lane "
                                 f"{record.mac_id}; the later packet "
                                 f"would overwrite the earlier "
                                 f"operand")))
    return violations


def _check_cache_occupancy(plan: PassPlan,
                           config: NeurocubeConfig) -> list[PlanViolation]:
    """NC203: in-window packets fit the cache sub-banks.

    Under the emission-horizon window ``W`` (``config.emission_window``)
    a PE at OP-counter ``cur`` can have packets parked for ops in
    ``(cur, cur + W]``; ops congruent mod ``cache_subbanks`` share a
    sub-bank.  The worst case over every window position must stay
    within ``cache_entries_per_subbank``, or the PE back-pressures the
    mesh into a head-of-line deadlock.  Scheduler-built plans satisfy
    this by construction (the window is derived from the same
    geometry); the check guards hand-built or mutated plans.
    """
    window = config.emission_window
    if window <= 0:
        return []  # strict lock-step: nothing ever parks
    subbanks = config.cache_subbanks
    capacity = config.cache_entries_per_subbank
    violations: list[PlanViolation] = []
    per_pe: dict[int, Counter] = {}
    for records in plan.vault_emissions:
        for record in records:
            per_pe.setdefault(record.dst, Counter())[record.op_id] += 1
    for pe in sorted(per_pe):
        by_class: dict[int, list[tuple[int, int]]] = {}
        for op in sorted(per_pe[pe]):
            by_class.setdefault(op % subbanks, []).append(
                (op, per_pe[pe][op]))
        for bank, entries in sorted(by_class.items()):
            left = 0
            occupancy = 0
            for right, (op, count) in enumerate(entries):
                occupancy += count
                while entries[left][0] < op - window + 1:
                    occupancy -= entries[left][1]
                    left += 1
                if occupancy > capacity:
                    violations.append(PlanViolation(
                        code="NC203", pe=pe, op=op,
                        message=(f"PE {pe} sub-bank {bank}: ops "
                                 f"{entries[left][0]}..{op} can park "
                                 f"{occupancy} packets inside one "
                                 f"emission window (limit {capacity} "
                                 f"entries); the mesh would deadlock "
                                 f"head-of-line")))
                    break
    return violations


def _check_addresses(plan: PassPlan,
                     config: NeurocubeConfig) -> list[PlanViolation]:
    """NC204: reads and write-backs stay inside their vault images."""
    violations: list[PlanViolation] = []
    n_channels = len(plan.vault_data)
    read_addresses: list[set[int]] = [set() for _ in range(n_channels)]
    for channel, records in enumerate(plan.vault_emissions):
        size = len(plan.vault_data[channel])
        for record in records:
            if record.address == -1:
                continue  # synthesised item: no DRAM access
            if not 0 <= record.address < size:
                violations.append(PlanViolation(
                    code="NC204",
                    message=(f"vault {channel} reads address "
                             f"{record.address}, outside its "
                             f"{size}-item image")))
            else:
                read_addresses[channel].add(record.address)
    slots_seen: dict[tuple[int, int], object] = {}
    for neuron, (channel, address) in plan.out_addresses.items():
        if not 0 <= channel < n_channels:
            violations.append(PlanViolation(
                code="NC204",
                message=(f"write-back for {neuron} targets channel "
                         f"{channel}, outside 0..{n_channels - 1}")))
            continue
        size = len(plan.vault_data[channel])
        if not 0 <= address < size:
            violations.append(PlanViolation(
                code="NC204",
                message=(f"write-back for {neuron} targets vault "
                         f"{channel} address {address}, outside its "
                         f"{size}-item image")))
            continue
        key = (channel, address)
        if key in slots_seen:
            violations.append(PlanViolation(
                code="NC204",
                message=(f"write-back slot vault {channel} address "
                         f"{address} assigned to both "
                         f"{slots_seen[key]} and {neuron}")))
        slots_seen[key] = neuron
        if address in read_addresses[channel]:
            violations.append(PlanViolation(
                code="NC204",
                message=(f"write-back for {neuron} aliases vault "
                         f"{channel} address {address}, which the plan "
                         f"also streams as input — a read-after-write "
                         f"hazard")))
    return violations


def _walk_route(topology: Topology, src: int, dst: int,
                kind: PacketKind) -> str | None:
    """Walk one packet through the routing tables; None when clean."""
    probe = Packet(src=src, dst=dst, mac_id=0, op_id=0, kind=kind)
    node = src
    hops = 0
    limit = topology.n_nodes + 2
    try:
        while True:
            port = topology.next_port(node, probe)
            if port in LOCAL_PORTS:
                if node != dst:
                    return (f"delivered locally at node {node}, "
                            f"destination was {dst}")
                expected = local_delivery_port(kind)
                if port != expected:
                    return (f"{kind.name} delivered to {port}, "
                            f"expected {expected}")
                break
            node, _ = topology.link_target(node, port)
            hops += 1
            if hops > limit:
                return f"no delivery within {limit} hops"
        minimal = topology.min_hops(src, dst)
        if hops != minimal:
            return (f"took {hops} hops, minimal route is {minimal}")
    except ReproError as error:
        return f"unroutable: {error}"
    return None


def _check_routes(plan: PassPlan,
                  config: NeurocubeConfig) -> list[PlanViolation]:
    """NC205: every shipped (src, dst, kind) routes to its local port."""
    topology = _topology_for(config)
    pairs: set[tuple[int, int, PacketKind]] = set()
    for channel, records in enumerate(plan.vault_emissions):
        if channel >= config.n_channels:
            continue  # geometry mismatch reported by NC206
        src = config.pe_of_channel(channel)
        for record in records:
            pairs.add((src, record.dst, record.kind))
    for pe, groups in enumerate(plan.pe_groups):
        for group in groups:
            for slot in group.slots:
                if 0 <= slot.home_vault < config.n_channels:
                    dst = config.pe_of_channel(slot.home_vault)
                else:
                    dst = slot.home_vault
                pairs.add((pe, dst, PacketKind.WRITEBACK))
    violations = []
    for src, dst, kind in sorted(pairs, key=lambda p: (p[0], p[1],
                                                       p[2].value)):
        problem = _walk_route(topology, src, dst, kind)
        if problem is not None:
            violations.append(PlanViolation(
                code="NC205",
                message=(f"route {src} -> {dst} ({kind.name}): "
                         f"{problem}")))
    return violations


def _check_writebacks(plan: PassPlan,
                      config: NeurocubeConfig) -> list[PlanViolation]:
    """NC206: write-back counts, map and group slots agree."""
    violations: list[PlanViolation] = []
    slot_counts = [0] * len(plan.vault_data)
    total_slots = 0
    for pe, groups in enumerate(plan.pe_groups):
        for group in groups:
            for slot in group.slots:
                total_slots += 1
                if not 0 <= slot.home_vault < len(slot_counts):
                    violations.append(PlanViolation(
                        code="NC206", pe=pe,
                        message=(f"PE {pe} slot for {slot.neuron} has "
                                 f"home vault {slot.home_vault}, "
                                 f"outside the plan's "
                                 f"{len(slot_counts)} channels")))
                    continue
                slot_counts[slot.home_vault] += 1
                mapped = plan.out_addresses.get(slot.neuron)
                if mapped is None:
                    violations.append(PlanViolation(
                        code="NC206", pe=pe,
                        message=(f"neuron {slot.neuron} (PE {pe}) has "
                                 f"no write-back address")))
                elif mapped[0] != slot.home_vault:
                    violations.append(PlanViolation(
                        code="NC206", pe=pe,
                        message=(f"neuron {slot.neuron}: group says "
                                 f"home vault {slot.home_vault}, "
                                 f"write-back map says {mapped[0]}; "
                                 f"the sink would reject the packet")))
    expected = list(plan.expected_writebacks)
    if expected != slot_counts:
        violations.append(PlanViolation(
            code="NC206",
            message=(f"expected_writebacks {expected} disagrees with "
                     f"the {slot_counts} write-backs the PE groups "
                     f"actually produce; PNGs would wait forever (or "
                     f"finish early)")))
    if plan.total_neurons != total_slots:
        violations.append(PlanViolation(
            code="NC206",
            message=(f"plan claims {plan.total_neurons} neurons but "
                     f"the PE groups hold {total_slots} slots")))
    if len(plan.out_addresses) != total_slots:
        violations.append(PlanViolation(
            code="NC206",
            message=(f"write-back map has {len(plan.out_addresses)} "
                     f"entries for {total_slots} group slots")))
    return violations


_PLAN_CHECKS = (
    ("NC201", _check_producers),
    ("NC202", _check_op_ids),
    ("NC203", _check_cache_occupancy),
    ("NC204", _check_addresses),
    ("NC205", _check_routes),
    ("NC206", _check_writebacks),
)


def verify_plan(plan: PassPlan, config: NeurocubeConfig,
                select: Iterable[str] | None = None) -> list[PlanViolation]:
    """Run the static plan checks; returns all violations found."""
    wanted = set(select) if select is not None else None
    violations: list[PlanViolation] = []
    for code, check in _PLAN_CHECKS:
        if wanted is not None and code not in wanted:
            continue
        violations.extend(check(plan, config))
    return violations


def stall_boundaries(violations: Iterable[PlanViolation]) -> dict[int, int]:
    """Per-PE static stall boundary from NC201 violations.

    Maps each starved PE to the first OP-counter value it can never
    advance past — the ``op=`` the simulator's deadlock diagnostics
    would print for that PE.
    """
    boundaries: dict[int, int] = {}
    for violation in violations:
        if violation.code != "NC201" or violation.pe < 0:
            continue
        if (violation.pe not in boundaries
                or violation.op < boundaries[violation.pe]):
            boundaries[violation.pe] = violation.op
    return boundaries


def check_plan(plan: PassPlan, config: NeurocubeConfig,
               label: str = "plan") -> None:
    """Fail-fast hook: raise :class:`PlanCheckError` on any violation.

    The message mirrors the simulator's stall diagnostics — NC201
    boundaries print as ``PE {pe}: op={op}`` lines — so a static
    rejection and a dynamic deadlock report read the same.
    """
    violations = verify_plan(plan, config)
    if not violations:
        return
    lines = [f"nccheck: {label} failed "
             f"{len(violations)} static check(s):"]
    lines.extend(f"  {v.format()}" for v in violations)
    boundaries = stall_boundaries(violations)
    if boundaries:
        lines.append("  static stall boundary:")
        lines.extend(f"  PE {pe}: op={op}"
                     for pe, op in sorted(boundaries.items()))
    raise PlanCheckError("\n".join(lines), violations=violations)


def verify_memo_pairs(pairs: Iterable[tuple[object, PassPlan]],
                      ) -> list[PlanViolation]:
    """NC207: equal structural keys must mean equal structural hashes.

    ``pairs`` are ``(structural_key, plan)`` tuples, e.g. one per
    :class:`~repro.core.parallel.MapTask` with the plan its worker
    would build.  Timing-pass memoization simulates one representative
    per key and replays its outcome for the rest; that is only sound
    when every plan in the class has the same timing-relevant
    structure.
    """
    by_key: dict[object, list[str]] = {}
    violations: list[PlanViolation] = []
    for key, plan in pairs:
        digest = plan.structural_hash()
        hashes = by_key.setdefault(key, [])
        if hashes and digest != hashes[0]:
            violations.append(PlanViolation(
                code="NC207",
                message=(f"structural key {key!r} maps to plans with "
                         f"hashes {hashes[0][:12]}... and "
                         f"{digest[:12]}...; memoized replay would be "
                         f"unsound for this class")))
        hashes.append(digest)
    return violations


# ---------------------------------------------------------------------
# program-level sweep
# ---------------------------------------------------------------------

@dataclass
class DescriptorReport:
    """Verification outcome for one descriptor."""

    name: str
    checked: bool
    violations: list[PlanViolation]
    note: str = ""


def _timing_plan(desc: LayerDescriptor,
                 config: NeurocubeConfig) -> PassPlan:
    from repro.core.scheduler import build_conv_pass, build_fc_pass
    from repro.memory.layout import ConvLayout

    # Dispatch on the layout, not the kind: training programs emit
    # update passes that keep the layer's kind ("conv") but stream
    # vault-locally through an FC-style layout.
    if isinstance(desc.layout, ConvLayout):
        return build_conv_pass(desc, config, None, None, 0.0, None,
                               mode="mac")
    return build_fc_pass(desc, config, None, None, None, None)


def _estimated_stream_items(desc: LayerDescriptor) -> int:
    packets = 2 if not desc.weights_resident else 1
    return desc.neurons_per_pass * desc.connections * packets


def verify_program(program: NeurocubeProgram, config: NeurocubeConfig,
                   max_stream_items: int = DEFAULT_MAX_STREAM_ITEMS,
                   ) -> list[DescriptorReport]:
    """Statically verify every descriptor of a compiled program.

    Each descriptor is lowered to one timing-only pass plan (the
    structure every pass of the descriptor shares) and run through the
    plan checks.  Descriptors whose schedule would exceed
    ``max_stream_items`` streamed items are skipped with a note —
    building a paper-scale emission list costs as much as scheduling
    the real run, which defeats the point of a static pass (see
    ``docs/static_analysis.md`` for this limit).
    """
    reports: list[DescriptorReport] = []
    for desc in program.descriptors:
        estimate = _estimated_stream_items(desc)
        if estimate > max_stream_items:
            reports.append(DescriptorReport(
                name=desc.name, checked=False, violations=[],
                note=(f"skipped: ~{estimate} streamed items exceeds "
                      f"the {max_stream_items} static-check budget")))
            continue
        plan = _timing_plan(desc, config)
        reports.append(DescriptorReport(
            name=desc.name, checked=True,
            violations=verify_plan(plan, config)))
    return reports


def check_program(program: NeurocubeProgram, config: NeurocubeConfig,
                  max_stream_items: int = DEFAULT_MAX_STREAM_ITEMS,
                  ) -> list[DescriptorReport]:
    """Fail-fast wrapper around :func:`verify_program`.

    Raises :class:`PlanCheckError` when any descriptor's plan fails a
    check; returns the per-descriptor reports otherwise (so callers can
    still see what was skipped for size).
    """
    reports = verify_program(program, config,
                             max_stream_items=max_stream_items)
    bad = [r for r in reports if r.violations]
    if bad:
        lines = [f"nccheck: program {program.network_name!r} failed "
                 f"static verification:"]
        for report in bad:
            lines.append(f"  descriptor {report.name}:")
            lines.extend(f"    {v.format()}" for v in report.violations)
        raise PlanCheckError(
            "\n".join(lines),
            violations=tuple(v for r in bad for v in r.violations))
    return reports


def report_dict(reports: list[DescriptorReport]) -> dict:
    """JSON-compatible program verification report (the CI artifact).

    Every catalogue check carries an explicit ``status`` — ``passed`` /
    ``failed`` / ``skipped`` — plus a ``skipped`` reason naming what was
    *not* evaluated (the loud >2M-item descriptor skip, or NC207's
    pair-level scope), so the artifact distinguishes "verified clean"
    from "never looked".
    """
    by_code = Counter(v.code for r in reports for v in r.violations)
    skipped_names = [r.name for r in reports if not r.checked]
    checked_any = any(r.checked for r in reports)
    partial = ""
    if skipped_names:
        partial = (f"{len(skipped_names)} of {len(reports)} "
                   f"descriptor(s) not evaluated: "
                   f"{', '.join(skipped_names)}")
    checks = []
    for entry in CHECK_CATALOGUE:
        found = by_code.get(entry.code, 0)
        if entry.code == "NC207":
            # Pair-level check: verify_memo_pairs runs over memoization
            # (key, plan) pairs, not the per-descriptor sweep.
            skipped = ("pair-level check (verify_memo_pairs over "
                       "memoization key/plan pairs); not part of the "
                       "per-descriptor sweep")
            status = "failed" if found else "skipped"
        elif not checked_any:
            skipped = partial or "no descriptors evaluated"
            status = "failed" if found else "skipped"
        else:
            skipped = partial
            status = "failed" if found else "passed"
        checks.append({**vars(entry), "status": status,
                       "skipped": skipped, "violation_count": found})
    return {
        "kind": "nccheck-report",
        "descriptors_checked": sum(1 for r in reports if r.checked),
        "descriptors_skipped": len(skipped_names),
        "violation_count": sum(len(r.violations) for r in reports),
        "descriptors": [
            {"name": r.name, "checked": r.checked, "note": r.note,
             "violations": [vars(v) for v in r.violations]}
            for r in reports],
        "checks": checks,
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


# ---------------------------------------------------------------------
# self-test: every check must fire on a seeded violation
# ---------------------------------------------------------------------

def _seed_plan(config: NeurocubeConfig) -> PassPlan:
    """A small, clean fully connected plan to mutate."""
    from repro.core.compiler import compile_inference
    from repro.nn.layers import Dense
    from repro.nn.network import Network

    network = Network([Dense(2 * config.n_pe)],
                      input_shape=(3 * config.n_channels,),
                      name="nccheck-selftest")
    desc = compile_inference(network, config).descriptors[0]
    return _timing_plan(desc, config)


def self_test(config: NeurocubeConfig | None = None) -> list[str]:
    """Prove every check fires on a seeded violation and stays silent
    on a clean plan.  Returns failure descriptions (empty = pass)."""
    if config is None:
        config = NeurocubeConfig.hmc_15nm(n_channels=4, n_pe=4, n_mac=4)
    failures: list[str] = []
    clean = _seed_plan(config)
    baseline = verify_plan(clean, config)
    if baseline:
        failures.append(
            f"clean plan raised {[v.format() for v in baseline]}")

    def expect(code: str, plan: PassPlan, note: str) -> None:
        codes = {v.code for v in verify_plan(plan, config,
                                             select=[code])}
        if code not in codes:
            failures.append(f"{code} did not fire on {note}")

    # NC201: drop one producer record.
    victim = clean.vault_emissions[0][0]
    mutated = replace(clean, vault_emissions=[
        [r for r in records if r is not victim]
        for records in clean.vault_emissions])
    expect("NC201", mutated, "a plan missing one producer")
    # NC202: duplicate one producer record.
    mutated = replace(clean, vault_emissions=[
        list(records) + ([records[0]] if channel == 0 else [])
        for channel, records in enumerate(clean.vault_emissions)])
    expect("NC202", mutated, "a plan with a duplicate producer")
    # NC203: flood one future op far past a sub-bank's capacity.
    flooded = list(clean.vault_emissions[0])
    sample = flooded[-1]
    flooded.extend([sample] * (config.cache_entries_per_subbank + 1))
    mutated = replace(clean, vault_emissions=(
        [flooded] + [list(r) for r in clean.vault_emissions[1:]]))
    expect("NC203", mutated, "a plan overflowing a cache sub-bank")
    # NC204: point one read outside the vault image.
    bad = replace(clean.vault_emissions[0][0], address=10 ** 9)
    mutated = replace(clean, vault_emissions=(
        [[bad] + list(clean.vault_emissions[0][1:])]
        + [list(r) for r in clean.vault_emissions[1:]]))
    expect("NC204", mutated, "a plan reading outside its vault image")
    # NC205: ship a packet to a node the topology does not have.
    bad = replace(clean.vault_emissions[0][0], dst=config.n_pe + 7)
    mutated = replace(clean, vault_emissions=(
        [[bad] + list(clean.vault_emissions[0][1:])]
        + [list(r) for r in clean.vault_emissions[1:]]))
    expect("NC205", mutated, "a plan shipping to a missing node")
    # NC206: understate one channel's expected write-backs.
    expected = list(clean.expected_writebacks)
    expected[0] -= 1
    mutated = replace(clean, expected_writebacks=expected)
    expect("NC206", mutated, "a plan understating write-backs")
    # NC207: one structural key, two structurally different plans.
    drifted = replace(clean, stream_items=clean.stream_items + 1)
    if not verify_memo_pairs([("k", clean), ("k", drifted)]):
        failures.append("NC207 did not fire on drifted memo pairs")
    if verify_memo_pairs([("a", clean), ("b", drifted)]):
        failures.append("NC207 fired on distinct memo keys")
    return failures
