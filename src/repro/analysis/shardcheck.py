"""ncshardcheck — static verifier for multi-cube shard plans (NC3xx).

PR 8's sharded executor (:mod:`repro.core.shard`) partitions a compiled
network across cubes and synchronizes them with conservative barrier
cycles.  A malformed :class:`~repro.core.shard.ShardPlan` does not fail
loudly — a missing halo exchange silently under-charges communication,
an over-capacity cube raises a :class:`~repro.errors.MappingError` deep
inside layout planning, and a non-integer byte count would poison the
parent-side barrier fold.  ``ncshardcheck`` proves the plan well-formed
*before* a single cube process is spawned, the same way ``nccheck``
(NC2xx) proves single-cube pass plans:

======  ==========================================================
NC301   exchange completeness (halo coverage, all-gather producers,
        edge/interior neighbour topology, exchange identity)
NC302   byte-accounting equality vs ``MultiCubeModel.comm_bytes``
NC303   per-cube DRAM capacity feasibility vs ``cube_capacity_bytes``
NC304   shard-geometry reconstruction (shards tile the base layer,
        vault layouts mirrored, footprint accounting exact)
NC305   barrier/fold determinism (integer cube-order fold, link-model
        barrier arithmetic reproducible)
NC306   link-bandwidth sanity vs the Table-I HMC-Ext figures
======  ==========================================================

Use :func:`verify_shard_plan` for a violation list,
:func:`check_shard_plan` to fail fast (raises
:class:`repro.errors.PlanCheckError` — the ``validate=`` hook on
:func:`repro.core.shard.shard_network`), :func:`report_shard_plan` for
the JSON-ready report with per-check ``skipped`` metadata, and
:func:`shard_feasible` as the fast pruning predicate the Pareto DSE
engine calls before spending cycle-simulator time on a configuration.

NC305's static half proves the barrier arithmetic *can only* be a
cube-order fold over integers; its dynamic half —
:func:`predict_exchange_cycles` — recomputes every exchange's barrier
delay from the plan alone, and the test suite pins a fault-free
simulated run's :class:`~repro.core.shard.ExchangeOutcome` cycles to it
exactly, mirroring how NC201 stall boundaries pin the simulator's
deadlock diagnostics.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.nccheck import CheckCatalogueEntry
from repro.core.multicube import (
    LINK_LATENCY_S,
    LINKS_PER_CUBE,
    MultiCubeConfig,
    MultiCubeModel,
)
from repro.core.shard import ShardedLayer, ShardPlan
from repro.errors import MappingError, PlanCheckError
from repro.memory.specs import HMC_EXT
from repro.noc.cubelink import CubeLinkModel


@dataclass(frozen=True)
class ShardViolation:
    """One static check failure inside a shard plan.

    ``cube`` is set when the violation localises to one cube (-1
    otherwise); ``layer`` names the sharded layer when it localises to
    one ("" otherwise).
    """

    code: str
    message: str
    cube: int = -1
    layer: str = ""

    def format(self) -> str:
        return f"{self.code} {self.message}"


SHARD_CHECK_CATALOGUE: tuple[CheckCatalogueEntry, ...] = (
    CheckCatalogueEntry(
        "NC301", "exchange completeness",
        "every conv/pool halo row and fc all-gather slice has exactly "
        "one producing cube and reaches every consuming cube, halos "
        "never span past an immediate neighbour, edge/interior "
        "neighbour topology matches the row partition, and exchange "
        "records carry consistent identities (the fault-salt keys)"),
    CheckCatalogueEntry(
        "NC302", "byte-accounting equality",
        "per-cube exchange bytes equal the analytic "
        "MultiCubeModel.comm_bytes charge — interior halo cubes at the "
        "full two-neighbour rate, edge cubes at half, all-gather shares "
        "summing to inputs x (n-1) x item bytes — so measured and "
        "modelled communication can never drift apart"),
    CheckCatalogueEntry(
        "NC303", "per-cube DRAM capacity feasibility",
        "every cube's vault DRAM footprint fits cube_capacity_bytes, "
        "reported with the violating cube, its heaviest layer and the "
        "bytes over budget — statically, instead of a MappingError "
        "deep inside run-time layout planning"),
    CheckCatalogueEntry(
        "NC304", "shard-geometry reconstruction",
        "the union of per-cube shards tiles the base layer with no gap "
        "or overlap, every shard descriptor's geometry and vault "
        "layout mirror the base descriptor's, and the plan's per-cube "
        "byte accounting matches the shard layouts exactly"),
    CheckCatalogueEntry(
        "NC305", "barrier/fold determinism",
        "the parent-side cluster-cycle arithmetic is a cube-order fold "
        "over non-negative integer outcomes, and every exchange's "
        "barrier delay is reproducible from the plan through the "
        "integer CubeLinkModel arithmetic alone (the simulated "
        "reference cross-check pins the dynamic side)"),
    CheckCatalogueEntry(
        "NC306", "link-bandwidth sanity",
        "the cluster's SerDes link parameters stay within the paper's "
        "Table-I HMC-Ext figures (per-channel bandwidth, four links "
        "per cube, non-negative latency) so barrier cycles are never "
        "computed against unphysical links"),
)

#: NC303 skip reason when the cluster declares no capacity budget.
_NC303_SKIP = ("no cube_capacity_bytes budget configured on the "
               "cluster; capacity feasibility not evaluated")


# ---------------------------------------------------------------------
# shared geometry reconstruction
# ---------------------------------------------------------------------

def _total_out_units(entry: ShardedLayer) -> int:
    """Total output units sharded: image rows (conv/pool), neurons (fc)."""
    base = entry.base
    if base.kind == "conv":
        return base.in_height - base.kernel + 1
    if base.kind == "pool":
        return base.in_height // base.kernel
    return base.neurons_per_pass


def _owned_items(entry: ShardedLayer) -> list[int]:
    """Each cube's output item count — its share of a following
    all-gather — mirroring ``_shard_descriptor``'s ``owned`` totals."""
    base = entry.base
    if base.kind == "conv":
        maps = base.passes // base.sub_passes
    elif base.kind == "pool":
        maps = base.passes
    else:
        maps = 1
    return [maps * desc.neurons_per_pass for desc in entry.descriptors]


def _halo_band_bytes(entry: ShardedLayer, item_bytes: int) -> int:
    """Bytes of one ``kernel - 1``-row halo band of ``entry``'s input."""
    base = entry.base
    halo_rows = max(0, base.kernel - 1)
    in_maps = max(1, base.connections // max(1, base.kernel ** 2))
    return halo_rows * base.in_width * in_maps * item_bytes


def _gather_shares(plan: ShardPlan, position: int) -> list[int]:
    """Per-cube input shares of the all-gather feeding layer ``position``.

    Mirrors ``_exchange_bytes``: the previous layer's owned output items
    when they sum to the input vector, an even split otherwise (the
    LSTM ``[x, h]`` case, where the consumed vector is not the previous
    descriptor's output).
    """
    entry = plan.layers[position]
    inputs = entry.base.connections
    prev_owned = _owned_items(plan.layers[position - 1])
    if sum(prev_owned) == inputs:
        return prev_owned
    return [int(part.size)
            for part in np.array_split(np.arange(inputs), plan.n_cubes)]


def _is_int(value: object) -> bool:
    """True for plain non-bool integers (numpy integers included)."""
    return (isinstance(value, (int, np.integer))
            and not isinstance(value, bool))


def link_model_for(config: MultiCubeConfig) -> CubeLinkModel:
    """The inter-cube link model a cluster's sharded run would build.

    One definition shared by the executor
    (:meth:`repro.core.shard.ShardedSimulator`) and the static barrier
    prediction, so NC305 verifies the arithmetic the run actually uses.
    """
    return CubeLinkModel(
        n_cubes=config.n_cubes,
        links_per_cube=config.links_per_cube,
        link_bandwidth=config.link_bandwidth,
        latency_s=LINK_LATENCY_S,
        f_clk_hz=config.cube.f_pe_hz)


def predict_exchange_cycles(plan: ShardPlan,
                            config: MultiCubeConfig) -> dict[int, int]:
    """Statically predicted barrier delay per exchange index.

    A fault-free sharded run must pay exactly these cycles at each
    exchange barrier (``ExchangeOutcome.cycles``); the equivalence
    suite pins a simulated reference layer against this prediction, the
    dynamic half of NC305.
    """
    links = link_model_for(config)
    return {exchange.index: links.barrier_cycles(exchange.sent_bytes)
            for exchange in plan.exchanges}


# ---------------------------------------------------------------------
# the checks
# ---------------------------------------------------------------------

def _check_exchanges(plan: ShardPlan,
                     config: MultiCubeConfig) -> list[ShardViolation]:
    """NC301: exchange completeness and neighbour topology."""
    violations: list[ShardViolation] = []
    n = plan.n_cubes
    item_bytes = config.cube.qformat.total_bits // 8
    if n == 1:
        for entry in plan.layers:
            if entry.exchange is not None:
                violations.append(ShardViolation(
                    code="NC301", layer=entry.name,
                    message=(f"{entry.name}: single-cube plan schedules "
                             f"an exchange; nothing to exchange with")))
        return violations

    expected_index = 0
    for position, entry in enumerate(plan.layers):
        exchange = entry.exchange
        if position == 0:
            if exchange is not None:
                violations.append(ShardViolation(
                    code="NC301", layer=entry.name,
                    message=(f"{entry.name}: first layer has an "
                             f"exchange, but its inputs come from the "
                             f"host, not another cube")))
            continue

        if entry.kind in ("conv", "pool"):
            needed = _halo_band_bytes(entry, item_bytes) > 0
        else:
            needed = True  # all-gather always moves the input vector
        if exchange is None:
            if needed:
                violations.append(ShardViolation(
                    code="NC301", layer=entry.name,
                    message=(f"{entry.name}: consuming layer has no "
                             f"exchange scheduled; its halo/gather "
                             f"inputs would never arrive from the "
                             f"producing cubes")))
            continue

        # Identity: indices sequential in plan order (the fault-salt
        # key), the record names its consuming layer, one entry per
        # cube.
        if exchange.index != expected_index:
            violations.append(ShardViolation(
                code="NC301", layer=entry.name,
                message=(f"{entry.name}: exchange index "
                         f"{exchange.index}, expected {expected_index} "
                         f"in plan order; inter-cube fault draws keyed "
                         f"by this index would alias")))
        expected_index += 1
        if exchange.layer != entry.name:
            violations.append(ShardViolation(
                code="NC301", layer=entry.name,
                message=(f"{entry.name}: exchange names layer "
                         f"{exchange.layer!r}, not its consuming "
                         f"layer")))
        if len(exchange.sent_bytes) != n:
            violations.append(ShardViolation(
                code="NC301", layer=entry.name,
                message=(f"{entry.name}: exchange carries "
                         f"{len(exchange.sent_bytes)} per-cube byte "
                         f"counts for {n} cubes")))
            continue

        if entry.kind in ("conv", "pool"):
            expected_kind = "halo"
            violations.extend(_check_halo_topology(entry, n))
        else:
            expected_kind = "all_gather"
            violations.extend(_check_gather_producers(plan, position))
        if exchange.kind != expected_kind:
            violations.append(ShardViolation(
                code="NC301", layer=entry.name,
                message=(f"{entry.name}: {entry.kind} layer's exchange "
                         f"is {exchange.kind!r}, expected "
                         f"{expected_kind!r}")))
    return violations


def _check_halo_topology(entry: ShardedLayer,
                         n: int) -> list[ShardViolation]:
    """Halo-specific NC301 conditions against the row partition."""
    violations: list[ShardViolation] = []
    base = entry.base
    halo_rows = max(0, base.kernel - 1)
    exchange = entry.exchange
    # Every halo row must come from the immediate neighbour: a cube
    # owning fewer output rows than the halo is wide cannot source its
    # neighbour's halo alone, and the flat neighbour exchange would be
    # incomplete.
    for slice_ in entry.slices:
        rows = slice_.out_hi - slice_.out_lo
        if base.kind == "conv" and 0 < rows < halo_rows:
            violations.append(ShardViolation(
                code="NC301", cube=slice_.cube, layer=entry.name,
                message=(f"{entry.name}: cube {slice_.cube} owns "
                         f"{rows} output row(s), fewer than the "
                         f"{halo_rows}-row kernel halo; its "
                         f"neighbour's halo would span past it and "
                         f"the neighbour-only exchange is incomplete")))
    # Edge/interior weighting: cubes 0 and n-1 exchange one band, the
    # interior two.  Any positive band makes all entries positive.
    sent = exchange.sent_bytes
    edge = {0, n - 1}
    nonzero = [b for b in sent if b]
    if nonzero:
        for cube, value in enumerate(sent):
            expected_bands = 1 if cube in edge else 2
            reference = sent[0]
            if cube in edge and value != reference:
                violations.append(ShardViolation(
                    code="NC301", cube=cube, layer=entry.name,
                    message=(f"{entry.name}: edge cubes 0 and {n - 1} "
                             f"must send equal one-neighbour halos, "
                             f"got {sent[0]} and {value} bytes")))
            elif cube not in edge and value != 2 * reference:
                violations.append(ShardViolation(
                    code="NC301", cube=cube, layer=entry.name,
                    message=(f"{entry.name}: interior cube {cube} "
                             f"sends {value} bytes, expected the "
                             f"two-neighbour rate "
                             f"{2 * reference} ({expected_bands} "
                             f"bands); neighbour topology does not "
                             f"match the partition")))
    return violations


def _check_gather_producers(plan: ShardPlan,
                            position: int) -> list[ShardViolation]:
    """All-gather-specific NC301 conditions: producer coverage."""
    violations: list[ShardViolation] = []
    entry = plan.layers[position]
    shares = _gather_shares(plan, position)
    inputs = entry.base.connections
    if sum(shares) != inputs:
        violations.append(ShardViolation(
            code="NC301", layer=entry.name,
            message=(f"{entry.name}: producing shares sum to "
                     f"{sum(shares)} input items of {inputs}; some "
                     f"input slice has no (or more than one) "
                     f"producing cube")))
    return violations


def _check_byte_accounting(plan: ShardPlan,
                           config: MultiCubeConfig) -> list[ShardViolation]:
    """NC302: exchange bytes equal the analytic model's charge."""
    violations: list[ShardViolation] = []
    n = plan.n_cubes
    if n == 1:
        return violations
    item_bytes = config.cube.qformat.total_bits // 8
    model = MultiCubeModel(config)
    for position, entry in enumerate(plan.layers):
        exchange = entry.exchange
        if exchange is None or len(exchange.sent_bytes) != n:
            continue  # absence/shape is NC301's finding
        analytic = model.comm_bytes(entry.base)
        if entry.kind in ("conv", "pool"):
            band = _halo_band_bytes(entry, item_bytes)
            if 2 * band != analytic:
                violations.append(ShardViolation(
                    code="NC302", layer=entry.name,
                    message=(f"{entry.name}: reconstructed halo band "
                             f"({band} bytes) disagrees with the "
                             f"analytic interior charge "
                             f"({analytic:.0f} bytes); the byte "
                             f"semantics have drifted from "
                             f"MultiCubeModel.comm_bytes")))
            for cube, value in enumerate(exchange.sent_bytes):
                expected = band * (1 if cube in (0, n - 1) else 2)
                if value != expected:
                    violations.append(ShardViolation(
                        code="NC302", cube=cube, layer=entry.name,
                        message=(f"{entry.name}: cube {cube} halo "
                                 f"bytes {value} != analytic "
                                 f"{expected} "
                                 f"({'edge' if cube in (0, n - 1) else 'interior'} "
                                 f"rate); measured and modelled "
                                 f"communication would drift apart")))
        else:
            shares = _gather_shares(plan, position)
            total_expected = entry.base.connections * (n - 1) * item_bytes
            total = sum(exchange.sent_bytes)
            if total != total_expected:
                violations.append(ShardViolation(
                    code="NC302", layer=entry.name,
                    message=(f"{entry.name}: all-gather moves {total} "
                             f"bytes, analytic total is "
                             f"{total_expected} (= inputs x (n-1) x "
                             f"item bytes = n x comm_bytes)")))
            for cube, value in enumerate(exchange.sent_bytes):
                expected = shares[cube] * (n - 1) * item_bytes
                if value != expected:
                    violations.append(ShardViolation(
                        code="NC302", cube=cube, layer=entry.name,
                        message=(f"{entry.name}: cube {cube} sends "
                                 f"{value} all-gather bytes for its "
                                 f"{shares[cube]}-item share, "
                                 f"expected {expected}")))
    return violations


def capacity_violations(plan: ShardPlan,
                        config: MultiCubeConfig) -> list[ShardViolation]:
    """NC303: per-cube DRAM footprint vs ``cube_capacity_bytes``.

    Exposed on its own (not only through :func:`verify_shard_plan`)
    because :func:`repro.core.shard.shard_network` reports capacity
    failures through it even with the validate hook off — the static
    report replaces the old bare run-time ``MappingError``.
    """
    capacity = config.cube_capacity_bytes
    if capacity is None:
        return []
    violations: list[ShardViolation] = []
    for cube in range(plan.n_cubes):
        total = sum(entry.descriptors[cube].layout.total_bytes
                    for entry in plan.layers)
        if total <= capacity:
            continue
        heaviest = max(
            plan.layers,
            key=lambda entry: entry.descriptors[cube].layout.total_bytes)
        heaviest_bytes = heaviest.descriptors[cube].layout.total_bytes
        violations.append(ShardViolation(
            code="NC303", cube=cube, layer=heaviest.name,
            message=(f"cube {cube} needs {total / 1e6:.2f} MB against "
                     f"a capacity of {capacity / 1e6:.2f} MB on "
                     f"{plan.n_cubes} cube(s) — "
                     f"{(total - capacity) / 1e6:.2f} MB over budget; "
                     f"heaviest layer {heaviest.name!r} holds "
                     f"{heaviest_bytes / 1e6:.2f} MB; shard across "
                     f"more cubes")))
    return violations


def _check_capacity(plan: ShardPlan,
                    config: MultiCubeConfig) -> list[ShardViolation]:
    return capacity_violations(plan, config)


def _flat_out_items(entry: ShardedLayer) -> int:
    """Total flat output items of a layer (all maps), base geometry."""
    base = entry.base
    if base.kind == "pool":
        return base.passes * base.neurons_per_pass
    if base.kind == "conv":
        return (base.passes // base.sub_passes) * base.neurons_per_pass
    return base.neurons_per_pass


def _check_single_cube_geometry(plan: ShardPlan) -> list[ShardViolation]:
    """NC304 for ``n_cubes == 1``: the one slice owns everything.

    A single-cube plan keeps the base descriptor unrenamed and its
    slice spans the *flat* output item range (there is no row
    partition to reconstruct).
    """
    violations: list[ShardViolation] = []
    for entry in plan.layers:
        if len(entry.descriptors) != 1 or len(entry.slices) != 1:
            violations.append(ShardViolation(
                code="NC304", layer=entry.name,
                message=(f"{entry.name}: single-cube plan carries "
                         f"{len(entry.descriptors)} descriptor(s) / "
                         f"{len(entry.slices)} slice(s)")))
            continue
        if entry.descriptors[0] is not entry.base:
            violations.append(ShardViolation(
                code="NC304", cube=0, layer=entry.name,
                message=(f"{entry.name}: single-cube shard is not the "
                         f"base descriptor itself; fault salts and "
                         f"memo keys would diverge from the unsharded "
                         f"run")))
        slice_ = entry.slices[0]
        items = _flat_out_items(entry)
        if (slice_.out_lo, slice_.out_hi) != (0, items):
            violations.append(ShardViolation(
                code="NC304", cube=0, layer=entry.name,
                message=(f"{entry.name}: single cube owns output items "
                         f"[{slice_.out_lo}, {slice_.out_hi}) of "
                         f"[0, {items})")))
        if (slice_.in_lo, slice_.in_hi) != (0, entry.base.in_height):
            violations.append(ShardViolation(
                code="NC304", cube=0, layer=entry.name,
                message=(f"{entry.name}: single cube streams input "
                         f"rows [{slice_.in_lo}, {slice_.in_hi}) of "
                         f"[0, {entry.base.in_height})")))
    recomputed = sum(entry.descriptors[0].layout.total_bytes
                     for entry in plan.layers
                     if len(entry.descriptors) == 1)
    if plan.per_cube_bytes != (recomputed,):
        violations.append(ShardViolation(
            code="NC304", cube=0,
            message=(f"plan claims {plan.per_cube_bytes} footprint "
                     f"bytes, its layouts hold {recomputed}")))
    return violations


def _check_geometry(plan: ShardPlan,
                    config: MultiCubeConfig) -> list[ShardViolation]:
    """NC304: shards tile the base layer; layouts and bytes agree."""
    if plan.n_cubes == 1:
        return _check_single_cube_geometry(plan)
    violations: list[ShardViolation] = []
    n = plan.n_cubes
    for entry in plan.layers:
        base = entry.base
        if len(entry.descriptors) != n or len(entry.slices) != n:
            violations.append(ShardViolation(
                code="NC304", layer=entry.name,
                message=(f"{entry.name}: {len(entry.descriptors)} "
                         f"shard descriptor(s) / {len(entry.slices)} "
                         f"slice(s) for {n} cube(s)")))
            continue
        total = _total_out_units(entry)
        cursor = 0
        for cube, slice_ in enumerate(entry.slices):
            if slice_.cube != cube:
                violations.append(ShardViolation(
                    code="NC304", cube=cube, layer=entry.name,
                    message=(f"{entry.name}: slice at position {cube} "
                             f"claims cube {slice_.cube}")))
            if slice_.out_lo != cursor:
                gap = "overlap" if slice_.out_lo < cursor else "gap"
                violations.append(ShardViolation(
                    code="NC304", cube=cube, layer=entry.name,
                    message=(f"{entry.name}: cube {cube}'s output "
                             f"share starts at {slice_.out_lo}, "
                             f"previous share ended at {cursor} — a "
                             f"{gap} in the tiling; some output "
                             f"would be produced twice or never")))
            if slice_.out_hi <= slice_.out_lo:
                violations.append(ShardViolation(
                    code="NC304", cube=cube, layer=entry.name,
                    message=(f"{entry.name}: cube {cube} owns the "
                             f"empty output range "
                             f"[{slice_.out_lo}, {slice_.out_hi})")))
            cursor = max(cursor, slice_.out_hi)
            violations.extend(_check_shard_descriptor(entry, cube))
        if cursor != total:
            violations.append(ShardViolation(
                code="NC304", layer=entry.name,
                message=(f"{entry.name}: shards cover output units "
                         f"[0, {cursor}) of [0, {total}); the union "
                         f"does not reconstruct the base layer")))
    for cube in range(min(n, len(plan.per_cube_bytes))):
        recomputed = sum(entry.descriptors[cube].layout.total_bytes
                         for entry in plan.layers
                         if len(entry.descriptors) == n)
        if plan.per_cube_bytes[cube] != recomputed:
            violations.append(ShardViolation(
                code="NC304", cube=cube,
                message=(f"plan claims {plan.per_cube_bytes[cube]} "
                         f"footprint bytes for cube {cube}, its shard "
                         f"layouts hold {recomputed}")))
    if len(plan.per_cube_bytes) != n:
        violations.append(ShardViolation(
            code="NC304",
            message=(f"plan carries {len(plan.per_cube_bytes)} per-cube "
                     f"footprints for {n} cube(s)")))
    return violations


def _check_shard_descriptor(entry: ShardedLayer,
                            cube: int) -> list[ShardViolation]:
    """One shard descriptor's geometry/layout against base + slice."""
    violations: list[ShardViolation] = []
    base = entry.base
    desc = entry.descriptors[cube]
    slice_ = entry.slices[cube]
    rows = slice_.out_hi - slice_.out_lo

    def bad(message: str) -> None:
        violations.append(ShardViolation(code="NC304", cube=cube,
                                         layer=entry.name,
                                         message=message))

    if base.kind == "conv":
        out_w = base.in_width - base.kernel + 1
        if desc.neurons_per_pass != rows * out_w:
            bad(f"{entry.name}: cube {cube} descriptor computes "
                f"{desc.neurons_per_pass} neurons/pass for a "
                f"{rows}-row share of width {out_w} "
                f"(expected {rows * out_w})")
        if (slice_.in_lo != slice_.out_lo
                or slice_.in_hi != slice_.out_hi + base.kernel - 1):
            bad(f"{entry.name}: cube {cube} input rows "
                f"[{slice_.in_lo}, {slice_.in_hi}) do not equal its "
                f"output rows plus the {base.kernel - 1}-row halo")
    elif base.kind == "pool":
        out_w = base.in_width // base.kernel
        if desc.neurons_per_pass != rows * out_w:
            bad(f"{entry.name}: cube {cube} descriptor computes "
                f"{desc.neurons_per_pass} neurons/pass for a "
                f"{rows}-pooled-row share of width {out_w}")
        if (slice_.in_lo != slice_.out_lo * base.kernel
                or slice_.in_hi != slice_.out_hi * base.kernel):
            bad(f"{entry.name}: cube {cube} input rows "
                f"[{slice_.in_lo}, {slice_.in_hi}) are not its pooled "
                f"share times the {base.kernel}-row window")
    else:
        if desc.neurons_per_pass != rows:
            bad(f"{entry.name}: cube {cube} descriptor holds "
                f"{desc.neurons_per_pass} output neurons for the "
                f"[{slice_.out_lo}, {slice_.out_hi}) share")
        if slice_.in_lo != 0 or slice_.in_hi != base.connections:
            bad(f"{entry.name}: cube {cube} fc input range "
                f"[{slice_.in_lo}, {slice_.in_hi}) is not the full "
                f"all-gathered vector [0, {base.connections})")
    if entry.name != base.name:
        bad(f"sharded layer {entry.name!r} wraps base descriptor "
            f"{base.name!r}")
    if len(entry.descriptors) > 1:
        expected_name = f"{base.name}.cube{cube}"
        if desc.name != expected_name:
            bad(f"{entry.name}: cube {cube} shard named {desc.name!r}, "
                f"expected {expected_name!r}; fault salts and "
                f"checkpoint namespaces key on the shard name")
    if desc.in_height != slice_.in_hi - slice_.in_lo and base.kind != "fc":
        bad(f"{entry.name}: cube {cube} descriptor streams "
            f"{desc.in_height} input rows, its slice spans "
            f"{slice_.in_hi - slice_.in_lo}")
    layout, ref = desc.layout, base.layout
    if layout.vaults != ref.vaults or layout.duplicate != ref.duplicate:
        bad(f"{entry.name}: cube {cube} layout uses {layout.vaults} "
            f"vault(s), duplicate={layout.duplicate}; the base layer "
            f"maps {ref.vaults} vault(s), duplicate={ref.duplicate}")
    if layout.packets_per_connection != ref.packets_per_connection:
        bad(f"{entry.name}: cube {cube} layout ships "
            f"{layout.packets_per_connection} packet(s) per "
            f"connection, base ships {ref.packets_per_connection}; "
            f"the compiler's streamed-weight override was not "
            f"mirrored")
    if ref.weight_bytes == 0 and layout.weight_bytes != 0:
        bad(f"{entry.name}: cube {cube} layout stores "
            f"{layout.weight_bytes} weight bytes for a weightless "
            f"base layer")
    if ref.remote_state_fraction == 0.0 and layout.remote_state_fraction:
        bad(f"{entry.name}: cube {cube} layout claims remote state "
            f"traffic on a vault-local base layer")
    return violations


def _check_fold_determinism(plan: ShardPlan,
                            config: MultiCubeConfig) -> list[ShardViolation]:
    """NC305: barrier arithmetic is an integer cube-order fold."""
    violations: list[ShardViolation] = []
    links = link_model_for(config)
    for exchange in plan.exchanges:
        bad_items = [(cube, value)
                     for cube, value in enumerate(exchange.sent_bytes)
                     if not _is_int(value) or value < 0]
        for cube, value in bad_items:
            violations.append(ShardViolation(
                code="NC305", cube=cube, layer=exchange.layer,
                message=(f"{exchange.layer}: cube {cube} exchange "
                         f"payload is {value!r}; the barrier fold is "
                         f"integer arithmetic over cube-order "
                         f"outcomes, and a non-integer (or negative) "
                         f"byte count would poison every downstream "
                         f"cluster cycle")))
        if bad_items:
            continue
        forward = links.barrier_cycles(exchange.sent_bytes)
        reversed_fold = links.barrier_cycles(
            tuple(reversed(exchange.sent_bytes)))
        if not _is_int(forward) or forward != reversed_fold:
            violations.append(ShardViolation(
                code="NC305", layer=exchange.layer,
                message=(f"{exchange.layer}: barrier fold is not a "
                         f"cube-order-independent integer "
                         f"({forward!r} forward vs {reversed_fold!r} "
                         f"reversed); the conservative sync would "
                         f"depend on execution order")))
    return violations


def _check_link_sanity(plan: ShardPlan,
                       config: MultiCubeConfig) -> list[ShardViolation]:
    """NC306: link parameters stay within the Table-I figures."""
    violations: list[ShardViolation] = []
    if config.link_bandwidth > HMC_EXT.peak_bandwidth:
        violations.append(ShardViolation(
            code="NC306",
            message=(f"per-link bandwidth "
                     f"{config.link_bandwidth / 1e9:.1f} GB/s exceeds "
                     f"the Table-I HMC-Ext channel figure "
                     f"({HMC_EXT.peak_bandwidth / 1e9:.1f} GB/s); "
                     f"barrier cycles would be computed against "
                     f"unphysical links")))
    if config.links_per_cube > LINKS_PER_CUBE:
        violations.append(ShardViolation(
            code="NC306",
            message=(f"{config.links_per_cube} SerDes links per cube "
                     f"exceeds the paper's {LINKS_PER_CUBE} "
                     f"(SS VII: '4 links (SERDES)')")))
    links = link_model_for(config)
    largest = max((max(e.sent_bytes) for e in plan.exchanges
                   if e.sent_bytes), default=0)
    if largest and links.serialization_cycles(int(largest)) < 1:
        violations.append(ShardViolation(
            code="NC306",
            message=(f"a {largest}-byte frame serializes in zero "
                     f"cycles; link arithmetic lost its >= 1 cycle "
                     f"floor")))
    return violations


_SHARD_CHECKS = (
    ("NC301", _check_exchanges),
    ("NC302", _check_byte_accounting),
    ("NC303", _check_capacity),
    ("NC304", _check_geometry),
    ("NC305", _check_fold_determinism),
    ("NC306", _check_link_sanity),
)


# ---------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------

def verify_shard_plan(plan: ShardPlan, config: MultiCubeConfig,
                      select: Iterable[str] | None = None,
                      ) -> list[ShardViolation]:
    """Run the static shard-plan checks; returns all violations found."""
    wanted = set(select) if select is not None else None
    violations: list[ShardViolation] = []
    for code, check in _SHARD_CHECKS:
        if wanted is not None and code not in wanted:
            continue
        violations.extend(check(plan, config))
    return violations


def check_shard_plan(plan: ShardPlan, config: MultiCubeConfig,
                     label: str = "shard plan") -> None:
    """Fail-fast hook: raise :class:`PlanCheckError` on any violation.

    The ``validate=`` hook of :func:`repro.core.shard.shard_network`
    (and, through it, ``run_network(cubes=N)``) calls this before any
    cube process is spawned.
    """
    violations = verify_shard_plan(plan, config)
    if not violations:
        return
    lines = [f"ncshardcheck: {label} failed "
             f"{len(violations)} static check(s):"]
    lines.extend(f"  {v.format()}" for v in violations)
    raise PlanCheckError("\n".join(lines), violations=violations)


def report_shard_plan(plan: ShardPlan, config: MultiCubeConfig,
                      label: str = "") -> dict:
    """JSON-compatible verification report with per-check status.

    Every catalogue check carries an explicit ``status`` —
    ``passed`` / ``failed`` / ``skipped`` — plus a ``skipped`` reason
    when it was not evaluated (NC303 without a capacity budget), so a
    CI artifact distinguishes "verified clean" from "not evaluated".
    """
    violations = verify_shard_plan(plan, config)
    by_code: dict[str, list[ShardViolation]] = {}
    for violation in violations:
        by_code.setdefault(violation.code, []).append(violation)
    checks = []
    for entry in SHARD_CHECK_CATALOGUE:
        skipped = ""
        if (entry.code == "NC303"
                and config.cube_capacity_bytes is None):
            skipped = _NC303_SKIP
        found = by_code.get(entry.code, [])
        status = ("failed" if found
                  else "skipped" if skipped else "passed")
        checks.append({"code": entry.code, "title": entry.title,
                       "guarantee": entry.guarantee, "status": status,
                       "skipped": skipped,
                       "violations": [vars(v) for v in found]})
    return {
        "kind": "ncshardcheck-report",
        "label": label or plan.network_name,
        "network": plan.network_name,
        "n_cubes": plan.n_cubes,
        "exchanges": len(plan.exchanges),
        "per_cube_bytes": list(plan.per_cube_bytes),
        "violation_count": len(violations),
        "checks": checks,
    }


def shard_feasible(config, network, cubes: int | None = None,
                   cube_capacity_bytes: float | None = None) -> bool:
    """Fast static feasibility of sharding ``network`` on a cluster.

    The pruning predicate the Pareto DSE engine calls before spending
    cycle-simulator time: True iff the network partitions across the
    cluster (no layer too small, every cube's layout mappable, capacity
    budget respected) *and* the resulting plan passes every NC3xx
    check.  Never raises for infeasibility — compile/mapping failures
    and static violations all return False.

    Args:
        config: a :class:`MultiCubeConfig`, or a per-cube
            :class:`~repro.core.config.NeurocubeConfig` combined with
            ``cubes`` (and optionally ``cube_capacity_bytes``).
        network: the :class:`~repro.nn.network.Network` to shard.
        cubes: cluster size when ``config`` is a per-cube config.
        cube_capacity_bytes: optional capacity budget when building
            the cluster from a per-cube config.
    """
    from repro.core.shard import shard_network

    if isinstance(config, MultiCubeConfig):
        cluster = config
        if cubes is not None and cubes != cluster.n_cubes:
            cluster = MultiCubeConfig(
                cube=cluster.cube, n_cubes=cubes,
                links_per_cube=cluster.links_per_cube,
                link_bandwidth=cluster.link_bandwidth,
                cube_capacity_bytes=cluster.cube_capacity_bytes)
    else:
        if cubes is None:
            raise PlanCheckError(
                "shard_feasible needs a cluster size: pass a "
                "MultiCubeConfig, or a per-cube config with cubes=N")
        cluster = MultiCubeConfig(cube=config, n_cubes=cubes,
                                  cube_capacity_bytes=cube_capacity_bytes)
    try:
        plan = shard_network(network, cluster, validate=False)
    except (MappingError, PlanCheckError):
        return False
    return not verify_shard_plan(plan, cluster)


# ---------------------------------------------------------------------
# self-test: every check must fire on a seeded violation
# ---------------------------------------------------------------------

def _seed_plan() -> tuple[ShardPlan, MultiCubeConfig]:
    """A small, clean two-cube conv/pool/fc plan to mutate."""
    from repro.core.config import NeurocubeConfig
    from repro.core.shard import shard_network
    from repro.nn.activations import Sigmoid, Tanh
    from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
    from repro.nn.network import Network

    network = Network(
        [Conv2D(2, 3, activation=Tanh(), name="conv"),
         MaxPool2D(2, name="pool"),
         Flatten(name="flatten"),
         Dense(16, activation=Sigmoid(), name="classify")],
        input_shape=(1, 18, 12), name="shardcheck-selftest", seed=7)
    config = MultiCubeConfig(cube=NeurocubeConfig.hmc_15nm(), n_cubes=2)
    return shard_network(network, config, validate=False), config


def _replace_layer(plan: ShardPlan, position: int,
                   **changes) -> ShardPlan:
    import dataclasses

    layers = list(plan.layers)
    layers[position] = dataclasses.replace(layers[position], **changes)
    return dataclasses.replace(plan, layers=tuple(layers))


def _mutate_exchange(plan: ShardPlan, position: int,
                     **changes) -> ShardPlan:
    import dataclasses

    exchange = plan.layers[position].exchange
    return _replace_layer(plan, position,
                          exchange=dataclasses.replace(exchange,
                                                       **changes))


def self_test() -> list[str]:
    """Prove every NC3xx check fires on a seeded violation and stays
    silent on a clean plan.  Returns failure descriptions (empty =
    pass)."""
    import dataclasses

    failures: list[str] = []
    plan, config = _seed_plan()
    baseline = verify_shard_plan(plan, config)
    if baseline:
        failures.append(
            f"clean plan raised {[v.format() for v in baseline]}")
    halo_at = next(i for i, entry in enumerate(plan.layers)
                   if entry.exchange is not None
                   and entry.exchange.kind == "halo")
    gather_at = next(i for i, entry in enumerate(plan.layers)
                     if entry.exchange is not None
                     and entry.exchange.kind == "all_gather")

    def expect(code: str, mutated: ShardPlan, note: str,
               cluster: MultiCubeConfig | None = None) -> None:
        codes = {v.code
                 for v in verify_shard_plan(mutated, cluster or config,
                                            select=[code])}
        if code not in codes:
            failures.append(f"{code} did not fire on {note}")

    # NC301: drop the all-gather exchange feeding the fc layer.
    expect("NC301", _replace_layer(plan, gather_at, exchange=None),
           "a plan missing its all-gather exchange")
    # NC302: inflate one cube's halo byte count.
    sent = plan.layers[halo_at].exchange.sent_bytes
    expect("NC302", _mutate_exchange(plan, halo_at,
                                     sent_bytes=(sent[0] + 64,)
                                     + sent[1:]),
           "a plan with an inflated halo byte count")
    # NC303: shrink the capacity budget below the heaviest cube.
    tight = MultiCubeConfig(
        cube=config.cube, n_cubes=config.n_cubes,
        cube_capacity_bytes=max(plan.per_cube_bytes) - 1)
    expect("NC303", plan, "a plan over a shrunken capacity budget",
           cluster=tight)
    # NC304: overlap two shards' output ranges.
    slices = list(plan.layers[halo_at].slices)
    slices[1] = dataclasses.replace(slices[1],
                                    out_lo=slices[1].out_lo - 1)
    expect("NC304", _replace_layer(plan, halo_at,
                                   slices=tuple(slices)),
           "a plan with overlapping shard geometry")
    # NC305: a fractional byte count in the barrier fold.
    expect("NC305", _mutate_exchange(plan, halo_at,
                                     sent_bytes=(float(sent[0]) + 0.5,)
                                     + sent[1:]),
           "a plan folding non-integer exchange bytes")
    # NC306: a link claiming more than the Table-I channel bandwidth.
    inflated = MultiCubeConfig(
        cube=config.cube, n_cubes=config.n_cubes,
        link_bandwidth=HMC_EXT.peak_bandwidth * 4)
    expect("NC306", plan, "a cluster with unphysical link bandwidth",
           cluster=inflated)
    return failures


def clean_gate(cube_counts: Sequence[int] = (1, 2, 4)) -> dict[int, int]:
    """Verify the ``ext_shard`` workload plan at several cube counts.

    Returns ``{cube_count: violation_count}`` — the CI clean-tree gate
    (``nccheck --cubes 1,2,4``) asserts every value is zero.
    """
    from repro.core.config import NeurocubeConfig
    from repro.core.shard import shard_network
    from repro.experiments.ext_shard import shard_workload

    network = shard_workload()
    cube = NeurocubeConfig.hmc_15nm()
    results: dict[int, int] = {}
    for count in cube_counts:
        cluster = MultiCubeConfig(cube=cube, n_cubes=count)
        plan = shard_network(network, cluster, validate=False)
        results[count] = len(verify_shard_plan(plan, cluster))
    return results
