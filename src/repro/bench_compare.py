"""Benchmark regression gate for CI.

Compares a fresh ``pytest-benchmark --benchmark-json`` result against a
committed baseline and exits nonzero when any shared benchmark regressed
by more than the threshold (default 30%).

Usage (installed as the ``bench_compare`` console script; from a
checkout use ``python tools/bench_compare.py`` with the same
arguments)::

    bench_compare baseline.json current.json \
        [--threshold 0.30] [--metric min]

The ``min`` statistic is the default comparison metric: it is the least
noisy of pytest-benchmark's aggregates (the fastest observed round is a
lower bound on the true cost, largely immune to scheduler jitter), which
matters when the baseline and the CI runner are different machines.

Exit codes: 0 all good, 1 regression found, 2 malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    """Read one pytest-benchmark JSON file.

    Returns ``{name: {"stats": ..., "extra_info": ...}}``.  The
    ``extra_info`` block (simulator rates recorded by the benchmarks
    themselves) is informational only and never gated on.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(
            f"bench_compare: cannot read {path}: {error}") from error
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise SystemExit(
            f"bench_compare: {path} has no 'benchmarks' list — is it a "
            f"pytest-benchmark JSON file?")
    table: dict[str, dict] = {}
    for bench in benchmarks:
        name = bench.get("name")
        stats = bench.get("stats")
        if not name or not isinstance(stats, dict):
            raise SystemExit(
                f"bench_compare: malformed benchmark entry in {path}")
        table[name] = {"stats": stats,
                       "extra_info": bench.get("extra_info") or {}}
    return table


def _sim_rate_note(base_extra: dict, cur_extra: dict) -> str:
    """Informational simulator-rate note for one benchmark line.

    Shows the current ``simulated_cycles_per_second`` and, when the
    baseline recorded one too, the speedup factor against it.  Never
    gated on: the wall-clock metric is the gate, the simulator rate is
    the number a human wants to see move.
    """
    rate = cur_extra.get("simulated_cycles_per_second")
    if not rate:
        return ""
    base_rate = base_extra.get("simulated_cycles_per_second")
    if base_rate:
        return (f"  [{rate:,.0f} sim cycles/s, "
                f"{rate / base_rate:.2f}x baseline rate]")
    return f"  [{rate:,.0f} sim cycles/s]"


def _fault_note(cur_extra: dict) -> str:
    """Informational fault/retry-counter note for one benchmark line.

    Fault-injection benchmarks attach a ``fault_counters`` dict (the
    nonzero :class:`repro.faults.FaultStats` counters, e.g. ``retries``
    or ``packets_lost``) to ``extra_info``.  Like the simulator rate,
    these are printed for the human reading the log and never gated on:
    a seeded fault campaign's counters are deterministic, so a change
    here means the fault model changed, not that the code got slower.
    """
    counters = cur_extra.get("fault_counters")
    if not isinstance(counters, dict) or not counters:
        return ""
    shown = ", ".join(f"{name}={value}"
                      for name, value in sorted(counters.items()) if value)
    if not shown:
        return ""
    return f"  [faults: {shown}]"


def _memo_note(cur_extra: dict) -> str:
    """Informational memo-store counter note for one benchmark line.

    Memoization benchmarks attach a ``memo_counters`` dict (the nonzero
    :class:`repro.memo.MemoStats` counters, e.g. ``hits`` or
    ``rejects``) to ``extra_info``.  Printed for the human reading the
    log and never gated on: the bit-identity and speedup asserts live
    inside the benchmarks themselves, where a failure names the exact
    broken invariant instead of a generic slowdown.
    """
    counters = cur_extra.get("memo_counters")
    if not isinstance(counters, dict) or not counters:
        return ""
    shown = ", ".join(f"{name}={value}"
                      for name, value in sorted(counters.items()) if value)
    if not shown:
        return ""
    return f"  [memo: {shown}]"


def _stream_note(base_extra: dict, cur_extra: dict) -> str:
    """Informational streaming-throughput note for one benchmark line.

    Streaming benchmarks attach ``warm_frames_per_second`` (host-side
    replay rate of the functional fast path) to ``extra_info``.  Shown
    with the factor against the baseline when one exists; the hard
    throughput gate is the assert inside the benchmark itself.
    """
    rate = cur_extra.get("warm_frames_per_second")
    if not rate:
        return ""
    base_rate = base_extra.get("warm_frames_per_second")
    if base_rate:
        return (f"  [{rate:,.0f} warm frames/s, "
                f"{rate / base_rate:.2f}x baseline rate]")
    return f"  [{rate:,.0f} warm frames/s]"


def _serve_note(cur_extra: dict) -> str:
    """Informational serving-layer note for one benchmark line.

    Service benchmarks attach ``serve_p50_ms`` / ``serve_p99_ms``
    (terminal-job latency percentiles of an in-process service pass)
    and ``serve_warm_hit_pct`` (plan-cache hit share) to
    ``extra_info``.  Printed for the human reading the log, never
    gated on: the hard gates (3x warm speedup, bit-identity) are
    asserts inside the benchmarks themselves.
    """
    p50 = cur_extra.get("serve_p50_ms")
    if p50 is None:
        return ""
    parts = [f"p50 {p50:,.0f}ms"]
    p99 = cur_extra.get("serve_p99_ms")
    if p99 is not None:
        parts.append(f"p99 {p99:,.0f}ms")
    hit_pct = cur_extra.get("serve_warm_hit_pct")
    if hit_pct is not None:
        parts.append(f"warm-hit {hit_pct:.0f}%")
    return f"  [serve: {', '.join(parts)}]"


def _cubes_note(cur_extra: dict) -> str:
    """Format multi-cube sharding counters when a benchmark attached any.

    Sharded benchmarks attach ``cubes`` (cluster size),
    ``intercube_comm_cycles`` (cycles spent at exchange barriers) and
    ``sharded_speedup`` (wall-clock factor over the serial sharded run).
    Informational only — the hard gates (bit-identity, >= 2x on 4
    cubes) are asserts inside the benchmarks themselves.
    """
    cubes = cur_extra.get("cubes")
    if not cubes:
        return ""
    parts = [f"cubes: {cubes}"]
    comm = cur_extra.get("intercube_comm_cycles")
    if comm is not None:
        parts.append(f"comm {comm:,.0f} cycles")
    speedup = cur_extra.get("sharded_speedup")
    if speedup is not None:
        parts.append(f"{speedup:.2f}x sharded speedup")
    return f"  [{', '.join(parts)}]"


def registry_drift_notes(registry_dir: str, last: int) -> list[str]:
    """Informational drift notes from the cross-run registry.

    When ``--registry`` names a :class:`repro.obs.registry.RunRegistry`
    store, the newest recorded run is compared against the previous
    ``last``-record window per config fingerprint.  Like every other
    note here these never gate: the hard gate stays the pinned-baseline
    threshold; the registry adds the *trajectory* a single baseline
    cannot show.
    """
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(registry_dir)
    records = registry.records()
    if len(records) < 2:
        return [f"  [registry: {len(records)} recorded run(s), "
                f"no history to compare]"]
    findings = registry.regress(last=last)
    if not findings:
        return [f"  [registry: no drift over the last {last} "
                f"recorded run(s)]"]
    return [f"  [registry drift: {finding.format()}]"
            for finding in findings]


def compare(baseline: dict[str, dict], current: dict[str, dict],
            threshold: float, metric: str) -> list[str]:
    """Return the names of benchmarks regressed past ``threshold``.

    Prints one line per benchmark with the wall-clock speedup factor
    against the baseline (>1 faster, <1 slower; the gate fires when it
    drops below ``1 / (1 + threshold)``).  Benchmarks present on only
    one side are reported but never fail the gate — new benchmarks have
    no baseline yet and retired ones no longer matter.
    """
    regressions: list[str] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"  - {name}: in baseline only (retired?)")
            continue
        if name not in baseline:
            print(f"  + {name}: new benchmark, no baseline")
            continue
        base_value = baseline[name]["stats"].get(metric)
        cur_value = current[name]["stats"].get(metric)
        if base_value is None or cur_value is None:
            raise SystemExit(
                f"bench_compare: benchmark {name!r} lacks the "
                f"{metric!r} statistic")
        if base_value <= 0:
            print(f"  ? {name}: non-positive baseline {metric}, skipped")
            continue
        regressed = cur_value / base_value > 1.0 + threshold
        marker = "REGRESSION" if regressed else "ok"
        note = _sim_rate_note(baseline[name]["extra_info"],
                              current[name]["extra_info"])
        note += _fault_note(current[name]["extra_info"])
        note += _memo_note(current[name]["extra_info"])
        note += _stream_note(baseline[name]["extra_info"],
                             current[name]["extra_info"])
        note += _serve_note(current[name]["extra_info"])
        note += _cubes_note(current[name]["extra_info"])
        print(f"  {name}: {metric} {base_value:.6g}s -> {cur_value:.6g}s "
              f"({base_value / cur_value:.2f}x speedup)  {marker}{note}")
        if regressed:
            regressions.append(name)
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress against a baseline.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--metric", default="min",
                        choices=("min", "max", "mean", "median", "stddev"),
                        help="pytest-benchmark statistic to compare "
                             "(default: min)")
    parser.add_argument("--registry", default=None,
                        help="run-registry directory for informational "
                             "drift notes against recorded history")
    parser.add_argument("--last", type=int, default=5,
                        help="registry window size (default 5)")
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    print(f"bench_compare: threshold +{args.threshold:.0%} on "
          f"'{args.metric}'")
    regressions = compare(baseline, current, args.threshold, args.metric)
    if args.registry is not None:
        for note in registry_drift_notes(args.registry, args.last):
            print(note)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s): "
              f"{', '.join(regressions)}")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
