"""Table II + Fig. 16 — hardware power, area and floorplan feasibility.

Aggregates the per-component database into the paper's summary rows
(PE sum, 16-core compute, baseline logic die, DRAM dies) and runs the
Fig. 16 check that 16 cores fit the 68 mm^2 HMC logic die.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import register
from repro.hw.area import HMC_LOGIC_DIE_MM2, AreaModel, Floorplan
from repro.hw.components import (
    COMPUTE_AREA_MM2,
    COMPUTE_POWER_W,
    DRAM_DIES_POWER_W,
    HMC_LOGIC_POWER_W,
    PE_SUM_AREA_MM2,
    PE_SUM_POWER_W,
)
from repro.hw.power import PowerModel, SystemPower


@dataclass
class NodeHardware:
    """One technology node's aggregated hardware numbers."""

    technology: str
    pe_power_w: float
    compute_power_w: float
    system: SystemPower
    compute_area_mm2: float
    floorplan: Floorplan

    @property
    def expected(self) -> dict[str, float]:
        """Paper's Table II aggregate rows for this node."""
        t = self.technology
        return {"pe_power_w": PE_SUM_POWER_W[t],
                "compute_power_w": COMPUTE_POWER_W[t],
                "hmc_logic_w": HMC_LOGIC_POWER_W[t],
                "dram_w": DRAM_DIES_POWER_W[t],
                "pe_area_mm2": PE_SUM_AREA_MM2[t],
                "compute_area_mm2": COMPUTE_AREA_MM2[t]}


@dataclass
class HardwareResult:
    """Both nodes."""

    nodes: dict[str, NodeHardware]

    def to_table(self) -> str:
        lines = ["Table II — hardware aggregation (measured vs paper)"]
        header = (f"{'quantity':<22}{'28nm':>12}{'paper':>12}"
                  f"{'15nm':>12}{'paper':>12}")
        lines.append(header)
        lines.append("-" * len(header))
        n28, n15 = self.nodes["28nm"], self.nodes["15nm"]

        def row(label, v28, p28, v15, p15, fmt="{:>12.4f}"):
            lines.append(f"{label:<22}" + fmt.format(v28)
                         + fmt.format(p28) + fmt.format(v15)
                         + fmt.format(p15))

        row("PE power (W)", n28.pe_power_w, n28.expected["pe_power_w"],
            n15.pe_power_w, n15.expected["pe_power_w"])
        row("compute power (W)", n28.compute_power_w,
            n28.expected["compute_power_w"], n15.compute_power_w,
            n15.expected["compute_power_w"])
        row("HMC logic (W)", n28.system.hmc_logic_w,
            n28.expected["hmc_logic_w"], n15.system.hmc_logic_w,
            n15.expected["hmc_logic_w"])
        row("DRAM dies (W)", n28.system.dram_w, n28.expected["dram_w"],
            n15.system.dram_w, n15.expected["dram_w"])
        row("compute area (mm^2)", n28.compute_area_mm2,
            n28.expected["compute_area_mm2"], n15.compute_area_mm2,
            n15.expected["compute_area_mm2"])
        lines.append("")
        lines.append("Fig. 16 — floorplan feasibility "
                     f"(logic die {HMC_LOGIC_DIE_MM2} mm^2)")
        for node in (n28, n15):
            plan = node.floorplan
            lines.append(
                f"  {node.technology}: core "
                f"{plan.core_side_mm * 1000:.0f}um x "
                f"{plan.core_side_mm * 1000:.0f}um, 16 cores = "
                f"{plan.total_area_mm2():.2f} mm^2, fits: "
                f"{plan.fits_logic_die()}")
        return "\n".join(lines)


@register("table2", "Hardware power/area aggregation and floorplan "
                    "feasibility")
def run() -> HardwareResult:
    """Aggregate both nodes and build the floorplans."""
    nodes = {}
    for technology in ("28nm", "15nm"):
        power = PowerModel(technology)
        area = AreaModel(technology)
        nodes[technology] = NodeHardware(
            technology=technology, pe_power_w=power.pe_power_w,
            compute_power_w=power.compute_power_w,
            system=power.system_power(),
            compute_area_mm2=area.compute_area_mm2,
            floorplan=area.floorplan())
    return HardwareResult(nodes=nodes)
