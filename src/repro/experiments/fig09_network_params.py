"""Fig. 9 — the scene-labeling ConvNN and its PNG programming parameters.

Reproduces the per-layer configuration-register table the host writes:
neuron-counter bound, connection-counter bound, MAC count, passes.  The
§IV-C worked example is checked here: the first convolutional layer of
the 320x240 network has 314 x 234 = 73,476 neurons per output map with
49 connections per input map, and the neuron counter advances by 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import NeurocubeConfig, compile_inference
from repro.core.layerdesc import LayerDescriptor
from repro.experiments.registry import register
from repro.nn import models

#: §IV-C worked-example values.
PAPER_CONV1_NEURONS = 73_476
PAPER_CONV1_CONNECTIONS_PER_MAP = 49
PAPER_NEURON_COUNTER_STRIDE = 16


@dataclass
class ProgrammingResult:
    """The per-layer PNG register table."""

    descriptors: list[LayerDescriptor] = field(default_factory=list)

    @property
    def conv1(self) -> LayerDescriptor:
        return self.descriptors[0]

    @property
    def matches_paper_example(self) -> bool:
        """The §IV-C register-value check."""
        conv1 = self.conv1
        per_map_connections = (conv1.connections * conv1.sub_passes
                               // conv1.sub_passes // (
                                   conv1.connections // (conv1.kernel ** 2)))
        return (conv1.neurons_per_pass == PAPER_CONV1_NEURONS
                and per_map_connections == PAPER_CONV1_CONNECTIONS_PER_MAP
                and conv1.n_mac == PAPER_NEURON_COUNTER_STRIDE)

    def to_table(self) -> str:
        header = (f"{'layer':<10}{'kind':<6}{'neurons/pass':>13}"
                  f"{'conn':>7}{'n_mac':>7}{'passes':>8}{'resident':>10}")
        lines = ["Fig. 9 — PNG programming parameters per layer",
                 header, "-" * len(header)]
        for desc in self.descriptors:
            lines.append(
                f"{desc.name:<10}{desc.kind:<6}"
                f"{desc.neurons_per_pass:>13,}{desc.connections:>7}"
                f"{desc.n_mac:>7}{desc.passes:>8}"
                f"{'yes' if desc.weights_resident else 'no':>10}")
        lines.append(f"paper example (73,476 neurons / 49 conn / stride "
                     f"16) matches: {self.matches_paper_example}")
        return "\n".join(lines)


@register("fig9", "Scene-labeling ConvNN structure and PNG programming "
                  "parameters")
def run() -> ProgrammingResult:
    """Compile the 320x240 scene-labeling network and dump the registers."""
    config = NeurocubeConfig.hmc_15nm()
    net = models.scene_labeling_convnn(qformat=None)
    program = compile_inference(net, config, duplicate=True)
    return ProgrammingResult(descriptors=list(program.descriptors))
