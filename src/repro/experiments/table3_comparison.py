"""Table III — cross-platform comparison.

Rebuilds the Neurocube rows from this reproduction's own simulated
throughput and modelled power (they are *not* transcribed), renders them
against the transcribed GPU/FPGA/ASIC rows, and checks the paper's
headline claim: roughly 4x the power efficiency of the GPU baselines
while remaining programmable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AnalyticModel, NeurocubeConfig
from repro.experiments.registry import register
from repro.hw.platforms import PAPER_NEUROCUBE, PLATFORMS, comparison_table
from repro.hw.power import PowerModel
from repro.nn import models


@dataclass
class ComparisonResult:
    """Measured Neurocube rows plus the transcribed platform table."""

    neurocube_rows: dict[str, dict]

    def efficiency(self, node: str) -> float:
        row = self.neurocube_rows[node]
        return row["throughput_gops"] / row["compute_power_w"]

    @property
    def gpu_efficiency_gain(self) -> float:
        """15nm Neurocube efficiency over the best GPU row (paper: ~4x)."""
        best_gpu = max(PLATFORMS[name].efficiency_gops_per_watt
                       for name in ("tegra_k1", "gtx_780"))
        return self.efficiency("15nm") / best_gpu

    def to_table(self) -> str:
        lines = ["Table III — platform comparison (Neurocube rows are "
                 "measured by this reproduction)",
                 comparison_table(self.neurocube_rows), "",
                 f"efficiency gain over best GPU: "
                 f"{self.gpu_efficiency_gain:.1f}x (paper ~4x)"]
        for node in ("28nm", "15nm"):
            paper = PAPER_NEUROCUBE[node]
            row = self.neurocube_rows[node]
            lines.append(
                f"{node}: measured {row['throughput_gops']:.1f} GOPs/s @ "
                f"{row['compute_power_w']:.2f} W = "
                f"{self.efficiency(node):.1f} GOPs/s/W   (paper "
                f"{paper['throughput_gops']} @ "
                f"{paper['compute_power_w']} = {paper['efficiency']})")
        return "\n".join(lines)


@register("table3", "Cross-platform efficiency comparison")
def run() -> ComparisonResult:
    """Measure the Neurocube rows and assemble the table."""
    net = models.scene_labeling_convnn(qformat=None)
    rows = {}
    for node, config in (("28nm", NeurocubeConfig.hmc_28nm()),
                         ("15nm", NeurocubeConfig.hmc_15nm())):
        report = AnalyticModel(config).evaluate_network(net,
                                                        duplicate=True)
        power = PowerModel(node)
        rows[node] = {
            "throughput_gops": report.throughput_gops,
            "compute_power_w": power.compute_power_w,
            "total_power_w": power.system_power().total_w,
        }
    return ComparisonResult(neurocube_rows=rows)
