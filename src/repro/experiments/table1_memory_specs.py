"""Table I — 3D stacked memory specifications.

Renders the transcribed specification database and derives the quantities
the rest of the system consumes (aggregate bandwidth, I/O clock), so any
transcription error would surface here and in the spec tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.registry import register
from repro.memory.specs import TABLE_I, MemorySpec


@dataclass
class MemorySpecsResult:
    """The rendered Table I."""

    specs: dict[str, MemorySpec] = field(default_factory=dict)

    def to_table(self) -> str:
        header = (f"{'technology':<10}{'iface':<7}{'ch':>4}{'word b':>8}"
                  f"{'GB/s/ch':>9}{'agg GB/s':>10}{'lat ns':>8}"
                  f"{'pJ/bit':>8}")
        lines = ["Table I — 3D stacked memory specifications", header,
                 "-" * len(header)]
        for spec in self.specs.values():
            latency = (f"{spec.access_latency * 1e9:.1f}"
                       if spec.access_latency is not None else "n/a")
            energy = (f"{spec.energy_per_bit * 1e12:.1f}"
                      if spec.energy_per_bit is not None else "n/a")
            lines.append(
                f"{spec.name:<10}{spec.interface:<7}"
                f"{spec.max_channels:>4}{spec.word_bits:>8}"
                f"{spec.peak_bandwidth / 1e9:>9.1f}"
                f"{spec.total_peak_bandwidth / 1e9:>10.1f}"
                f"{latency:>8}{energy:>8}")
        return "\n".join(lines)


@register("table1", "3D stacked memory specification database")
def run() -> MemorySpecsResult:
    """Render the Table I database."""
    return MemorySpecsResult(specs=dict(TABLE_I))
