"""Extension experiment: multi-cube scaling (paper §IX).

Not a paper figure — the paper's conclusion names scaling across multiple
cubes as the next step.  This experiment quantifies it with the
:mod:`repro.core.multicube` model: speedup and parallel efficiency of the
scene-labeling workload (at a larger 640x480 input, the use case that
motivates more cubes) and of an LSTM, across 1-16 cubes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import MultiCubeConfig, MultiCubeModel, NeurocubeConfig
from repro.core.multicube import MultiCubeReport
from repro.experiments.registry import register
from repro.nn import models

CUBE_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class ScalingResult:
    """Scaling curves for two workload classes."""

    scene: list[MultiCubeReport] = field(default_factory=list)
    lstm: list[MultiCubeReport] = field(default_factory=list)

    def efficiency_at(self, curve: str, n_cubes: int) -> float:
        reports = getattr(self, curve)
        return next(r.parallel_efficiency for r in reports
                    if r.n_cubes == n_cubes)

    def to_table(self) -> str:
        lines = ["Extension — multi-cube scaling (§IX next step)"]
        for label, reports in (("scene labeling 640x480", self.scene),
                               ("LSTM 256->512, 8 steps", self.lstm)):
            lines.append(f"\n{label}:")
            header = (f"{'cubes':>6}{'GOPs/s':>10}{'speedup':>9}"
                      f"{'efficiency':>12}{'comm%':>7}")
            lines.append(header)
            lines.append("-" * len(header))
            for report in reports:
                lines.append(
                    f"{report.n_cubes:>6}{report.throughput_gops:>10.1f}"
                    f"{report.speedup:>9.2f}"
                    f"{100 * report.parallel_efficiency:>11.1f}%"
                    f"{100 * report.comm_fraction:>7.1f}")
        return "\n".join(lines)


@register("ext_scaling", "Multi-cube scaling study (paper §IX future "
                         "work)")
def run(cube_counts=CUBE_COUNTS) -> ScalingResult:
    """Evaluate the two scaling curves."""
    base = MultiCubeConfig(cube=NeurocubeConfig.hmc_15nm(), n_cubes=1)
    model = MultiCubeModel(base)
    scene = models.scene_labeling_convnn(height=480, width=640,
                                         qformat=None)
    lstm = models.small_lstm(inputs=256, hidden_units=512, steps=8,
                             qformat=None)
    return ScalingResult(
        scene=model.scaling_curve(scene, cube_counts),
        lstm=model.scaling_curve(lstm, cube_counts))
