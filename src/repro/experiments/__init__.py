"""Experiment harness: one module per paper table/figure.

Each experiment module exposes a ``run()`` returning a result object with
a ``to_table()`` string, and registers itself in
:mod:`repro.experiments.registry`.  The CLI
(``python -m repro.experiments.runner``) runs them by id.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
paper-vs-measured record these harnesses regenerate.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, register

# Importing the modules registers them.
from repro.experiments import (  # noqa: E402  (registration imports)
    ext_lstm,
    ext_scaling,
    ext_serve,
    ext_shard,
    ext_stream,
    fig01_memory_capacity,
    fig09_network_params,
    fig12_inference,
    fig13_training,
    fig14_nn_params,
    fig15_memory_noc,
    fig17_thermal,
    fig_resilience,
    table1_memory_specs,
    table2_hardware,
    table3_comparison,
)

__all__ = [
    "EXPERIMENTS",
    "register",
    "get_experiment",
    "ext_lstm",
    "ext_scaling",
    "ext_serve",
    "ext_shard",
    "ext_stream",
    "fig01_memory_capacity",
    "fig09_network_params",
    "fig12_inference",
    "fig13_training",
    "fig14_nn_params",
    "fig15_memory_noc",
    "fig17_thermal",
    "fig_resilience",
    "table1_memory_specs",
    "table2_hardware",
    "table3_comparison",
]
