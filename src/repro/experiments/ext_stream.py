"""Extension experiment: streaming frame inference over the memo store.

Not a paper figure — the throughput story Neurostream tells for
streaming DNN inference over smart memory cubes (PAPERS.md), realised
here with :meth:`repro.core.NeurocubeSimulator.run_stream`: cycle-
simulate each layer's timing once (cold, memoized and persisted when a
memo store is ambient), then push a stream of frames through the
functional fixed-point path only (warm).  Every frame gets bit-exact
outputs plus the cold phase's exact cycle counts, at a host throughput
orders of magnitude above per-frame cycle simulation.

The runner's ``--stream N`` flag overrides the frame count via
:func:`set_frame_count`; ``--memo-dir`` makes the cold phase persistent
so a second invocation replays timing from disk (the CI ``memo`` job's
cold/warm contract).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import NeurocubeConfig, NeurocubeSimulator, StreamReport
from repro.errors import ConfigurationError
from repro.experiments.registry import register
from repro.nn.activations import ActivationLUT, Tanh

#: Frames streamed when no ``--stream N`` override is active.
DEFAULT_FRAMES = 4

#: Deterministic seeds: network parameters and the frame stream.
_NET_SEED = 11
_FRAME_SEED = 11

_frame_count: int | None = None


def set_frame_count(frames: int | None) -> None:
    """Override the streamed frame count (the runner's ``--stream N``).

    None restores the default.
    """
    if frames is not None and frames < 1:
        raise ConfigurationError(
            f"stream frame count must be >= 1, got {frames}")
    global _frame_count
    _frame_count = frames


def stream_network(config: NeurocubeConfig) -> nn.Network:
    """The streamed workload: a small conv+pool front end.

    Activations are :class:`ActivationLUT`-wrapped so the warm
    functional path is bit-exact against the simulator's assembled
    outputs (the LUT is what the hardware applies).
    """
    layers = [
        nn.Conv2D(4, 3, activation=ActivationLUT(Tanh()), name="conv",
                  qformat=config.qformat),
        nn.MaxPool2D(2, name="pool"),
    ]
    return nn.Network(layers, input_shape=(1, 16, 16),
                      name="stream_convpool", seed=_NET_SEED)


def frame_stream(count: int) -> list[np.ndarray]:
    """``count`` deterministic pseudo-camera frames, in stream order."""
    rng = np.random.default_rng(_FRAME_SEED)
    return [rng.uniform(-1.0, 1.0, (1, 16, 16)) for _ in range(count)]


@register("ext_stream", "Streaming frame inference (memoized timing + "
                        "functional fast path)")
def run(frames: int | None = None) -> StreamReport:
    """Stream frames through the conv+pool workload.

    Args:
        frames: frame count; None uses the ``--stream N`` override when
            active, else :data:`DEFAULT_FRAMES`.
    """
    if frames is None:
        frames = _frame_count if _frame_count is not None else DEFAULT_FRAMES
    config = NeurocubeConfig.hmc_15nm()
    simulator = NeurocubeSimulator(config)
    return simulator.run_stream(stream_network(config),
                                frame_stream(frames))
