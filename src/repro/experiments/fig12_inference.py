"""Fig. 12 — inference performance of the scene-labeling ConvNN.

Regenerates all four panels for both layout strategies: (a) operations
per layer, (b) clock cycles per layer, (c) throughput in GOPs/s, and (d)
memory requirement with the duplication overhead, plus the §VI-3
frames-per-second figures at both technology nodes.

Paper reference points: 132.4 GOPs/s with duplication, 111.4 GOPs/s
without; 17.52 frames/s at 28nm and 292.14 frames/s at 15nm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AnalyticModel, NeurocubeConfig, RunReport
from repro.experiments.charts import BarChart
from repro.experiments.registry import register
from repro.nn import models

#: Paper-reported values for the comparison record.
PAPER_GOPS_DUPLICATE = 132.4
PAPER_GOPS_NO_DUPLICATE = 111.4
PAPER_FPS = {"28nm": 17.52, "15nm": 292.14}


@dataclass
class InferenceResult:
    """Both layout strategies at both nodes."""

    duplicate: RunReport
    no_duplicate: RunReport
    report_28nm: RunReport

    @property
    def throughput_ratio(self) -> float:
        """no-duplicate / duplicate throughput (paper: 111.4/132.4)."""
        return (self.no_duplicate.throughput_gops
                / self.duplicate.throughput_gops)

    @property
    def node_speedup(self) -> float:
        """15nm-over-28nm frames/s ratio (paper: 292.14/17.52 = 16.7)."""
        return (self.duplicate.frames_per_second
                / self.report_28nm.frames_per_second)

    def throughput_chart(self) -> str:
        """The Fig. 12(c) panel: per-layer GOPs/s, both strategies."""
        chart = BarChart(title="Fig. 12(c) — throughput per layer",
                         unit="GOPs/s", width=36,
                         categories=[layer.name for layer in
                                     self.duplicate.layers])
        f_clk = self.duplicate.f_clk_hz
        chart.add_series("duplicate", [layer.throughput_gops(f_clk)
                                       for layer in self.duplicate.layers])
        chart.add_series("no dup", [layer.throughput_gops(f_clk)
                                    for layer in self.no_duplicate.layers])
        return chart.render()

    def to_table(self) -> str:
        lines = ["Fig. 12 — scene-labeling inference",
                 "", "(with duplication)", self.duplicate.to_table(),
                 "", "(without duplication)", self.no_duplicate.to_table(),
                 "", self.throughput_chart(),
                 "",
                 f"duplicate:     {self.duplicate.throughput_gops:8.1f} "
                 f"GOPs/s   (paper {PAPER_GOPS_DUPLICATE})",
                 f"no duplicate:  {self.no_duplicate.throughput_gops:8.1f} "
                 f"GOPs/s   (paper {PAPER_GOPS_NO_DUPLICATE})",
                 f"frames/s 15nm: {self.duplicate.frames_per_second:8.1f}"
                 f"            (paper {PAPER_FPS['15nm']})",
                 f"frames/s 28nm: "
                 f"{self.report_28nm.frames_per_second:8.2f}"
                 f"            (paper {PAPER_FPS['28nm']})"]
        return "\n".join(lines)


@register("fig12", "Scene-labeling inference: ops, cycles, throughput, "
                   "memory (duplicate vs no-duplicate)")
def run(height: int = 240, width: int = 320) -> InferenceResult:
    """Evaluate the scene-labeling network at both nodes and layouts."""
    net = models.scene_labeling_convnn(height=height, width=width,
                                       qformat=None)
    model_15 = AnalyticModel(NeurocubeConfig.hmc_15nm())
    model_28 = AnalyticModel(NeurocubeConfig.hmc_28nm())
    return InferenceResult(
        duplicate=model_15.evaluate_network(net, duplicate=True),
        no_duplicate=model_15.evaluate_network(net, duplicate=False),
        report_28nm=model_28.evaluate_network(net, duplicate=True))
