"""Fig. 1 — required memory vs input size vs on-chip memory capacity.

The paper motivates off-chip (3D DRAM) capacity by plotting the memory a
scene-labeling ConvNN needs at growing input sizes, and an MNIST MLP,
against what 1 mm^2 of on-chip SRAM [11] or eDRAM [12] can hold.  The
reproduction computes the network footprints (16-bit states + weights)
from the compiler's layouts and compares against the published densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import NeurocubeConfig, compile_inference
from repro.experiments.registry import register
from repro.nn import models

#: On-chip memory density, bytes per mm^2.  [11] is a 14nm 84 Mb SRAM
#: (~14.5 Mb/mm^2); [12] is a 22nm 1 Gb eDRAM (~17.5 Mb/mm^2).
SRAM_BYTES_PER_MM2 = 14.5e6 / 8
EDRAM_BYTES_PER_MM2 = 17.5e6 / 8

#: Input sizes swept (square-ish, paper uses growing scene sizes).
IMAGE_SIZES = ((64, 64), (128, 128), (240, 320), (480, 640), (960, 1280))


@dataclass
class MemoryCapacityResult:
    """Per-size footprints vs the 1 mm^2 on-chip capacities."""

    rows: list[dict] = field(default_factory=list)
    sram_capacity_bytes: float = SRAM_BYTES_PER_MM2
    edram_capacity_bytes: float = EDRAM_BYTES_PER_MM2

    @property
    def largest_onchip_size(self) -> tuple[int, int] | None:
        """Largest swept input that still fits 1 mm^2 of eDRAM."""
        best = None
        for row in self.rows:
            if (row["network"] == "scene_labeling"
                    and row["total_bytes"] <= self.edram_capacity_bytes):
                best = (row["height"], row["width"])
        return best

    def to_table(self) -> str:
        header = (f"{'network':<16}{'input':<12}{'states MB':>11}"
                  f"{'weights MB':>12}{'total MB':>10}{'fits eDRAM':>12}")
        lines = ["Fig. 1 — required memory vs 1 mm^2 on-chip capacity",
                 f"SRAM [11]: {self.sram_capacity_bytes / 1e6:.2f} MB/mm^2,"
                 f" eDRAM [12]: "
                 f"{self.edram_capacity_bytes / 1e6:.2f} MB/mm^2",
                 header, "-" * len(header)]
        for row in self.rows:
            fits = row["total_bytes"] <= self.edram_capacity_bytes
            lines.append(
                f"{row['network']:<16}"
                f"{str(row['height']) + 'x' + str(row['width']):<12}"
                f"{row['state_bytes'] / 1e6:>11.2f}"
                f"{row['weight_bytes'] / 1e6:>12.2f}"
                f"{row['total_bytes'] / 1e6:>10.2f}"
                f"{'yes' if fits else 'no':>12}")
        return "\n".join(lines)


@register("fig1", "Required memory for scene labeling and MNIST vs "
                  "on-chip SRAM/eDRAM capacity")
def run(image_sizes=IMAGE_SIZES) -> MemoryCapacityResult:
    """Compute network memory footprints across input sizes."""
    config = NeurocubeConfig.hmc_15nm()
    result = MemoryCapacityResult()
    for height, width in image_sizes:
        net = models.scene_labeling_convnn(height=height, width=width,
                                           qformat=None)
        program = compile_inference(net, config, duplicate=False)
        result.rows.append({
            "network": "scene_labeling", "height": height, "width": width,
            "state_bytes": program.state_bytes,
            "weight_bytes": program.weight_bytes,
            "total_bytes": program.state_bytes + program.weight_bytes,
        })
    mlp = models.mnist_mlp(qformat=None)
    program = compile_inference(mlp, config, duplicate=False)
    result.rows.append({
        "network": "mnist_mlp", "height": 28, "width": 28,
        "state_bytes": program.state_bytes,
        "weight_bytes": program.weight_bytes,
        "total_bytes": program.state_bytes + program.weight_bytes,
    })
    return result
