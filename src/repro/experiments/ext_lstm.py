"""Extension experiment: LSTM on the Neurocube (paper §VI).

The paper asserts that "LSTM ... can be realized by updating the LUT for
each layer during programming" without simulating it.  This experiment
does the mapping: an LSTM compiles to four fully connected gate passes
per timestep — each programmed with its own activation LUT — plus an
element-wise cell-update pass, and the analytic model prices the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import AnalyticModel, NeurocubeConfig, RunReport
from repro.core.compiler import compile_inference
from repro.core.layerdesc import LayerDescriptor
from repro.experiments.registry import register
from repro.nn import models


@dataclass
class LstmMappingResult:
    """The compiled gate schedule and its modelled performance."""

    descriptors: list[LayerDescriptor] = field(default_factory=list)
    report: RunReport | None = None

    @property
    def gate_luts(self) -> dict[str, str]:
        """Activation LUT programmed per gate pass."""
        return {d.name.split("/")[-1]: d.activation
                for d in self.descriptors}

    def to_table(self) -> str:
        lines = ["Extension — LSTM mapping (per-gate LUT programming, "
                 "§VI)",
                 f"{'pass':<22}{'LUT':<10}{'passes':>8}{'conn':>8}"
                 f"{'MACs':>12}"]
        lines.append("-" * len(lines[-1]))
        for desc in self.descriptors:
            lines.append(f"{desc.name:<22}{desc.activation:<10}"
                         f"{desc.passes:>8}{desc.connections:>8}"
                         f"{desc.macs:>12,}")
        if self.report is not None:
            lines.append(
                f"modelled: {self.report.throughput_gops:.1f} GOPs/s, "
                f"{1e6 * self.report.seconds:.1f} us per sequence")
        return "\n".join(lines)


@register("ext_lstm", "LSTM mapped via per-gate LUT updates (paper §VI)")
def run(inputs: int = 256, hidden_units: int = 512,
        steps: int = 8) -> LstmMappingResult:
    """Compile and model an LSTM layer."""
    config = NeurocubeConfig.hmc_15nm()
    net = models.small_lstm(inputs=inputs, hidden_units=hidden_units,
                            steps=steps, qformat=None)
    program = compile_inference(net, config, duplicate=True)
    report = AnalyticModel(config).evaluate_program(program)
    return LstmMappingResult(descriptors=list(program.descriptors),
                             report=report)
