"""Regenerable paper-vs-measured summary report.

``neurocube-experiments report`` runs the headline experiments and
renders the summary table of EXPERIMENTS.md from live measurements, so
the record in the repository can always be re-derived from the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import (
    fig12_inference,
    fig13_training,
    fig17_thermal,
    table2_hardware,
    table3_comparison,
)
from repro.hw.platforms import PAPER_NEUROCUBE


@dataclass
class ReportRow:
    """One paper-vs-measured comparison line."""

    quantity: str
    paper: str
    measured: str

    def render(self, widths: tuple[int, int, int]) -> str:
        return (f"| {self.quantity:<{widths[0]}} "
                f"| {self.paper:>{widths[1]}} "
                f"| {self.measured:>{widths[2]}} |")


@dataclass
class MeasuredReport:
    """The full regenerated summary."""

    rows: list[ReportRow] = field(default_factory=list)

    def to_table(self) -> str:
        widths = (
            max(len(r.quantity) for r in self.rows),
            max(max(len(r.paper) for r in self.rows), 5),
            max(max(len(r.measured) for r in self.rows), 8),
        )
        header = ReportRow("Quantity", "Paper", "Measured")
        divider = (f"|{'-' * (widths[0] + 2)}|{'-' * (widths[1] + 2)}"
                   f"|{'-' * (widths[2] + 2)}|")
        lines = ["# Paper vs measured (regenerated)",
                 "", header.render(widths), divider]
        lines.extend(row.render(widths) for row in self.rows)
        return "\n".join(lines)


def generate() -> MeasuredReport:
    """Run the headline experiments and build the summary."""
    report = MeasuredReport()
    inference = fig12_inference.run()
    report.rows.append(ReportRow(
        "Inference GOPs/s (duplication, 15nm)", "132.4",
        f"{inference.duplicate.throughput_gops:.1f}"))
    report.rows.append(ReportRow(
        "Inference GOPs/s (no duplication)", "111.4",
        f"{inference.no_duplicate.throughput_gops:.1f}"))
    report.rows.append(ReportRow(
        "Inference frames/s (15nm)", "292.14",
        f"{inference.duplicate.frames_per_second:.1f}"))
    report.rows.append(ReportRow(
        "Inference frames/s (28nm)", "17.52",
        f"{inference.report_28nm.frames_per_second:.2f}"))

    training = fig13_training.run()
    report.rows.append(ReportRow(
        "Training GOPs/s (64x64, duplication)", "126.8",
        f"{training.report_15nm.throughput_gops:.1f}"))
    report.rows.append(ReportRow(
        "Training duplication overhead", "48%",
        f"{100 * training.report_15nm.memory_overhead:.0f}%"))

    hardware = table2_hardware.run()
    for node in ("28nm", "15nm"):
        measured = hardware.nodes[node]
        report.rows.append(ReportRow(
            f"Compute power {node} (W)",
            f"{measured.expected['compute_power_w']:.3f}",
            f"{measured.compute_power_w:.3f}"))

    comparison = table3_comparison.run()
    for node in ("28nm", "15nm"):
        report.rows.append(ReportRow(
            f"Efficiency {node} (GOPs/s/W)",
            f"{PAPER_NEUROCUBE[node]['efficiency']:.2f}",
            f"{comparison.efficiency(node):.2f}"))
    report.rows.append(ReportRow(
        "Efficiency gain over best GPU", "~4x",
        f"{comparison.gpu_efficiency_gain:.1f}x"))

    thermal = fig17_thermal.run()
    report.rows.append(ReportRow(
        "Max logic-die temp 15nm (K)", "349",
        f"{thermal.result_15nm.logic_max_k:.1f}"))
    report.rows.append(ReportRow(
        "Max DRAM temp 15nm (K)", "344",
        f"{thermal.result_15nm.dram_max_k:.1f}"))
    return report
