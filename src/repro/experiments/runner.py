"""CLI: run paper experiments by id.

Usage::

    neurocube-experiments list
    neurocube-experiments run fig12 [fig13 ...]
    neurocube-experiments run all
    neurocube-experiments run fig12 --json   # machine-readable output
    neurocube-experiments run fig15a --trace --trace-dir out/

With ``--trace``, each experiment runs inside an ambient
:class:`repro.obs.TraceSession`: every cycle-simulator descriptor run it
performs is traced, and a ``manifest_<id>.json`` (plus a
``trace_<id>.json`` when any runs were captured) lands in the trace
directory.  Experiments that never touch the cycle simulator still get a
manifest recording that zero runs were captured.

With ``--faults SPEC`` (``key=value,...`` pairs of
:class:`repro.faults.FaultConfig` fields, e.g.
``seed=3,dram_bitflip_rate=1e-4,ecc=secded``), each experiment runs
inside an ambient :class:`repro.faults.FaultSession`: every cycle-
simulated descriptor run injects deterministic faults and a summary of
the fault counters is printed to stderr.  ``--checkpoint-every N``
(with ``--checkpoint-dir``) snapshots every pass periodically, and
``--resume-from DIR`` resumes each pass from its newest snapshot —
together they let a long sweep survive a crash and continue
bit-identically.

With ``--memo-dir DIR``, each experiment runs inside an ambient
:class:`repro.memo.MemoSession`: memoized timing-pass outcomes are
loaded from and stored to a persistent store under ``DIR``, so a rerun
replays timing from disk bit-identically.  Counters are printed to
stderr per experiment (``[memo] ...``) and, with ``--json``, folded
into the top-level ``__memo__`` key.  ``--stream N`` streams N frames
through streaming-capable experiments (``ext_stream``): timing is
simulated once per distinct layer shape, then N frames replay it
through the functional fast path.  ``--cubes N`` shards multi-cube-
capable experiments (``ext_shard``) across N cubes, one process per
cube with conservative link-time sync — bit-identical to the same
shards run serially (the experiment asserts it).

With ``--heartbeat N``, each experiment runs inside an ambient
:class:`repro.obs.LiveTelemetry` session: host phases (compile /
simulate / memo-I/O / checkpoint / trace-export) are timed, a heartbeat
snapshot is taken every N simulated cycles, and a phase summary is
printed to stderr.  Combined with ``--trace``, a
``heartbeats_<id>.jsonl`` and an OpenMetrics ``metrics_<id>.txt`` land
next to the trace, and the manifest embeds the phase breakdown.  With
``--registry DIR`` (requires ``--trace``), each experiment's manifest
is appended to the cross-run performance registry — browse it with
``tools/ncbench.py timeline``.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import pathlib
import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="neurocube-experiments",
        description="Regenerate the Neurocube paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments by id")
    run_parser.add_argument(
        "ids", nargs="+",
        help="experiment ids (fig1, fig12, table3, ...) or 'all'")
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of tables")
    run_parser.add_argument(
        "--trace", action="store_true",
        help="trace cycle-simulator runs; writes per-experiment "
             "trace_<id>.json and manifest_<id>.json")
    run_parser.add_argument(
        "--validate", action="store_true",
        help="statically verify every compiled PNG program "
             "(repro.analysis.nccheck) and every multi-cube shard plan "
             "(repro.analysis.shardcheck, NC301-NC306) before "
             "simulation; a malformed plan fails fast with a "
             "PlanCheckError instead of deadlocking mid-run")
    run_parser.add_argument(
        "--trace-dir", default=".",
        help="directory for --trace output files (default: cwd)")
    run_parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject deterministic faults into every cycle-simulated "
             "run; SPEC is key=value pairs of FaultConfig fields, e.g. "
             "'seed=3,dram_bitflip_rate=1e-4,ecc=secded'")
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="snapshot every pass every N simulated cycles (0: off)")
    run_parser.add_argument(
        "--checkpoint-dir", default="checkpoints",
        help="directory for checkpoint snapshots (default: checkpoints)")
    run_parser.add_argument(
        "--resume-from", default=None, metavar="DIR",
        help="resume each pass from its newest snapshot in DIR "
             "(passes without one start from cycle 0)")
    run_parser.add_argument(
        "--memo-dir", default=None, metavar="DIR",
        help="persistent memo store for timing-pass outcomes; memoized "
             "passes are loaded from and stored to DIR, so a rerun "
             "replays timing from disk (hit/miss counters go to stderr "
             "and, with --json, the top-level '__memo__' key)")
    run_parser.add_argument(
        "--memo-max-bytes", type=int, default=None, metavar="N",
        help="size bound for --memo-dir; least-recently-used entries "
             "are evicted past N bytes (default: unbounded)")
    run_parser.add_argument(
        "--stream", type=int, default=None, metavar="N",
        help="stream N frames in streaming-capable experiments "
             "(ext_stream): timing is simulated once per distinct layer "
             "shape, then N frames replay it through the functional "
             "fast path")
    run_parser.add_argument(
        "--serve-jobs", type=int, default=None, metavar="N",
        help="serve N mixed jobs in service-capable experiments "
             "(ext_serve): inference/streaming/training round-robin "
             "through the supervised worker pool")
    run_parser.add_argument(
        "--cubes", type=int, default=None, metavar="N",
        help="shard multi-cube-capable experiments (ext_shard) across "
             "N cubes: one process per cube with conservative link-time "
             "sync, bit-identical to the same shards run serially")
    run_parser.add_argument(
        "--heartbeat", type=int, default=0, metavar="N",
        help="live telemetry: time host phases and snapshot metrics "
             "every N simulated cycles (0: off); with --trace, writes "
             "heartbeats_<id>.jsonl and OpenMetrics metrics_<id>.txt "
             "next to the trace")
    run_parser.add_argument(
        "--registry", default=None, metavar="DIR",
        help="append each experiment's manifest to the cross-run "
             "performance registry under DIR (requires --trace)")
    sub.add_parser(
        "report",
        help="regenerate the paper-vs-measured summary (EXPERIMENTS.md "
             "headline table)")
    return parser


def serialize(value):
    """Recursively turn a result object into JSON-compatible data.

    Dataclasses become dicts, enums their values, numpy arrays a
    shape/max summary (a temperature field does not belong in a JSON
    report), and unknown objects their repr.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: serialize(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): serialize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [serialize(v) for v in value]
    if hasattr(value, "shape") and hasattr(value, "max"):
        return {"shape": list(value.shape), "max": float(value.max()),
                "min": float(value.min())}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp in sorted(EXPERIMENTS.values(), key=lambda e: e.exp_id):
            print(f"{exp.exp_id:<10} {exp.title}")
        return 0
    if args.command == "report":
        from repro.experiments.report import generate

        print(generate().to_table())
        return 0
    ids = (sorted(EXPERIMENTS) if args.ids == ["all"] else args.ids)
    as_json = getattr(args, "json", False)
    tracing = getattr(args, "trace", False)
    if getattr(args, "validate", False):
        from repro.core.compiler import set_default_validate

        set_default_validate(True)
    faults = None
    fault_spec = getattr(args, "faults", None)
    if fault_spec is not None:
        from repro.faults import FaultConfig

        faults = FaultConfig.from_spec(fault_spec)
    checkpoint = _checkpoint_spec(args)
    memo = _memo_settings(args)
    stream = getattr(args, "stream", None)
    if stream is not None:
        from repro.experiments import ext_stream

        ext_stream.set_frame_count(stream)
    serve_jobs = getattr(args, "serve_jobs", None)
    if serve_jobs is not None:
        from repro.experiments import ext_serve

        ext_serve.set_job_count(serve_jobs)
    cubes = getattr(args, "cubes", None)
    if cubes is not None:
        from repro.experiments import ext_shard

        ext_shard.set_cube_count(cubes)
    heartbeat = getattr(args, "heartbeat", 0)
    registry = getattr(args, "registry", None)
    if registry is not None and not tracing:
        print("neurocube-experiments: --registry needs --trace (the "
              "registry records run manifests)", file=sys.stderr)
        return 2
    memo_totals = None
    collected = {}
    try:
        for exp_id in ids:
            experiment = get_experiment(exp_id)
            if tracing:
                result, memo_stats = _run_traced(
                    experiment, args.trace_dir, faults=faults,
                    checkpoint=checkpoint, memo=memo,
                    heartbeat=heartbeat, registry=registry)
            else:
                result, memo_stats = _run_live(
                    experiment, faults, checkpoint, memo=memo,
                    heartbeat=heartbeat)
            if memo_stats is not None:
                if memo_totals is None:
                    from repro.memo import MemoStats

                    memo_totals = MemoStats()
                memo_totals.merge(memo_stats)
            if as_json:
                collected[exp_id] = serialize(result)
            else:
                print(f"=== {experiment.exp_id}: {experiment.title} ===")
                print(result.to_table())
                print()
    finally:
        if stream is not None:
            from repro.experiments import ext_stream

            ext_stream.set_frame_count(None)
        if serve_jobs is not None:
            from repro.experiments import ext_serve

            ext_serve.set_job_count(None)
        if cubes is not None:
            from repro.experiments import ext_shard

            ext_shard.set_cube_count(None)
    if as_json:
        if memo_totals is not None:
            collected["__memo__"] = memo_totals.as_dict()
        print(json.dumps(collected, indent=2))
    return 0


def _memo_settings(args) -> tuple[str, int | None] | None:
    """(directory, max_bytes) from the CLI flags, or None."""
    memo_dir = getattr(args, "memo_dir", None)
    if memo_dir is None:
        return None
    return (memo_dir, getattr(args, "memo_max_bytes", None))


def _checkpoint_spec(args):
    """Build a CheckpointSpec from the CLI flags, or None."""
    every = getattr(args, "checkpoint_every", 0)
    resume_from = getattr(args, "resume_from", None)
    if not every and resume_from is None:
        return None
    from repro.faults import CheckpointSpec

    directory = (resume_from if resume_from is not None
                 else getattr(args, "checkpoint_dir", "checkpoints"))
    return CheckpointSpec(directory=directory, every=every,
                          resume=resume_from is not None)


def _fault_summary(exp_id: str, session) -> None:
    """Print a fault session's folded counters to stderr."""
    stats = session.total_stats()
    nonzero = {name: value for name, value in stats.as_dict().items()
               if value}
    degraded = sum(len(run.degraded) for run in session.runs)
    print(f"[faults] {exp_id}: {len(session.runs)} runs, "
          f"counters {nonzero or '{}'}, {degraded} degraded results",
          file=sys.stderr)


def _memo_summary(exp_id: str, session) -> None:
    """Print a memo session's folded counters to stderr."""
    stats = session.total_stats()
    print(f"[memo] {exp_id}: {stats.format()}", file=sys.stderr)


def _run_sessioned(experiment, faults, checkpoint, memo=None):
    """Run one experiment inside the ambient sessions.

    Returns ``(result, memo_stats)`` — the second element is the memo
    session's folded counters, or None when ``--memo-dir`` is off.
    """
    import contextlib

    from repro.faults import CheckpointSession, FaultSession

    memo_stats = None
    with contextlib.ExitStack() as stack:
        fault_session = None
        if faults is not None:
            fault_session = stack.enter_context(FaultSession(faults))
        if checkpoint is not None:
            stack.enter_context(CheckpointSession(checkpoint))
        if memo is not None:
            from repro.memo import MemoSession

            directory, max_bytes = memo
            memo_session = stack.enter_context(
                MemoSession(directory, max_bytes=max_bytes))
        result = experiment.run()
        if fault_session is not None:
            _fault_summary(experiment.exp_id, fault_session)
        if memo is not None:
            _memo_summary(experiment.exp_id, memo_session)
            memo_stats = memo_session.total_stats()
    return result, memo_stats


def _live_summary(exp_id: str, live) -> None:
    """Print a live session's phase/heartbeat summary to stderr."""
    phases = ", ".join(f"{name}={seconds:.3f}s" for name, seconds
                       in live.phase_breakdown().items())
    print(f"[live] {exp_id}: {live.cycles} cycles, "
          f"{len(live.heartbeats)} heartbeat(s), "
          f"phases {phases or 'none'}", file=sys.stderr)


def _run_live(experiment, faults, checkpoint, memo=None, heartbeat=0):
    """Untraced run, optionally inside a live-telemetry session."""
    if not heartbeat:
        return _run_sessioned(experiment, faults, checkpoint, memo=memo)
    from repro.obs import LiveTelemetry

    with LiveTelemetry(heartbeat_cycles=heartbeat) as live:
        result, memo_stats = _run_sessioned(experiment, faults,
                                            checkpoint, memo=memo)
    _live_summary(experiment.exp_id, live)
    return result, memo_stats


def _run_traced(experiment, trace_dir: str, faults=None, checkpoint=None,
                memo=None, heartbeat=0, registry=None):
    """Run one experiment inside a trace session; write its artifacts."""
    import contextlib

    from repro.obs import (
        LiveTelemetry,
        TraceSession,
        manifest_from_session,
        write_manifest,
        write_trace,
    )

    out_dir = pathlib.Path(trace_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    live = None
    if heartbeat:
        live = LiveTelemetry(
            heartbeat_cycles=heartbeat,
            heartbeat_path=str(
                out_dir / f"heartbeats_{experiment.exp_id}.jsonl"))
    with contextlib.ExitStack() as stack:
        if live is not None:
            stack.enter_context(live)
        session = stack.enter_context(TraceSession())
        result, memo_stats = _run_sessioned(experiment, faults,
                                            checkpoint, memo=memo)
    if session.runs:
        trace_path = out_dir / f"trace_{experiment.exp_id}.json"
        with (live.phase("trace_export") if live is not None
              else contextlib.nullcontext()):
            write_trace(session.merged_trace(), str(trace_path))
        print(f"[trace] wrote {trace_path} "
              f"({session.total_cycles} cycles, "
              f"{len(session.runs)} runs)", file=sys.stderr)
    manifest = manifest_from_session(
        experiment.exp_id, session,
        phases=live.phase_breakdown() if live is not None else None)
    manifest_path = out_dir / f"manifest_{experiment.exp_id}.json"
    write_manifest(manifest, str(manifest_path))
    print(f"[trace] wrote {manifest_path}", file=sys.stderr)
    if live is not None:
        metrics_path = out_dir / f"metrics_{experiment.exp_id}.txt"
        live.write_openmetrics(str(metrics_path))
        _live_summary(experiment.exp_id, live)
    if registry is not None:
        from repro.obs import RunRegistry

        record_path = RunRegistry(registry).record_run(
            manifest, attribution=manifest.get("attribution") or (),
            label=experiment.exp_id)
        print(f"[registry] recorded {record_path}", file=sys.stderr)
    return result, memo_stats


if __name__ == "__main__":
    sys.exit(main())
