"""Extension experiment: cycle-accurate multi-cube sharded execution.

Not a paper figure — the executable counterpart of the §IX scaling
model.  One conv+pool+fc workload runs three ways:

* single-cube reference (:meth:`NeurocubeSimulator.run_network`),
* sharded **serially** (:class:`repro.core.shard.ShardedSimulator`
  with ``workers=1`` — every cube in one process), and
* sharded **in parallel** (one process per cube).

The experiment asserts the bit-identity contract in-line — outputs,
total cycles and per-layer stats must match between the serial and
parallel sharded runs, and the sharded *outputs* must match the
single-cube reference — and cross-validates the measured inter-cube
communication cycles against the analytic
:class:`repro.core.MultiCubeModel` prediction.

The runner's ``--cubes N`` flag overrides the cube count via
:func:`set_cube_count` (the CI benchmark job runs ``--cubes 2`` and
asserts ``bit_identical`` from the JSON output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.core import (
    MultiCubeConfig,
    MultiCubeModel,
    NeurocubeConfig,
    NeurocubeSimulator,
)
from repro.core.shard import ShardedSimulator
from repro.errors import ConfigurationError
from repro.experiments.registry import register
from repro.nn.activations import Sigmoid, Tanh

#: Cubes used when no ``--cubes N`` override is active.
DEFAULT_CUBES = 2

#: Deterministic seeds: network parameters and the input sample.
_NET_SEED = 23
_INPUT_SEED = 23

_cube_count: int | None = None


def set_cube_count(cubes: int | None) -> None:
    """Override the cube count (the runner's ``--cubes N``).

    None restores the default.
    """
    if cubes is not None and cubes < 1:
        raise ConfigurationError(
            f"cube count must be >= 1, got {cubes}")
    global _cube_count
    _cube_count = cubes


def shard_workload() -> nn.Network:
    """The sharded workload: a conv front end over an fc classifier.

    Sized so every layer splits cleanly across up to 4 cubes (the conv
    output keeps >= 4 rows per cube against the 4x4 vault grid).
    """
    layers = [
        nn.Conv2D(2, 3, activation=Tanh(), name="conv"),
        nn.MaxPool2D(2, name="pool"),
        nn.Flatten(name="flatten"),
        nn.Dense(32, activation=Sigmoid(), name="classify"),
    ]
    return nn.Network(layers, input_shape=(1, 34, 20),
                      name="shard_convfc", seed=_NET_SEED)


def input_sample() -> np.ndarray:
    """One deterministic input frame."""
    rng = np.random.default_rng(_INPUT_SEED)
    return rng.uniform(-1.0, 1.0, (1, 34, 20))


@dataclass
class ShardLayerRow:
    """One layer of the sharded run, for the table."""

    name: str
    kind: str
    compute_cycles: int
    exchange_cycles: int


@dataclass
class ShardReport:
    """Serial-vs-parallel sharded comparison plus analytic cross-check."""

    network_name: str
    n_cubes: int
    single_cube_cycles: float
    sharded_cycles: float
    comm_cycles: int
    analytic_comm_cycles: float
    bit_identical: bool
    outputs_match_reference: bool
    statically_verified: bool = False
    link_occupancy: list = field(default_factory=list)
    layers: list = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Simulated-cycle speedup over the single-cube run."""
        return (self.single_cube_cycles / self.sharded_cycles
                if self.sharded_cycles else 0.0)

    def to_table(self) -> str:
        header = (f"{'layer':<22}{'kind':<6}{'compute c':>12}"
                  f"{'exchange c':>12}")
        lines = [
            f"{self.network_name} sharded across {self.n_cubes} cube(s)",
            header, "-" * len(header)]
        for row in self.layers:
            lines.append(f"{row.name:<22}{row.kind:<6}"
                         f"{row.compute_cycles:>12}"
                         f"{row.exchange_cycles:>12}")
        occupancy = ", ".join(
            f"cube{cube}={100 * value:.1f}%"
            for cube, value in enumerate(self.link_occupancy))
        lines.append(
            f"cycles {self.sharded_cycles:.0f} vs single-cube "
            f"{self.single_cube_cycles:.0f} ({self.speedup:.2f}x), "
            f"comm {self.comm_cycles} measured vs "
            f"{self.analytic_comm_cycles:.0f} analytic")
        lines.append(
            f"serial == parallel bit-identical: {self.bit_identical}; "
            f"outputs match single-cube reference: "
            f"{self.outputs_match_reference}; shard plan statically "
            f"verified (NC3xx): {self.statically_verified}; link "
            f"occupancy {occupancy or 'n/a'}")
        return "\n".join(lines)


@register("ext_shard", "Multi-cube sharded execution (serial-vs-parallel "
                       "bit-identity + analytic comm cross-check)")
def run(cubes: int | None = None) -> ShardReport:
    """Run the sharded workload serial and parallel; compare everything.

    Args:
        cubes: cube count; None uses the ``--cubes N`` override when
            active, else :data:`DEFAULT_CUBES`.
    """
    if cubes is None:
        cubes = _cube_count if _cube_count is not None else DEFAULT_CUBES
    config = NeurocubeConfig.hmc_15nm()
    cluster = MultiCubeConfig(cube=config, n_cubes=cubes)
    network = shard_workload()
    x = input_sample()

    reference_out, reference = NeurocubeSimulator(config).run_network(
        network, x)
    serial_out, serial = ShardedSimulator(
        cluster, workers=1).run_network(network, x)
    parallel_out, parallel = ShardedSimulator(
        cluster, workers=cubes).run_network(network, x)

    bit_identical = (
        np.array_equal(serial_out, parallel_out)
        and serial.total_cycles == parallel.total_cycles
        and serial.report.layers == parallel.report.layers
        and [e.cycles for e in serial.exchanges]
            == [e.cycles for e in parallel.exchanges])

    # The static NC3xx sweep over the very plan the runs executed —
    # the experiment-level witness that every exchange, byte count and
    # shard geometry was verified before the cycle engine ran.
    from repro.analysis.shardcheck import verify_shard_plan

    statically_verified = not verify_shard_plan(serial.plan, cluster)

    # The analytic model charges comm once per descriptor after the
    # first — the same exchange schedule the executor runs.
    analytic = MultiCubeModel(cluster).evaluate_network(network)
    analytic_comm = sum(layer.comm_cycles
                        for layer in analytic.layers[1:])

    exchange_by_layer = {
        outcome.exchange.layer: outcome.cycles
        for outcome in serial.exchanges}
    rows = [
        ShardLayerRow(
            name=entry.name, kind=entry.kind,
            compute_cycles=int(stats.cycles
                               - exchange_by_layer.get(entry.name, 0)),
            exchange_cycles=exchange_by_layer.get(entry.name, 0))
        for entry, stats in zip(serial.plan.layers, serial.report.layers,
                                strict=True)]
    return ShardReport(
        network_name=network.name, n_cubes=cubes,
        single_cube_cycles=reference.total_cycles,
        sharded_cycles=serial.total_cycles,
        comm_cycles=serial.comm_cycles,
        analytic_comm_cycles=analytic_comm,
        bit_identical=bool(bit_identical),
        outputs_match_reference=bool(
            np.array_equal(serial_out, reference_out)),
        statically_verified=bool(statically_verified),
        link_occupancy=[serial.link_occupancy(cube)
                        for cube in range(cubes)],
        layers=rows)
