"""Fig. 15 — memory-channel concurrency and NoC topology studies.

**(a) HMC-Int vs DDR3.**  DDR3's per-channel peak bandwidth (12.8 GB/s)
beats HMC-Int's (10 GB/s), but DDR3 has only two channels: two injection
points must feed sixteen PEs across the mesh and the NoC becomes the
bottleneck.  The experiment also sweeps "same aggregate bandwidth, more
slower channels" to isolate the concurrency effect the paper calls out.

**(b) Mesh vs fully connected NoC.**  A fully connected NoC (Fig. 6b)
removes the lateral-traffic penalty of the no-duplication layouts at the
cost of 17 channels per router.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core import AnalyticModel, NeurocubeConfig
from repro.experiments.registry import register
from repro.memory.specs import DDR3, HMC_INT
from repro.nn import models


@dataclass
class ChannelPoint:
    """One memory-configuration sample."""

    label: str
    channels: int
    peak_bandwidth_total: float
    throughput_gops: float
    bound: str


@dataclass
class TopologyPoint:
    """One NoC-topology sample."""

    topology: str
    workload: str
    duplicate: bool
    throughput_gops: float
    channels_per_router: int


@dataclass
class MemoryNocResult:
    """Fig. 15(a) channel study + Fig. 15(b) topology study."""

    channel_points: list[ChannelPoint] = field(default_factory=list)
    topology_points: list[TopologyPoint] = field(default_factory=list)

    @property
    def hmc(self) -> ChannelPoint:
        return next(p for p in self.channel_points if p.label == "HMC-Int")

    @property
    def ddr3(self) -> ChannelPoint:
        return next(p for p in self.channel_points if p.label == "DDR3")

    def to_table(self) -> str:
        lines = ["Fig. 15(a) — memory technology / channel count",
                 f"{'config':<22}{'ch':>4}{'agg GB/s':>10}{'GOPs/s':>9}"
                 f"{'bound':>9}"]
        lines.append("-" * len(lines[-1]))
        for p in self.channel_points:
            lines.append(f"{p.label:<22}{p.channels:>4}"
                         f"{p.peak_bandwidth_total / 1e9:>10.1f}"
                         f"{p.throughput_gops:>9.1f}{p.bound:>9}")
        lines.append("")
        lines.append("Fig. 15(b) — mesh vs fully connected NoC")
        header = (f"{'topology':<17}{'workload':<12}{'dup':<6}"
                  f"{'GOPs/s':>9}{'chan/router':>13}")
        lines.append(header)
        lines.append("-" * len(header))
        for p in self.topology_points:
            lines.append(f"{p.topology:<17}{p.workload:<12}"
                         f"{str(p.duplicate):<6}{p.throughput_gops:>9.1f}"
                         f"{p.channels_per_router:>13}")
        return "\n".join(lines)


def _equal_bandwidth_spec(channels: int):
    """An HMC-like technology whose aggregate bandwidth matches DDR3's
    two channels (25.6 GB/s) split over ``channels`` slower channels."""
    total = DDR3.peak_bandwidth * DDR3.max_channels
    return dataclasses.replace(
        HMC_INT, name=f"EqBW-{channels}ch", max_channels=channels,
        peak_bandwidth=total / channels)


@register("fig15", "HMC vs DDR3 channel concurrency; mesh vs fully "
                   "connected NoC")
def run() -> MemoryNocResult:
    """Run the channel and topology studies on conv and FC workloads."""
    result = MemoryNocResult()
    conv = models.single_conv_layer(240, 320, 7, qformat=None)
    fc = models.fully_connected_classifier(4096, 1024, qformat=None)

    # (a) technology comparison on the conv layer, duplication on.
    for label, config in (
            ("HMC-Int", NeurocubeConfig.hmc_15nm()),
            ("DDR3", NeurocubeConfig.ddr3())):
        report = AnalyticModel(config).evaluate_network(conv,
                                                        duplicate=True)
        result.channel_points.append(ChannelPoint(
            label=label, channels=config.n_channels,
            peak_bandwidth_total=(config.memory_spec.peak_bandwidth
                                  * config.n_channels),
            throughput_gops=report.throughput_gops,
            bound=report.layers[0].bound))

    # (a) continued: same aggregate bandwidth, more slower channels.
    for channels in (2, 4, 8, 16):
        spec = _equal_bandwidth_spec(channels)
        config = NeurocubeConfig(memory_spec=spec, n_channels=channels,
                                 f_pe_hz=NeurocubeConfig.hmc_15nm().f_pe_hz)
        report = AnalyticModel(config).evaluate_network(conv,
                                                        duplicate=True)
        result.channel_points.append(ChannelPoint(
            label=spec.name, channels=channels,
            peak_bandwidth_total=spec.peak_bandwidth * channels,
            throughput_gops=report.throughput_gops,
            bound=report.layers[0].bound))

    # (b) topology study: conv and FC, both layouts, both topologies.
    for topology in ("mesh", "fully_connected"):
        config = NeurocubeConfig.hmc_15nm(noc_topology=topology)
        model = AnalyticModel(config)
        per_router = 6 if topology == "mesh" else config.n_pe - 1 + 2
        for workload_name, net in (("conv7", conv), ("fc4096", fc)):
            for duplicate in (True, False):
                report = model.evaluate_network(net, duplicate=duplicate)
                result.topology_points.append(TopologyPoint(
                    topology=topology, workload=workload_name,
                    duplicate=duplicate,
                    throughput_gops=report.throughput_gops,
                    channels_per_router=per_router))
    return result
