"""Fig. 13 — training performance of the scene-labeling ConvNN (64x64).

The paper trains with a reduced 64x64 input and data duplication,
reporting 126.8 GOPs/s, a 48% duplication memory overhead, and epoch
rates of 272.52 (28nm) and 4542.14 (15nm) frames/s.  The reproduction
compiles one full training step (forward + backward-data +
backward-weight + update passes per layer) and models it at both nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AnalyticModel, NeurocubeConfig, RunReport
from repro.experiments.registry import register
from repro.nn import models

PAPER_GOPS_TRAINING = 126.8
PAPER_MEMORY_OVERHEAD = 0.48
PAPER_FPS = {"28nm": 272.52, "15nm": 4542.14}


@dataclass
class TrainingResult:
    """One modelled training step at both nodes."""

    report_15nm: RunReport
    report_28nm: RunReport
    inference_gops_15nm: float

    @property
    def training_memory_bytes(self) -> int:
        """States + weights + duplication + gradient storage.

        Training keeps a gradient the size of every state and weight
        tensor alongside the forward data.
        """
        forward = self.report_15nm
        gradients = forward.state_bytes + forward.weight_bytes
        return forward.total_bytes + gradients

    @property
    def training_vs_inference(self) -> float:
        """Training/inference throughput ratio (paper: 126.8/132.4)."""
        return self.report_15nm.throughput_gops / self.inference_gops_15nm

    def to_table(self) -> str:
        report = self.report_15nm
        lines = ["Fig. 13 — scene-labeling training (64x64, duplication)",
                 report.to_table(), "",
                 f"training throughput 15nm: "
                 f"{report.throughput_gops:8.1f} GOPs/s  "
                 f"(paper {PAPER_GOPS_TRAINING})",
                 f"epochs-frames/s 15nm:     "
                 f"{report.frames_per_second:8.1f}  "
                 f"(paper {PAPER_FPS['15nm']})",
                 f"epochs-frames/s 28nm:     "
                 f"{self.report_28nm.frames_per_second:8.1f}  "
                 f"(paper {PAPER_FPS['28nm']})",
                 f"duplication overhead:     "
                 f"{100 * report.memory_overhead:8.1f}%  "
                 f"(paper {100 * PAPER_MEMORY_OVERHEAD:.0f}%)",
                 f"training memory (incl. gradients): "
                 f"{self.training_memory_bytes / 1e6:.2f} MB"]
        return "\n".join(lines)


@register("fig13", "Scene-labeling training at 64x64 with duplication")
def run(height: int = 64, width: int = 64) -> TrainingResult:
    """Model one training step at both nodes."""
    net = models.scene_labeling_convnn(height=height, width=width,
                                       qformat=None)
    model_15 = AnalyticModel(NeurocubeConfig.hmc_15nm())
    model_28 = AnalyticModel(NeurocubeConfig.hmc_28nm())
    inference = model_15.evaluate_network(net, duplicate=True)
    return TrainingResult(
        report_15nm=model_15.evaluate_network(net, duplicate=True,
                                              training=True),
        report_28nm=model_28.evaluate_network(net, duplicate=True,
                                              training=True),
        inference_gops_15nm=inference.throughput_gops)
