"""Extension experiment: the fault-tolerant simulation service.

Not a paper figure — the serving story on top of the Neurocube
reproduction: a supervised worker pool (:mod:`repro.serve`) packs a
mixed batch of inference/streaming/training jobs, with admission
control, per-job retry on worker failure and a cross-request plan
cache.  The experiment runs a small mixed batch through an in-process
:class:`~repro.serve.service.SimulationService` and reports one row
per job (state, attempts, cycles, warm-plan flag) plus the service's
queue and plan-cache counters.

The runner's ``--serve-jobs N`` flag scales the batch via
:func:`set_job_count`: N jobs are drawn round-robin from the
inference/streaming/training mix.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.registry import register

#: Jobs in the batch when no ``--serve-jobs N`` override is active.
DEFAULT_JOBS = 3

_job_count: int | None = None


def set_job_count(jobs: int | None) -> None:
    """Override the served batch size (the runner's ``--serve-jobs N``).

    None restores the default.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(
            f"serve job count must be >= 1, got {jobs}")
    global _job_count
    _job_count = jobs


def batch_specs(count: int) -> list:
    """``count`` deterministic job specs, round-robin over workloads."""
    from repro.serve import JobSpec

    mix = (("inference", {}), ("streaming", {"frames": 2}),
           ("training", {"epochs": 3}))
    return [JobSpec(workload=mix[index % len(mix)][0], seed=index,
                    **mix[index % len(mix)][1])
            for index in range(count)]


@dataclass
class ServeReport:
    """One service pass: per-job rows plus service counters."""

    jobs: list[dict] = field(default_factory=list)
    queue: dict = field(default_factory=dict)
    plan_cache: dict | None = None

    def to_table(self) -> str:
        lines = [f"{'job':<12} {'workload':<10} {'state':<9} "
                 f"{'attempts':>8} {'cycles':>10} {'warm':>5}"]
        for job in self.jobs:
            result = job.get("result") or {}
            lines.append(
                f"{job['job_id']:<12} {job['spec']['workload']:<10} "
                f"{job['state']:<9} {job['attempts']:>8} "
                f"{result.get('cycles', 0):>10,} "
                f"{'yes' if result.get('warm_plan') else 'no':>5}")
        lines.append(f"queue: accepted={self.queue.get('accepted', 0)} "
                     f"rejected={self.queue.get('rejected', 0)}")
        if self.plan_cache is not None:
            lines.append(
                f"plan cache: hits={self.plan_cache.get('hits', 0)} "
                f"misses={self.plan_cache.get('misses', 0)}")
        return "\n".join(lines)


@register("ext_serve", "Fault-tolerant simulation service (supervised "
                       "worker pool, mixed job batch)")
def run(jobs: int | None = None) -> ServeReport:
    """Serve a mixed job batch through an in-process service.

    Args:
        jobs: batch size; None uses the ``--serve-jobs N`` override
            when active, else :data:`DEFAULT_JOBS`.
    """
    from repro.serve import ServicePolicy, SimulationService

    if jobs is None:
        jobs = _job_count if _job_count is not None else DEFAULT_JOBS
    specs = batch_specs(jobs)

    async def go() -> ServeReport:
        service = SimulationService(ServicePolicy(
            workers=2, max_queue_depth=max(8, len(specs))))
        await service.start()
        job_ids = [service.submit(spec) for spec in specs]
        rows = [await service.result(job_id, timeout_s=600.0)
                for job_id in job_ids]
        stats = service.stats()
        await service.stop()
        return ServeReport(jobs=rows, queue=stats["queue"],
                           plan_cache=stats["plan_cache"])

    return asyncio.run(go())
