"""Terminal bar charts for the experiment harness.

The paper's evaluation figures are grouped bar charts; the closest
dependency-free equivalent is horizontal ASCII bars.  The experiments
use these to render their panels so the regenerated "figures" are
readable directly in test output, without plotting libraries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Glyphs for grouped series (the paper's black/grey bars).
FILL_GLYPHS = ("█", "░", "▒", "▓")


@dataclass
class BarChart:
    """A horizontal bar chart with one or more series per category.

    Attributes:
        title: chart heading.
        unit: axis label appended to values.
        width: bar field width in characters.
        categories: category labels in display order.
        series: mapping series name -> list of values (parallel to
            ``categories``).
    """

    title: str
    unit: str = ""
    width: int = 40
    categories: list[str] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_series(self, name: str, values) -> BarChart:
        """Add one series; every series must match the category count."""
        values = [float(v) for v in values]
        if self.categories and len(values) != len(self.categories):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.categories)} categories")
        self.series[name] = values
        return self

    def _scale(self) -> float:
        peak = max((max(values) for values in self.series.values()
                    if values), default=0.0)
        return peak if peak > 0 else 1.0

    def render(self) -> str:
        """Render the chart as aligned text lines."""
        if not self.series:
            raise ConfigurationError("chart has no series")
        if not self.categories:
            raise ConfigurationError("chart has no categories")
        scale = self._scale()
        label_width = max(len(c) for c in self.categories)
        name_width = max(len(n) for n in self.series)
        lines = [self.title]
        for index, category in enumerate(self.categories):
            for s_index, (name, values) in enumerate(self.series.items()):
                value = values[index]
                bar_len = round(self.width * value / scale)
                bar = FILL_GLYPHS[s_index % len(FILL_GLYPHS)] * bar_len
                label = category if s_index == 0 else ""
                lines.append(
                    f"{label:<{label_width}}  {name:<{name_width}} "
                    f"|{bar:<{self.width}}| {value:,.1f} {self.unit}")
        legend = "  ".join(
            f"{FILL_GLYPHS[i % len(FILL_GLYPHS)]} {name}"
            for i, name in enumerate(self.series))
        lines.append(legend)
        return "\n".join(lines)


def sweep_chart(title: str, xs, ys_by_series: dict[str, list[float]],
                unit: str = "", width: int = 40) -> str:
    """Convenience: render a parameter sweep as a grouped bar chart."""
    chart = BarChart(title=title, unit=unit, width=width,
                     categories=[str(x) for x in xs])
    for name, values in ys_by_series.items():
        chart.add_series(name, values)
    return chart.render()
