"""Fig. 17 — 3D thermal simulation of the Neurocube stack.

The paper simulates the Fig. 16 floorplan with a passive heat sink and
reports, for the 15nm node, maximum temperatures of 349 K (logic die)
and 344 K (DRAM dies) — inside the HMC 2.0 limits of 383 K and 378 K —
while the 28nm node's 1.3 W is thermally negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import register
from repro.hw.thermal import (
    MAX_DRAM_TEMP_K,
    MAX_LOGIC_TEMP_K,
    ThermalResult,
    ThermalStack,
)

PAPER_LOGIC_MAX_K = 349.0
PAPER_DRAM_MAX_K = 344.0


@dataclass
class ThermalExperimentResult:
    """Both nodes' solved stacks."""

    result_15nm: ThermalResult
    result_28nm: ThermalResult

    def to_table(self) -> str:
        lines = ["Fig. 17 — steady-state thermal (passive sink)",
                 f"{'node':<8}{'logic max K':>12}{'dram max K':>12}"
                 f"{'within limits':>15}"]
        lines.append("-" * len(lines[-1]))
        for node, res in (("15nm", self.result_15nm),
                          ("28nm", self.result_28nm)):
            lines.append(f"{node:<8}{res.logic_max_k:>12.1f}"
                         f"{res.dram_max_k:>12.1f}"
                         f"{str(res.within_limits):>15}")
        lines.append(f"paper 15nm: logic {PAPER_LOGIC_MAX_K} K, DRAM "
                     f"{PAPER_DRAM_MAX_K} K; limits {MAX_LOGIC_TEMP_K} / "
                     f"{MAX_DRAM_TEMP_K} K")
        return "\n".join(lines)


@register("fig17", "3D thermal simulation: max die temperatures vs HMC "
                   "2.0 limits")
def run(rows: int = 16, cols: int = 16) -> ThermalExperimentResult:
    """Solve the stack for both nodes."""
    stack = ThermalStack(rows=rows, cols=cols)
    return ThermalExperimentResult(
        result_15nm=stack.solve_neurocube("15nm"),
        result_28nm=stack.solve_neurocube("28nm"))
