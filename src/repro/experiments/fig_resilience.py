"""Extension experiment: inference accuracy vs DRAM bit-error rate.

Not a paper figure — the paper assumes fault-free HMC vaults.  This
experiment uses :mod:`repro.faults` to sweep a DRAM bit-error rate
across a scaled-down scene-labeling ConvNN (same seven-layer topology as
Fig. 9, shrunk until the cycle simulator is fast) and measures how far
the faulted outputs drift from the fault-free run, with and without the
SECDED ECC model.

Every point is one functional whole-network cycle simulation under a
:class:`repro.faults.FaultSession`; the injected fault set is a pure
function of (seed, rate, ecc), so the sweep is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import NeurocubeSimulator
from repro.core.config import NeurocubeConfig
from repro.experiments.registry import register
from repro.faults import ECC_MODES, FaultConfig, FaultSession
from repro.nn import models

#: Per-bit error rates swept (0 is the identity sanity point).
BIT_ERROR_RATES = (0.0, 1e-6, 1e-5, 1e-4, 1e-3)

#: Scaled-down scene-labeling workload: smallest input that survives
#: three valid 3x3 convolutions and two 2x2 poolings on the 4x4 vault
#: grid (RGB input, like the paper's street scenes).
IMAGE_SIDE = 22
CONV_MAPS = (2, 3, 4)
HIDDEN_UNITS = 16
CLASSES = 4


@dataclass
class ResiliencePoint:
    """One (bit-error rate, ECC mode) sweep point.

    Attributes:
        ber: per-bit DRAM read error rate.
        ecc: "none" or "secded".
        top1_match: faulted argmax equals the fault-free argmax.
        mean_abs_error: mean |faulted - clean| over the output vector.
        max_abs_error: max |faulted - clean| over the output vector.
        flip_events: DRAM items that drew at least one bit flip.
        corrupted_items: items whose corruption reached the datapath
            (flips the ECC model could not absorb).
        ecc_corrected: single-bit flips the SECDED model corrected.
        degraded: graceful-degradation records across the network.
    """

    ber: float
    ecc: str
    top1_match: bool
    mean_abs_error: float
    max_abs_error: float
    flip_events: int
    corrupted_items: int
    ecc_corrected: int
    degraded: int


@dataclass
class ResilienceResult:
    """Accuracy-vs-BER sweep outcome."""

    baseline_output: np.ndarray | None = None
    points: list[ResiliencePoint] = field(default_factory=list)

    def points_for(self, ecc: str) -> list[ResiliencePoint]:
        return [p for p in self.points if p.ecc == ecc]

    def to_table(self) -> str:
        lines = ["Extension — inference accuracy vs DRAM bit-error rate "
                 f"(scene-labeling ConvNN, {IMAGE_SIDE}x{IMAGE_SIDE})"]
        header = (f"{'ecc':<8}{'BER':>10}{'top1':>6}{'mean|err|':>11}"
                  f"{'max|err|':>10}{'flips':>7}{'escaped':>9}"
                  f"{'corrected':>11}")
        lines.append(header)
        lines.append("-" * len(header))
        for point in self.points:
            lines.append(
                f"{point.ecc:<8}{point.ber:>10.0e}"
                f"{'yes' if point.top1_match else 'NO':>6}"
                f"{point.mean_abs_error:>11.5f}"
                f"{point.max_abs_error:>10.5f}"
                f"{point.flip_events:>7}{point.corrupted_items:>9}"
                f"{point.ecc_corrected:>11}")
        return "\n".join(lines)


def _workload(seed: int):
    net = models.scene_labeling_convnn(
        height=IMAGE_SIDE, width=IMAGE_SIDE, conv_maps=CONV_MAPS,
        hidden_units=HIDDEN_UNITS, classes=CLASSES, kernel=3, seed=seed)
    image = (np.random.default_rng(seed).standard_normal(
        (3, IMAGE_SIDE, IMAGE_SIDE)) * 0.5)
    return net, image


@register("ext_resilience", "Accuracy vs DRAM bit-error rate under "
                            "deterministic fault injection")
def run(bit_error_rates=BIT_ERROR_RATES, ecc_modes=ECC_MODES,
        fault_seed: int = 11, workload_seed: int = 5) -> ResilienceResult:
    """Sweep accuracy against the bit-error rate, per ECC mode."""
    config = NeurocubeConfig()
    net, image = _workload(workload_seed)
    clean, _ = NeurocubeSimulator(config).run_network(net, image)
    result = ResilienceResult(baseline_output=clean)
    for ecc in ecc_modes:
        for ber in bit_error_rates:
            faults = FaultConfig(seed=fault_seed, dram_bitflip_rate=ber,
                                 ecc=ecc)
            with FaultSession(faults) as session:
                output, report = NeurocubeSimulator(config).run_network(
                    net, image)
            stats = session.total_stats()
            error = np.abs(np.asarray(output) - np.asarray(clean))
            result.points.append(ResiliencePoint(
                ber=ber, ecc=ecc,
                top1_match=int(np.argmax(output)) == int(np.argmax(clean)),
                mean_abs_error=float(error.mean()),
                max_abs_error=float(error.max()),
                flip_events=stats.dram_flip_events,
                corrupted_items=stats.corrupted_items,
                ecc_corrected=stats.ecc_corrected,
                degraded=len(report.degraded)))
    return result
