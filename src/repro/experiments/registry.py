"""Experiment registry keyed by paper artifact id (fig12, table3, ...)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Experiment:
    """A registered experiment.

    Attributes:
        exp_id: paper artifact id ("fig12", "table2", ...).
        title: what the artifact shows.
        run: zero-argument callable returning a result object that has a
            ``to_table()`` method.
    """

    exp_id: str
    title: str
    run: Callable[[], object]


EXPERIMENTS: dict[str, Experiment] = {}


def register(exp_id: str, title: str):
    """Decorator registering a ``run()`` function as an experiment."""

    def decorate(fn):
        if exp_id in EXPERIMENTS:
            raise ConfigurationError(
                f"experiment {exp_id!r} registered twice")
        EXPERIMENTS[exp_id] = Experiment(exp_id=exp_id, title=title,
                                         run=fn)
        return fn

    return decorate


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: "
            f"{sorted(EXPERIMENTS)}") from None
