"""Fig. 14 — effect of NN parameters on throughput and memory.

Two sweeps, each with and without duplication:

* **(a)/(b) kernel size** on a 2D convolutional layer over the 320x240
  image.  Without duplication, larger kernels raise the lateral NoC
  traffic and degrade throughput; with duplication throughput is flat
  but the halo memory overhead grows.
* **(c)/(d) hidden-layer width** of a 3-layer fully connected network.
  Without duplication, lateral traffic is high but constant with width,
  so throughput is flat at a degraded level; with duplication throughput
  is flat at the full level and the duplicated-input share of memory
  shrinks as the weight matrix grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import AnalyticModel, NeurocubeConfig
from repro.experiments.registry import register
from repro.nn import models

KERNEL_SIZES = (3, 5, 7, 9, 11)
HIDDEN_SIZES = (256, 512, 1024, 2048, 4096)
#: Input vector length for the FC sweep (a pooled feature map).
FC_INPUTS = 4096


@dataclass
class SweepPoint:
    """One sweep sample."""

    parameter: int
    duplicate: bool
    throughput_gops: float
    lateral_fraction: float
    memory_bytes: int
    memory_overhead: float


@dataclass
class NNParamsResult:
    """Both sweeps, both strategies."""

    kernel_sweep: list[SweepPoint] = field(default_factory=list)
    hidden_sweep: list[SweepPoint] = field(default_factory=list)

    def points(self, sweep: str, duplicate: bool) -> list[SweepPoint]:
        rows = (self.kernel_sweep if sweep == "kernel"
                else self.hidden_sweep)
        return [p for p in rows if p.duplicate == duplicate]

    def _render(self, title: str, rows: list[SweepPoint],
                label: str) -> list[str]:
        header = (f"{label:<8}{'dup':<6}{'GOPs/s':>9}{'lateral%':>10}"
                  f"{'mem MB':>9}{'overhead%':>11}")
        lines = [title, header, "-" * len(header)]
        for p in rows:
            lines.append(f"{p.parameter:<8}{str(p.duplicate):<6}"
                         f"{p.throughput_gops:>9.1f}"
                         f"{100 * p.lateral_fraction:>10.1f}"
                         f"{p.memory_bytes / 1e6:>9.2f}"
                         f"{100 * p.memory_overhead:>11.1f}")
        return lines

    def _chart(self, title: str, sweep: str) -> str:
        from repro.experiments.charts import sweep_chart

        xs = [p.parameter for p in self.points(sweep, True)]
        return sweep_chart(
            title, xs,
            {"duplicate": [p.throughput_gops
                           for p in self.points(sweep, True)],
             "no dup": [p.throughput_gops
                        for p in self.points(sweep, False)]},
            unit="GOPs/s", width=36)

    def to_table(self) -> str:
        lines = self._render(
            "Fig. 14(a)(b) — kernel-size sweep (2D conv, 320x240)",
            self.kernel_sweep, "kernel")
        lines.append("")
        lines.append(self._chart("throughput vs kernel size", "kernel"))
        lines.append("")
        lines.extend(self._render(
            "Fig. 14(c)(d) — hidden-width sweep (3-layer FC)",
            self.hidden_sweep, "hidden"))
        lines.append("")
        lines.append(self._chart("throughput vs hidden width", "hidden"))
        return "\n".join(lines)


@register("fig14", "Effect of kernel size and hidden-layer width, with "
                   "and without duplication")
def run(kernel_sizes=KERNEL_SIZES,
        hidden_sizes=HIDDEN_SIZES) -> NNParamsResult:
    """Run both parameter sweeps through the analytic model."""
    config = NeurocubeConfig.hmc_15nm()
    model = AnalyticModel(config)
    result = NNParamsResult()
    for kernel in kernel_sizes:
        net = models.single_conv_layer(240, 320, kernel, qformat=None)
        for duplicate in (True, False):
            report = model.evaluate_network(net, duplicate=duplicate)
            result.kernel_sweep.append(SweepPoint(
                parameter=kernel, duplicate=duplicate,
                throughput_gops=report.throughput_gops,
                lateral_fraction=report.lateral_fraction,
                memory_bytes=report.total_bytes,
                memory_overhead=report.memory_overhead))
    for hidden in hidden_sizes:
        net = models.fully_connected_classifier(FC_INPUTS, hidden,
                                                qformat=None)
        for duplicate in (True, False):
            report = model.evaluate_network(net, duplicate=duplicate)
            result.hidden_sweep.append(SweepPoint(
                parameter=hidden, duplicate=duplicate,
                throughput_gops=report.throughput_gops,
                lateral_fraction=report.lateral_fraction,
                memory_bytes=report.total_bytes,
                memory_overhead=report.memory_overhead))
    return result
