"""Persistent memoization of timing-pass outcomes.

``repro.memo`` turns PR 3's in-run structural memoization into a
durable, content-addressed on-disk cache shared across runs and CI
jobs: :class:`~repro.memo.store.MemoStore` holds the entries,
:class:`~repro.memo.session.MemoSession` makes a store directory
ambient for the experiment runner, and ``python -m repro.memo`` exposes
the fingerprint and counters for CI cache keys.  See
``docs/memo_store.md`` for the on-disk format and invalidation rules.
"""

from repro.memo.session import MemoSession, current_memo_session
from repro.memo.store import (
    MEMO_VERSION,
    MemoStats,
    MemoStore,
    entry_digest,
    memo_fingerprint,
)

__all__ = [
    "MEMO_VERSION",
    "MemoSession",
    "MemoStats",
    "MemoStore",
    "current_memo_session",
    "entry_digest",
    "memo_fingerprint",
]
