"""``ncmemo`` — memo-store inspection CLI.

Two subcommands, both built for CI wiring:

``fingerprint``
    Print the config fingerprint (version + timing-relevant config
    fields) for a preset.  The CI ``memo`` job keys its
    ``actions/cache`` entry on this, so a config or format change
    starts a fresh cache instead of carrying stale entries.

``stats DIR``
    Print entry counts and byte sizes per fingerprint partition of a
    store directory (``--json`` for machine consumption; the CI job
    uploads this next to the store artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import NeurocubeConfig
from repro.memo.store import memo_fingerprint

_PRESETS = {
    "hmc_15nm": NeurocubeConfig.hmc_15nm,
    "hmc_28nm": NeurocubeConfig.hmc_28nm,
    "ddr3": NeurocubeConfig.ddr3,
}


def _partition_stats(root: Path) -> dict[str, dict[str, int]]:
    """Entry count and byte total per fingerprint subdirectory."""
    partitions: dict[str, dict[str, int]] = {}
    if not root.is_dir():
        return partitions
    for sub in sorted(root.iterdir()):
        if not sub.is_dir():
            continue
        entries = 0
        total = 0
        for path in sub.glob("*.pkl"):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries += 1
            total += size
        partitions[sub.name] = {"entries": entries, "bytes": total}
    return partitions


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    config = _PRESETS[args.preset]()
    print(memo_fingerprint(config))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    root = Path(args.directory)
    partitions = _partition_stats(root)
    total_entries = sum(p["entries"] for p in partitions.values())
    total_bytes = sum(p["bytes"] for p in partitions.values())
    if args.json:
        print(json.dumps({
            "directory": str(root),
            "partitions": partitions,
            "total_entries": total_entries,
            "total_bytes": total_bytes,
        }, indent=2, sort_keys=True))
        return 0
    if not partitions:
        print(f"{root}: empty memo store")
        return 0
    for name, stats in partitions.items():
        print(f"{name}  entries={stats['entries']}  "
              f"bytes={stats['bytes']}")
    print(f"TOTAL  entries={total_entries}  bytes={total_bytes}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ncmemo", description="Inspect the persistent memo store.")
    sub = parser.add_subparsers(dest="command", required=True)

    fp = sub.add_parser(
        "fingerprint",
        help="print the version/config fingerprint for a preset")
    fp.add_argument("--preset", choices=sorted(_PRESETS),
                    default="hmc_15nm",
                    help="config preset (default: hmc_15nm)")
    fp.set_defaults(func=_cmd_fingerprint)

    st = sub.add_parser("stats",
                        help="print per-fingerprint entry counts/sizes")
    st.add_argument("directory", help="memo store root directory")
    st.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON")
    st.set_defaults(func=_cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
