"""Ambient memo sessions.

Mirrors :class:`repro.faults.session.FaultSession`: a context manager
that makes a memo-store directory ambient, so the experiment runner's
``--memo-dir`` flag works without threading a store through every
experiment.  While a :class:`MemoSession` is active, every simulator
that was not given an explicit store (by argument or by
``config.sim_memo_dir``) opens one under the session directory.

Stores are partitioned by config fingerprint, so one session can serve
experiments with different configurations; the session caches one
:class:`~repro.memo.store.MemoStore` per fingerprint and can fold their
counters into a single :class:`~repro.memo.store.MemoStats`.

Sessions are resolved *once*, at descriptor-run entry, into explicit
state — ambient sessions never cross the process-pool boundary, so a
parallel run behaves identically to a serial one.

Sessions nest; the innermost active session wins.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import NeurocubeConfig
from repro.memo.store import MemoStats, MemoStore

_ACTIVE_MEMO: list["MemoSession"] = []


def current_memo_session() -> MemoSession | None:
    """The innermost active memo session, or None."""
    return _ACTIVE_MEMO[-1] if _ACTIVE_MEMO else None


class MemoSession:
    """Makes a memo-store directory ambient for descriptor runs.

    Attributes:
        directory: root directory shared by all stores of this session.
        max_bytes: size bound handed to every store opened here.
    """

    def __init__(self, directory: str | Path,
                 max_bytes: int | None = None) -> None:
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self._stores: dict[str, MemoStore] = {}

    def __enter__(self) -> MemoSession:
        _ACTIVE_MEMO.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE_MEMO.remove(self)

    def store_for(self, config: NeurocubeConfig) -> MemoStore:
        """The session's store for this config (cached per fingerprint)."""
        from repro.memo.store import memo_fingerprint

        fingerprint = memo_fingerprint(config)
        store = self._stores.get(fingerprint)
        if store is None:
            store = MemoStore(self.directory, config,
                              max_bytes=self.max_bytes)
            self._stores[fingerprint] = store
        return store

    def total_stats(self) -> MemoStats:
        """All opened stores' counters folded together."""
        total = MemoStats()
        for store in self._stores.values():
            total.merge(store.stats)
        return total
