"""Persistent content-addressed memo store for timing-pass outcomes.

PR 3's structural memoization simulates one representative per
:func:`repro.core.parallel.structural_key` equivalence class and replays
its outcome for the duplicates — but only within one process.  This
module makes the replay durable: a directory of pickled
:class:`~repro.core.parallel.MapOutcome` snapshots keyed by a content
digest of everything the outcome is a function of, shared across runs,
CI jobs and (eventually) service workers.

Safety rests on three independent guards, in order of bluntness:

* **Fingerprint partitioning.**  Entries live under
  ``<root>/<fingerprint>/``, where the fingerprint digests the memo
  format version plus every timing-relevant
  :class:`~repro.core.config.NeurocubeConfig` field.  A store opened
  with an incompatible configuration (or after a format bump) simply
  looks into a different subdirectory: stale entries are *invisible*,
  never wrong.
* **Content addressing.**  The entry digest covers the descriptor's
  timing geometry and the task's full :func:`structural_key` (tensor
  bytes included), so a lookup can only land on an entry built from
  identical work.
* **The key⇒hash invariant, re-verified on every load.**  Each entry
  records the :meth:`~repro.core.scheduler.PassPlan.structural_hash` of
  every plan its worker simulated.  On load, the caller passes the
  hashes of the plans it would build *now*, and the pair is checked
  through :func:`repro.analysis.nccheck.verify_memo_pairs` — the same
  NC207 check that guards in-run memoization.  A mismatch (corrupted
  entry, digest collision, drifted scheduler) is a counted *reject* and
  the entry is dropped; it is never replayed.

Writes are atomic (unique temp file + ``os.replace``, the checkpoint-
store pattern), so concurrent writers — two CI shards, a process pool —
cannot clobber each other or leave a torn entry behind.  The store is
size-bounded: after every write, least-recently-*used* entries (file
mtime, refreshed on hit) are evicted until the whole root is back under
``max_bytes``.

This module is the sanctioned durable-state path for the cycle model
(with :mod:`repro.faults.checkpoint`); nclint's NC109 bans ad-hoc
``open()``/``pickle`` persistence everywhere else in the cycle-model
packages.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor
from repro.core.parallel import MapOutcome
from repro.errors import ConfigurationError

#: On-disk entry format version.  Bump whenever the entry layout, the
#: digest recipe *or the simulator's timing behaviour* changes: the
#: version is folded into the config fingerprint, so old entries become
#: invisible rather than wrong.
MEMO_VERSION = 1

#: Config fields that never influence simulated results — worker counts,
#: scheduler/memoization toggles (both proven bit-identical) and the
#: memo store's own location/size.  Everything else is fingerprinted.
_HOST_ONLY_FIELDS = frozenset({
    "sim_workers", "sim_skip_ahead", "sim_memoize",
    "sim_memo_dir", "sim_memo_max_bytes",
})

#: Descriptor fields excluded from the entry digest: pure labels that
#: cannot move a packet, so identically-shaped layers share entries.
_LABEL_FIELDS = frozenset({"name", "layer_index"})


def _feed(digest, value) -> None:
    """Deterministically fold one value into a hash.

    Handles the types that appear in configurations, descriptors and
    structural keys: scalars, strings, bytes (tensor payloads), tuples/
    lists, enums and (nested) dataclasses.  Type tags and length
    prefixes keep distinct shapes from colliding.
    """
    if isinstance(value, bytes):
        digest.update(b"b%d:" % len(value))
        digest.update(value)
    elif isinstance(value, (tuple, list)):
        digest.update(b"t%d:" % len(value))
        for item in value:
            _feed(digest, item)
    elif isinstance(value, enum.Enum):
        digest.update(b"e:")
        _feed(digest, value.value)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        digest.update(b"d:%s:" % type(value).__name__.encode())
        for field in dataclasses.fields(value):
            digest.update(field.name.encode() + b"=")
            _feed(digest, getattr(value, field.name))
    else:
        digest.update(repr(value).encode())
        digest.update(b";")


def memo_fingerprint(config: NeurocubeConfig) -> str:
    """Digest of the memo version plus all timing-relevant config fields.

    Two configurations share memo entries iff their fingerprints match.
    Host-side knobs (:data:`_HOST_ONLY_FIELDS`) are excluded because
    they are proven not to change simulated results; the fault
    configuration is *included* — a rate-0 injector attaches (zeroed)
    fault counters to outcomes, so its presence is outcome-relevant.
    """
    digest = hashlib.sha256()
    digest.update(b"memo-version:%d;" % MEMO_VERSION)
    for field in sorted(dataclasses.fields(config), key=lambda f: f.name):
        if field.name in _HOST_ONLY_FIELDS:
            continue
        digest.update(field.name.encode() + b"=")
        _feed(digest, getattr(config, field.name))
    return digest.hexdigest()[:16]


def entry_digest(desc: LayerDescriptor, key: tuple) -> str:
    """Content address of one memo entry.

    Covers the descriptor's timing geometry (everything except pure
    labels) and the task's full structural key — mode, per-sub-pass
    tensor bytes, biases and finality.  Together with the fingerprint
    this pins every input the timing outcome is a function of.
    """
    digest = hashlib.sha256()
    digest.update(b"desc:")
    for field in dataclasses.fields(desc):
        if field.name in _LABEL_FIELDS:
            continue
        digest.update(field.name.encode() + b"=")
        _feed(digest, getattr(desc, field.name))
    digest.update(b"key:")
    _feed(digest, key)
    return digest.hexdigest()


class _StoredHash:
    """Surrogate carrying a recorded plan hash into ``verify_memo_pairs``.

    The NC207 check only calls ``structural_hash()``; a stored entry no
    longer has the plan object, just its digest.
    """

    __slots__ = ("_digest",)

    def __init__(self, digest: str) -> None:
        self._digest = digest

    def structural_hash(self) -> str:
        return self._digest


@dataclass
class MemoStats:
    """Hit/miss/reject/store/evict counters of one store (or session).

    Attributes:
        hits: entries replayed instead of simulated.
        misses: lookups that found no compatible entry (including
            version-invisible ones) and fell through to simulation.
        rejects: entries found but *refused* — corrupted, truncated, or
            failing the key⇒hash invariant.  A reject always falls
            through to simulation; a nonzero count is a health signal,
            never a correctness problem.
        stores: entries written.
        evictions: entries dropped by the LRU size bound.
    """

    hits: int = 0
    misses: int = 0
    rejects: int = 0
    stores: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {field.name: getattr(self, field.name)
                for field in dataclasses.fields(self)}

    def merge(self, other: MemoStats) -> None:
        """Fold another counter set into this one."""
        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))

    def copy(self) -> MemoStats:
        return MemoStats(**self.as_dict())

    def delta(self, since: MemoStats) -> MemoStats:
        """Counters accumulated after the ``since`` snapshot."""
        return MemoStats(**{
            field.name: getattr(self, field.name)
                        - getattr(since, field.name)
            for field in dataclasses.fields(self)})

    @property
    def lookups(self) -> int:
        """Total lookups: hits + misses + rejects."""
        return self.hits + self.misses + self.rejects

    @property
    def any(self) -> bool:
        """True when any counter is nonzero."""
        return any(self.as_dict().values())

    def format(self) -> str:
        return ", ".join(f"{name}={value}"
                         for name, value in self.as_dict().items())


class MemoStore:
    """A size-bounded directory of durable timing-pass outcomes.

    Args:
        directory: the store root; entries land in a per-fingerprint
            subdirectory (created on demand).
        config: the configuration whose fingerprint partitions the root.
        max_bytes: total on-disk budget for the *whole root* (all
            fingerprints); least-recently-used entries are evicted after
            every write until the root fits.  None disables eviction.

    Attributes:
        timer: optional zero-arg callable returning a context manager;
            when set, every :meth:`load`/:meth:`store` wraps its disk
            I/O in one (how live telemetry bills the ``memo_io`` phase
            without this module importing the obs layer).  The
            simulator sets/clears it per run; it is host-side only and
            never affects what is loaded or stored.
    """

    def __init__(self, directory: str | Path, config: NeurocubeConfig,
                 max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(
                f"memo store max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(directory)
        self.fingerprint = memo_fingerprint(config)
        self.directory = self.root / self.fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = MemoStats()
        self.timer = None

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.pkl"

    def load(self, digest: str,
             expected_plan_hashes: tuple[str, ...]) -> MapOutcome | None:
        """Return the entry's outcome, or None (miss or reject).

        ``expected_plan_hashes`` are the structural hashes of the plans
        the caller would build *right now* for this task; the entry's
        recorded hashes must match under the NC207 key⇒hash invariant
        or the entry is rejected (and dropped) instead of replayed.
        """
        path = self._path(digest)
        try:
            if self.timer is not None:
                with self.timer(), path.open("rb") as handle:
                    payload = pickle.load(handle)
            else:
                with path.open("rb") as handle:
                    payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:  # corrupted/truncated/unreadable: reject
            return self._reject(path)
        if not isinstance(payload, dict):
            return self._reject(path)
        if payload.get("version") != MEMO_VERSION:
            # A foreign format version is invisible, not wrong — it can
            # only appear here if the directory was populated by hand.
            self.stats.misses += 1
            return None
        outcome = payload.get("outcome")
        stored_hashes = payload.get("plan_hashes")
        if (payload.get("fingerprint") != self.fingerprint
                or payload.get("digest") != digest
                or not isinstance(outcome, MapOutcome)
                or not isinstance(stored_hashes, tuple)):
            return self._reject(path)
        if not self._hashes_consistent(digest, stored_hashes,
                                       expected_plan_hashes):
            return self._reject(path)
        # Refresh the LRU clock: this entry was just useful.
        try:
            os.utime(path)
        except OSError:
            pass  # a concurrent eviction won; the outcome is still good
        self.stats.hits += 1
        return outcome

    @staticmethod
    def _hashes_consistent(digest: str, stored: tuple[str, ...],
                           expected: tuple[str, ...]) -> bool:
        """Run the NC207 key⇒hash check on (stored, expected) pairs."""
        # Imported lazily: repro.analysis depends on the core plan
        # types, so a module-level import would be circular.
        from repro.analysis.nccheck import verify_memo_pairs

        if len(stored) != len(expected):
            return False
        pairs = []
        for index, (old, new) in enumerate(zip(stored, expected,
                                               strict=True)):
            pairs.append(((digest, index), _StoredHash(old)))
            pairs.append(((digest, index), _StoredHash(new)))
        return not verify_memo_pairs(pairs)

    def _reject(self, path: Path) -> None:
        """Count a reject and drop the offending entry."""
        self.stats.rejects += 1
        try:
            path.unlink()
        except OSError:
            pass  # already gone (concurrent reject/eviction)
        return None

    def store(self, digest: str, plan_hashes: tuple[str, ...],
              outcome: MapOutcome) -> None:
        """Atomically write one entry, then enforce the size bound.

        The temp file name carries the PID, so two processes storing the
        same digest each complete their own write and the later
        ``os.replace`` wins with a fully-formed entry either way.
        """
        path = self._path(digest)
        payload = {
            "version": MEMO_VERSION,
            "fingerprint": self.fingerprint,
            "digest": digest,
            "plan_hashes": tuple(plan_hashes),
            "outcome": outcome,
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        if self.timer is not None:
            with self.timer():
                with tmp.open("wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
        else:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        self.stats.stores += 1
        self._evict()

    # ------------------------------------------------------------------
    # size accounting / eviction
    # ------------------------------------------------------------------

    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for every entry under the root."""
        entries = []
        for path in self.root.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Bytes currently stored under the root (all fingerprints)."""
        return sum(size for _, size, _ in self._entries())

    def entry_count(self) -> int:
        """Entries currently stored under the root (all fingerprints)."""
        return len(self._entries())

    def _evict(self) -> None:
        """Drop least-recently-used entries until the root fits."""
        if self.max_bytes is None:
            return
        entries = sorted(self._entries())
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue  # a concurrent evictor beat us to it
            total -= size
            self.stats.evictions += 1
