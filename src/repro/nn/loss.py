"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Loss:
    """Base class: ``value`` returns a scalar, ``gradient`` d(loss)/d(pred)."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check(pred: np.ndarray, target: np.ndarray) -> None:
        if pred.shape != target.shape:
            raise ConfigurationError(
                f"prediction shape {pred.shape} != target shape "
                f"{target.shape}")


class MSELoss(Loss):
    """Mean squared error over all elements."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._check(pred, target)
        diff = np.asarray(pred) - np.asarray(target)
        return float(np.mean(diff * diff))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        self._check(pred, target)
        diff = np.asarray(pred) - np.asarray(target)
        return 2.0 * diff / diff.size


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over the class axis.

    For flat predictions ``(B, K)`` the class axis is 1.  For dense
    (per-pixel) predictions ``(B, K, H, W)`` — the scene-labeling case —
    the class axis is also 1 and the loss averages over batch and pixels.
    Targets are one-hot with the same shape as predictions.
    """

    def _softmax(self, pred: np.ndarray) -> np.ndarray:
        shifted = pred - pred.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._check(pred, target)
        probs = self._softmax(np.asarray(pred, dtype=np.float64))
        log_probs = np.log(np.clip(probs, 1e-12, None))
        per_site = -(np.asarray(target) * log_probs).sum(axis=1)
        return float(np.mean(per_site))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        self._check(pred, target)
        probs = self._softmax(np.asarray(pred, dtype=np.float64))
        sites = probs.size // probs.shape[1]
        return (probs - np.asarray(target)) / sites
