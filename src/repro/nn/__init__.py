"""Neural-network substrate for the Neurocube reproduction.

This package is the functional model of the networks the paper maps onto the
Neurocube: convolutional, pooling, dense and recurrent layers with full
forward/backward passes, losses, SGD training, a model zoo (the
scene-labeling ConvNN of Fig. 9, an MNIST-class MLP, a small RNN) and
synthetic datasets standing in for the paper's proprietary inputs.

Arrays are ``float64`` with optional Q1.7.8 quantisation
(:mod:`repro.fixedpoint`) to emulate the hardware datapath.  Image tensors
are ``(channels, height, width)``; batched tensors add a leading axis.
"""

from repro.nn.network import Network
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    LSTM,
    MaxPool2D,
    AvgPool2D,
    PixelwiseDense,
    Recurrent,
)
from repro.nn.activations import (
    Activation,
    Identity,
    ReLU,
    Sigmoid,
    Tanh,
    ActivationLUT,
)
from repro.nn.loss import CrossEntropyLoss, Loss, MSELoss
from repro.nn.optim import SGD, Optimizer
from repro.nn.trainer import Trainer, TrainingResult
from repro.nn.serialization import load_network, read_header, save_network
from repro.nn import models, data

__all__ = [
    "Network",
    "Layer",
    "Conv2D",
    "Dense",
    "PixelwiseDense",
    "Flatten",
    "MaxPool2D",
    "AvgPool2D",
    "Recurrent",
    "LSTM",
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "ActivationLUT",
    "Loss",
    "MSELoss",
    "CrossEntropyLoss",
    "Optimizer",
    "SGD",
    "Trainer",
    "TrainingResult",
    "save_network",
    "load_network",
    "read_header",
    "models",
    "data",
]
