"""Weight initialisers for the NN substrate.

All initialisers take an explicit :class:`numpy.random.Generator` so results
are reproducible without touching global state.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Keeps activation variance roughly constant across layers, which matters
    here because Q1.7.8 saturates at +-128 — runaway activations would make
    the fixed-point emulation meaningless.
    """
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], fan_in: int,
               rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation, appropriate ahead of ReLU activations."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
