"""Saving and loading network parameters.

Parameters are stored as a single ``.npz`` archive keyed by
``<layer_name>/<param_name>``, with a small JSON header recording the
network name and per-layer shapes for load-time validation.  Loading is
strict: the target network must have exactly the same layers, parameter
names and shapes — a mismatch is a :class:`ConfigurationError`, never a
silent partial load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network

#: Reserved key for the JSON header inside the archive.
HEADER_KEY = "__header__"


def _header(network: Network) -> dict:
    return {
        "network_name": network.name,
        "input_shape": list(network.input_shape),
        "layers": {
            layer.name: {key: list(value.shape)
                         for key, value in layer.params.items()}
            for layer in network.layers
        },
    }


def save_network(network: Network, path: str | Path) -> Path:
    """Write all parameters of ``network`` to ``path`` (.npz).

    Returns the written path (with the ``.npz`` suffix numpy enforces).
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        HEADER_KEY: np.frombuffer(
            json.dumps(_header(network)).encode("utf-8"), dtype=np.uint8)
    }
    for layer in network.layers:
        for key, value in layer.params.items():
            arrays[f"{layer.name}/{key}"] = value
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


def read_header(path: str | Path) -> dict:
    """Read only the JSON header of a saved archive."""
    with np.load(Path(path)) as archive:
        if HEADER_KEY not in archive:
            raise ConfigurationError(
                f"{path} is not a repro network archive (no header)")
        return json.loads(bytes(archive[HEADER_KEY]).decode("utf-8"))


def load_network(network: Network, path: str | Path) -> Network:
    """Load parameters from ``path`` into ``network`` (in place).

    The network must structurally match the archive: same layer names,
    same parameter keys, same shapes.  Returns the network.
    """
    path = Path(path)
    with np.load(path) as archive:
        if HEADER_KEY not in archive:
            raise ConfigurationError(
                f"{path} is not a repro network archive (no header)")
        header = json.loads(bytes(archive[HEADER_KEY]).decode("utf-8"))
        saved_layers = header["layers"]
        live_layers = {layer.name: layer for layer in network.layers}
        if set(saved_layers) != set(live_layers):
            raise ConfigurationError(
                f"layer mismatch: archive has {sorted(saved_layers)}, "
                f"network has {sorted(live_layers)}")
        # Validate everything first so a mismatch never leaves the
        # network partially loaded.
        for name, shapes in saved_layers.items():
            layer = live_layers[name]
            if set(shapes) != set(layer.params):
                raise ConfigurationError(
                    f"layer {name!r}: archive params {sorted(shapes)} "
                    f"!= network params {sorted(layer.params)}")
            for key in shapes:
                stored_shape = list(archive[f"{name}/{key}"].shape)
                live_shape = list(layer.params[key].shape)
                if stored_shape != live_shape:
                    raise ConfigurationError(
                        f"{name}/{key}: archive shape {stored_shape} "
                        f"!= network shape {live_shape}")
        for name, shapes in saved_layers.items():
            layer = live_layers[name]
            for key in shapes:
                layer.params[key] = np.array(archive[f"{name}/{key}"],
                                             dtype=np.float64)
            layer.quantize_params()
    return network
