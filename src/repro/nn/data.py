"""Synthetic datasets standing in for the paper's inputs.

The paper evaluates on the Stanford background scene-labeling dataset [9]
and MNIST [10]; neither ships with this reproduction (no network access,
and the performance results depend only on tensor shapes).  These
generators produce structured — not purely random — data with matched
shapes so examples and tests exercise real learning dynamics: the
scene generator paints labelled geometric regions, and the digit generator
draws class-dependent stroke patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.models import SCENE_CLASSES


@dataclass(frozen=True)
class Dataset:
    """A paired set of inputs and one-hot targets.

    Attributes:
        x: inputs, ``(N, *sample_shape)``.
        y: one-hot targets, shape depends on the task.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"{len(self.x)} inputs vs {len(self.y)} targets")

    def __len__(self) -> int:
        return len(self.x)


def _one_hot(labels: np.ndarray, classes: int) -> np.ndarray:
    """One-hot encode integer labels along a new axis 1."""
    flat = labels.reshape(labels.shape[0], -1)
    encoded = np.zeros((labels.shape[0], classes, flat.shape[1]))
    rows = np.arange(labels.shape[0])[:, None]
    cols = np.arange(flat.shape[1])[None, :]
    encoded[rows, flat, cols] = 1.0
    return encoded.reshape(labels.shape[0], classes, *labels.shape[1:])


def synthetic_scenes(samples: int, height: int = 240, width: int = 320,
                     classes: int = SCENE_CLASSES,
                     seed: int = 0) -> Dataset:
    """Scene-labeling stand-in: images of coloured rectangular regions.

    Each image is tiled with 2-5 axis-aligned rectangles; each rectangle
    carries one class and a class-specific colour plus noise, so a ConvNN
    can genuinely learn the pixel-to-class mapping.  Targets are dense
    per-pixel one-hot maps ``(N, classes, H, W)``.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    # One anchor colour per class, spread over RGB space.
    palette = rng.uniform(-1.0, 1.0, size=(classes, 3))
    images = np.zeros((samples, 3, height, width))
    labels = np.zeros((samples, height, width), dtype=np.int64)
    for n in range(samples):
        background = int(rng.integers(classes))
        labels[n, :, :] = background
        images[n] = palette[background][:, None, None]
        for _ in range(int(rng.integers(2, 6))):
            cls = int(rng.integers(classes))
            y0 = int(rng.integers(0, max(1, height - 8)))
            x0 = int(rng.integers(0, max(1, width - 8)))
            y1 = min(height, y0 + int(rng.integers(8, max(9, height // 2))))
            x1 = min(width, x0 + int(rng.integers(8, max(9, width // 2))))
            labels[n, y0:y1, x0:x1] = cls
            images[n, :, y0:y1, x0:x1] = palette[cls][:, None, None]
    images += rng.normal(0.0, 0.05, size=images.shape)
    return Dataset(x=images, y=_one_hot(labels, classes))


def synthetic_digits(samples: int, classes: int = 10,
                     seed: int = 0) -> Dataset:
    """MNIST stand-in: 28x28 single-channel class-dependent stroke images.

    Class ``k`` gets ``k+1`` bright horizontal bands at class-specific rows
    plus noise — trivially separable, but through the same tensor shapes
    as MNIST, which is all the experiments need.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    images = rng.normal(0.0, 0.1, size=(samples, 1, 28, 28))
    labels = rng.integers(0, classes, size=samples)
    band_rows = np.linspace(2, 25, classes).astype(int)
    for n, cls in enumerate(labels):
        for band in range(cls + 1):
            row = band_rows[(cls + 3 * band) % classes]
            images[n, 0, row:row + 2, 4:24] += 1.0
    targets = np.zeros((samples, classes))
    targets[np.arange(samples), labels] = 1.0
    return Dataset(x=images, y=targets)


def synthetic_vectors(samples: int, inputs: int, classes: int = SCENE_CLASSES,
                      seed: int = 0) -> Dataset:
    """Flat-vector classification data for the fully connected sweeps.

    Inputs are class-centroid clusters in ``R^inputs`` with Gaussian
    spread, giving a genuinely learnable linear structure.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    centroids = rng.uniform(-1.0, 1.0, size=(classes, inputs))
    labels = rng.integers(0, classes, size=samples)
    x = centroids[labels] + rng.normal(0.0, 0.2, size=(samples, inputs))
    y = np.zeros((samples, classes))
    y[np.arange(samples), labels] = 1.0
    return Dataset(x=x, y=y)


def synthetic_sequences(samples: int, steps: int, inputs: int,
                        hidden_units: int, seed: int = 0) -> Dataset:
    """Sequence-regression data for the RNN model.

    Targets are a fixed random linear readout of a leaky running mean of
    the inputs — a task an Elman RNN can represent exactly.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, size=(samples, steps, inputs))
    readout = rng.normal(0.0, 1.0 / np.sqrt(inputs),
                         size=(inputs, hidden_units))
    y = np.zeros((samples, steps, hidden_units))
    state = np.zeros((samples, inputs))
    for t in range(steps):
        state = 0.7 * state + 0.3 * x[:, t]
        y[:, t] = np.tanh(state @ readout)
    return Dataset(x=x, y=y)
