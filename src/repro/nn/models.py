"""Model zoo: the networks the paper evaluates.

``scene_labeling_convnn`` reconstructs the 7-layer ConvNN of Fig. 9.  The
figure's exact feature-map counts are not recoverable from the paper text;
the text fixes the input (RGB 320x240), the layer count (7), the kernel
(7x7, i.e. 49 connections), the first conv output (314x234 = 73,476
neurons) and the layer-type sequence (conv, pool, conv, pool, conv, then
fully connected classifiers).  Map counts here (8/16/32, classifier 64->8)
were chosen so ops/frame lands in the regime implied by the paper's
throughput and frames/s numbers; see DESIGN.md §2.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fixedpoint import Q_1_7_8, QFormat
from repro.nn.activations import PiecewiseLinear, Sigmoid, Tanh
from repro.nn.layers import (
    LSTM,
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    Recurrent,
)
from repro.nn.network import Network

#: Number of scene-labeling classes (Stanford background dataset [9] has 8).
SCENE_CLASSES = 8


def scene_labeling_convnn(height: int = 240, width: int = 320,
                          conv_maps: tuple[int, int, int] = (8, 16, 32),
                          hidden_units: int = 128,
                          classes: int = SCENE_CLASSES,
                          kernel: int = 7,
                          qformat: QFormat | None = Q_1_7_8,
                          seed: int = 0) -> Network:
    """The paper's scene-labeling ConvNN (Fig. 9 reconstruction).

    Seven compute layers: three 7x7 convolutions interleaved with two 2x2
    poolings, then two fully connected classifier layers (the Flatten in
    between is a free reshape, not a compute layer).  With the default
    320x240 input the first conv layer has 314x234 neurons per output map,
    matching the PNG programming example of §IV-C.  The convolutions and
    the first FC layer together dominate the op count (§VI-1); the hidden
    width default was chosen so the whole-network duplicate /
    no-duplicate throughput contrast lands in the ratio the paper
    reports (-16%) — see EXPERIMENTS.md.

    Args:
        height, width: input image size (the paper uses 240x320; training
            experiments use 64x64).
        conv_maps: output feature maps of the three conv layers.
        hidden_units: width of the first classifier layer.
        classes: output classes.
        kernel: convolution kernel side.
        qformat: fixed-point emulation format (None disables).
        seed: parameter-init seed.
    """
    # Solving ((x - (k-1))/2 - (k-1))/2 >= k gives the smallest input
    # that survives three valid convolutions and two 2x2 poolings.
    min_size = 7 * kernel - 3
    if height < min_size or width < min_size:
        raise ConfigurationError(
            f"input {height}x{width} too small for three {kernel}x{kernel} "
            f"convolutions with two 2x2 poolings (need >= {min_size})")
    m1, m2, m3 = conv_maps
    layers = [
        Conv2D(m1, kernel, activation=Tanh(), name="conv1", qformat=qformat),
        MaxPool2D(2, name="pool1"),
        Conv2D(m2, kernel, activation=Tanh(), name="conv2", qformat=qformat),
        MaxPool2D(2, name="pool2"),
        Conv2D(m3, kernel, activation=Tanh(), name="conv3", qformat=qformat),
        Flatten(name="flatten"),
        Dense(hidden_units, activation=Tanh(), name="fc1", qformat=qformat),
        Dense(classes, name="fc2", qformat=qformat),
    ]
    return Network(layers, input_shape=(3, height, width),
                   name=f"scene_labeling_{width}x{height}", seed=seed)


def mnist_mlp(hidden_units: int = 300, classes: int = 10,
              qformat: QFormat | None = Q_1_7_8, seed: int = 0) -> Network:
    """An MNIST-class multi-layer perceptron (paper Fig. 1 and §VI).

    The paper describes the MNIST workload as a 2-layer MLP over a 28x28
    input [7]; the default hidden width of 300 follows LeCun's classic
    MNIST MLP configuration.
    """
    layers = [
        Flatten(name="flatten"),
        Dense(hidden_units, activation=Sigmoid(), name="hidden",
              qformat=qformat),
        Dense(classes, name="output", qformat=qformat),
    ]
    return Network(layers, input_shape=(1, 28, 28), name="mnist_mlp",
                   seed=seed)


def fully_connected_classifier(inputs: int, hidden_units: int,
                               outputs: int = SCENE_CLASSES,
                               qformat: QFormat | None = Q_1_7_8,
                               seed: int = 0) -> Network:
    """The 3-layer fully connected network swept in Fig. 14(c)(d).

    One hidden layer between input and output; ``hidden_units`` is the
    sweep variable of the experiment.
    """
    layers = [
        Dense(hidden_units, activation=Sigmoid(), name="hidden",
              qformat=qformat),
        Dense(outputs, name="output", qformat=qformat),
    ]
    return Network(layers, input_shape=(inputs,),
                   name=f"fc_hidden{hidden_units}", seed=seed)


def single_conv_layer(height: int, width: int, kernel: int,
                      in_maps: int = 1, out_maps: int = 1,
                      qformat: QFormat | None = Q_1_7_8,
                      seed: int = 0) -> Network:
    """One 2D convolutional layer (the Fig. 14(a)(b) kernel-size sweep).

    With ``in_maps = out_maps = 1`` this matches the paper's PNG
    programming example exactly: a 320x240 input and 7x7 kernel gives
    73,476 neurons with 49 connections each (§IV-C).
    """
    layers = [Conv2D(out_maps, kernel, activation=Tanh(), name="conv",
                     qformat=qformat)]
    return Network(layers, input_shape=(in_maps, height, width),
                   name=f"conv_k{kernel}", seed=seed)


def small_rnn(inputs: int = 32, hidden_units: int = 64, steps: int = 10,
              qformat: QFormat | None = Q_1_7_8, seed: int = 0) -> Network:
    """A small Elman RNN (paper §VI: RNN == deep MLP unfolded in time)."""
    layers = [Recurrent(hidden_units, name="recurrent", qformat=qformat)]
    return Network(layers, input_shape=(steps, inputs), name="small_rnn",
                   seed=seed)


def small_lstm(inputs: int = 32, hidden_units: int = 64, steps: int = 10,
               qformat: QFormat | None = Q_1_7_8, seed: int = 0) -> Network:
    """A small LSTM (the paper's §VI extension: per-gate LUT updates)."""
    layers = [LSTM(hidden_units, name="lstm", qformat=qformat)]
    return Network(layers, input_shape=(steps, inputs), name="small_lstm",
                   seed=seed)


def cellular_nn(height: int = 64, width: int = 64, iterations: int = 4,
                kernel: int = 3, qformat: QFormat | None = Q_1_7_8,
                seed: int = 0) -> Network:
    """A discrete-time cellular neural network [29] (paper §VI).

    The paper notes a CeNN layer programs like a 2D convolutional layer.
    Each CeNN time step is a 3x3 neighbourhood template applied to the
    cell states followed by the piecewise-linear output function; this
    model unrolls ``iterations`` steps into a stack of convolution
    layers, each carrying the CeNN activation in its LUT.  'same'-size
    state is not required for the mapping demonstration, so the grid
    shrinks by ``kernel - 1`` per step (valid convolution, as the
    Neurocube address generator computes it).
    """
    if height <= iterations * (kernel - 1):
        raise ConfigurationError(
            f"{iterations} CeNN iterations of kernel {kernel} exhaust a "
            f"{height}x{width} grid")
    layers = [
        Conv2D(1, kernel, activation=PiecewiseLinear(),
               name=f"step{t + 1}", qformat=qformat)
        for t in range(iterations)
    ]
    return Network(layers, input_shape=(1, height, width),
                   name=f"cellular_nn_{iterations}steps", seed=seed)


def lenet_like(classes: int = 10, qformat: QFormat | None = Q_1_7_8,
               seed: int = 0) -> Network:
    """A small LeNet-style ConvNN [10] for functional tests and examples."""
    layers = [
        Conv2D(6, 5, activation=Tanh(), name="conv1", qformat=qformat),
        AvgPool2D(2, name="pool1"),
        Conv2D(16, 5, activation=Tanh(), name="conv2", qformat=qformat),
        AvgPool2D(2, name="pool2"),
        Flatten(name="flatten"),
        Dense(120, activation=Tanh(), name="fc1", qformat=qformat),
        Dense(84, activation=Tanh(), name="fc2", qformat=qformat),
        Dense(classes, name="output", qformat=qformat),
    ]
    return Network(layers, input_shape=(1, 28, 28), name="lenet_like",
                   seed=seed)
