"""2D convolution (the paper's locally connected layer).

Implemented with an im2col lowering so forward and backward are dense
matrix products — fast enough in numpy to train the scene-labeling network
on synthetic data.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigurationError
from repro.nn import initializers
from repro.nn.activations import Activation
from repro.nn.layers.base import Layer


def im2col(x: np.ndarray, kernel: int) -> np.ndarray:
    """Lower ``(B, C, H, W)`` into ``(B, C*k*k, OH*OW)`` patch columns."""
    windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    batch, channels, out_h, out_w, _, _ = windows.shape
    cols = windows.transpose(0, 1, 4, 5, 2, 3)
    return cols.reshape(batch, channels * kernel * kernel, out_h * out_w)


def col2im(cols: np.ndarray, input_shape: tuple[int, int, int, int],
           kernel: int) -> np.ndarray:
    """Scatter-add ``(B, C*k*k, OH*OW)`` columns back into an image.

    Inverse (adjoint) of :func:`im2col`; overlapping patches accumulate,
    which is exactly the gradient flow of convolution.
    """
    batch, channels, height, width = input_shape
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    x = np.zeros(input_shape, dtype=cols.dtype)
    cols = cols.reshape(batch, channels, kernel, kernel, out_h, out_w)
    for ky in range(kernel):
        for kx in range(kernel):
            x[:, :, ky:ky + out_h, kx:kx + out_w] += cols[:, :, ky, kx]
    return x


class Conv2D(Layer):
    """Valid-padding, stride-1 2D convolution over ``(C, H, W)`` inputs.

    This is the paper's 2D convolutional layer: each output neuron connects
    to the ``kernel x kernel`` 2D neighbourhood of every input map (§II-A,
    Fig. 3c), so ``connections_per_neuron = in_channels * kernel**2``.

    Args:
        out_channels: number of output feature maps.
        kernel: square kernel side (7 for every conv in the paper's net).
        activation: non-linearity after the weighted sum.
    """

    connectivity = "local"

    def __init__(self, out_channels: int, kernel: int,
                 activation: Activation | None = None, **kwargs) -> None:
        if out_channels < 1:
            raise ConfigurationError(
                f"out_channels must be >= 1, got {out_channels}")
        if kernel < 1:
            raise ConfigurationError(f"kernel must be >= 1, got {kernel}")
        super().__init__(activation=activation, **kwargs)
        self.out_channels = out_channels
        self.kernel = kernel
        self._cols: np.ndarray | None = None

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ConfigurationError(
                f"Conv2D expects (C, H, W) input, got {input_shape}")
        channels, height, width = input_shape
        if height < self.kernel or width < self.kernel:
            raise ConfigurationError(
                f"kernel {self.kernel} larger than input {height}x{width}")
        return (self.out_channels,
                height - self.kernel + 1,
                width - self.kernel + 1)

    def allocate(self, rng: np.random.Generator) -> None:
        in_channels = self.input_shape[0]
        fan_in = in_channels * self.kernel * self.kernel
        fan_out = self.out_channels * self.kernel * self.kernel
        self.params = {
            "weight": initializers.glorot_uniform(
                (self.out_channels, in_channels, self.kernel, self.kernel),
                fan_in, fan_out, rng),
            "bias": initializers.zeros((self.out_channels,)),
        }
        self.quantize_params()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        cols = im2col(np.asarray(x, dtype=np.float64), self.kernel)
        if training:
            self._x = x
            self._cols = cols
        w = self.params["weight"].reshape(self.out_channels, -1)
        y = np.einsum("oc,bcp->bop", w, cols, optimize=True)
        y += self.params["bias"][None, :, None]
        _, out_h, out_w = self.output_shape
        y = y.reshape(x.shape[0], self.out_channels, out_h, out_w)
        return self._activate(y, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise ConfigurationError(
                f"backward() on {self.name!r} without forward(training=True)")
        grad_y = self._activation_grad(grad_out)
        batch = grad_y.shape[0]
        grad_flat = grad_y.reshape(batch, self.out_channels, -1)
        w = self.params["weight"].reshape(self.out_channels, -1)
        self.grads["weight"] = np.einsum(
            "bop,bcp->oc", grad_flat, self._cols,
            optimize=True).reshape(self.params["weight"].shape)
        self.grads["bias"] = grad_flat.sum(axis=(0, 2))
        grad_cols = np.einsum("oc,bop->bcp", w, grad_flat, optimize=True)
        return col2im(grad_cols, (batch, *self.input_shape), self.kernel)

    @property
    def connections_per_neuron(self) -> int:
        self._require_built()
        return self.input_shape[0] * self.kernel * self.kernel
