"""Simple recurrent (Elman) layer.

The paper notes (§VI) that an RNN "is equivalent to a deep MLP after
unfolding in time" and is programmed on the Neurocube like a sequence of
fully connected layers.  This layer provides the functional model; the
compiler unrolls it into per-timestep fully connected descriptors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import initializers
from repro.nn.activations import Activation, Tanh
from repro.nn.layers.base import Layer


class Recurrent(Layer):
    """Elman RNN: ``h_t = act(W_x x_t + W_h h_{t-1} + b)``.

    Operates on sequences shaped ``(B, T, N_in)`` and returns hidden states
    ``(B, T, units)``.  Backward is truncated-free full BPTT over the
    sequence presented to ``forward``.
    """

    connectivity = "full"

    def __init__(self, units: int, activation: Activation | None = None,
                 **kwargs) -> None:
        if units < 1:
            raise ConfigurationError(f"units must be >= 1, got {units}")
        super().__init__(activation=activation or Tanh(), **kwargs)
        self.units = units

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 2:
            raise ConfigurationError(
                f"Recurrent expects (T, N_in) input, got {input_shape}")
        return (input_shape[0], self.units)

    def allocate(self, rng: np.random.Generator) -> None:
        _, n_in = self.input_shape
        self.params = {
            "w_in": initializers.glorot_uniform(
                (self.units, n_in), n_in, self.units, rng),
            "w_rec": initializers.glorot_uniform(
                (self.units, self.units), self.units, self.units, rng),
            "bias": initializers.zeros((self.units,)),
        }
        self.quantize_params()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        hidden = np.zeros((batch, steps + 1, self.units))
        pre = np.zeros((batch, steps, self.units))
        for t in range(steps):
            pre[:, t] = (x[:, t] @ self.params["w_in"].T
                         + hidden[:, t] @ self.params["w_rec"].T
                         + self.params["bias"])
            hidden[:, t + 1] = self.activation.forward(pre[:, t])
        if training:
            self._x = x
            self._pre = pre
            self._hidden = hidden
        return hidden[:, 1:].copy()

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigurationError(
                f"backward() on {self.name!r} without forward(training=True)")
        x, pre, hidden = self._x, self._pre, self._hidden
        batch, steps, n_in = x.shape
        grad_in = np.zeros_like(x)
        grad_w_in = np.zeros_like(self.params["w_in"])
        grad_w_rec = np.zeros_like(self.params["w_rec"])
        grad_bias = np.zeros_like(self.params["bias"])
        carry = np.zeros((batch, self.units))
        for t in reversed(range(steps)):
            total = grad_out[:, t] + carry
            grad_pre = total * self.activation.derivative(pre[:, t])
            grad_w_in += grad_pre.T @ x[:, t]
            grad_w_rec += grad_pre.T @ hidden[:, t]
            grad_bias += grad_pre.sum(axis=0)
            grad_in[:, t] = grad_pre @ self.params["w_in"]
            carry = grad_pre @ self.params["w_rec"]
        self.grads = {"w_in": grad_w_in, "w_rec": grad_w_rec,
                      "bias": grad_bias}
        return grad_in

    @property
    def connections_per_neuron(self) -> int:
        """Per timestep: all inputs plus all recurrent hidden units."""
        self._require_built()
        return self.input_shape[1] + self.units

    @property
    def macs(self) -> int:
        """MACs across the whole unrolled sequence."""
        steps = self.input_shape[0]
        return steps * self.units * self.connections_per_neuron
