"""Layer implementations for the NN substrate."""

from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from repro.nn.layers.dense import Dense, Flatten, PixelwiseDense
from repro.nn.layers.recurrent import Recurrent
from repro.nn.layers.lstm import LSTM

__all__ = [
    "Layer",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Dense",
    "PixelwiseDense",
    "Flatten",
    "Recurrent",
    "LSTM",
]
