"""LSTM layer (the paper's §VI extension target).

The paper notes that "LSTM [28], a variant of RNN with multiple hidden
layers each with a different activation function, can be realized by
updating the LUT for each layer during programming".  This layer provides
the functional model; the compiler lowers it into per-gate fully
connected passes, each programmed with its own activation LUT (three
sigmoid gates and a tanh candidate), plus an element-wise state-update
pass — exactly the paper's recipe.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import initializers
from repro.nn.activations import Sigmoid, Tanh
from repro.nn.layers.base import Layer

#: Gate order used throughout: input, forget, output, candidate.
GATES = ("i", "f", "o", "g")


class LSTM(Layer):
    """A standard LSTM over sequences shaped ``(B, T, N_in)``.

    Per timestep::

        i = sigmoid(W_i x + U_i h + b_i)
        f = sigmoid(W_f x + U_f h + b_f)
        o = sigmoid(W_o x + U_o h + b_o)
        g = tanh   (W_g x + U_g h + b_g)
        c = f * c_prev + i * g
        h = o * tanh(c)

    Returns the hidden-state sequence ``(B, T, units)``.  Backward is
    full BPTT.  Forget-gate biases initialise to 1.0 (the standard
    gradient-flow trick).
    """

    connectivity = "full"

    def __init__(self, units: int, **kwargs) -> None:
        if units < 1:
            raise ConfigurationError(f"units must be >= 1, got {units}")
        super().__init__(**kwargs)
        self.units = units
        self._sigmoid = Sigmoid()
        self._tanh = Tanh()

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 2:
            raise ConfigurationError(
                f"LSTM expects (T, N_in) input, got {input_shape}")
        return (input_shape[0], self.units)

    def allocate(self, rng: np.random.Generator) -> None:
        _, n_in = self.input_shape
        self.params = {}
        for gate in GATES:
            self.params[f"w_{gate}"] = initializers.glorot_uniform(
                (self.units, n_in), n_in, self.units, rng)
            self.params[f"u_{gate}"] = initializers.glorot_uniform(
                (self.units, self.units), self.units, self.units, rng)
            self.params[f"b_{gate}"] = initializers.zeros((self.units,))
        self.params["b_f"] = np.ones((self.units,))
        self.quantize_params()

    # ------------------------------------------------------------------

    def _gate_pre(self, gate: str, x_t: np.ndarray,
                  h_prev: np.ndarray) -> np.ndarray:
        return (x_t @ self.params[f"w_{gate}"].T
                + h_prev @ self.params[f"u_{gate}"].T
                + self.params[f"b_{gate}"])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        batch, steps, _ = x.shape
        h = np.zeros((batch, self.units))
        c = np.zeros((batch, self.units))
        outputs = np.zeros((batch, steps, self.units))
        cache = []
        for t in range(steps):
            gates = {gate: self._gate_pre(gate, x[:, t], h)
                     for gate in GATES}
            i = self._sigmoid.forward(gates["i"])
            f = self._sigmoid.forward(gates["f"])
            o = self._sigmoid.forward(gates["o"])
            g = self._tanh.forward(gates["g"])
            c_prev = c
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h_prev = h
            h = o * tanh_c
            outputs[:, t] = h
            if training:
                cache.append(dict(i=i, f=f, o=o, g=g, c=c,
                                  c_prev=c_prev, tanh_c=tanh_c,
                                  h_prev=h_prev, x_t=x[:, t]))
        if training:
            self._x = x
            self._cache = cache
        return outputs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigurationError(
                f"backward() on {self.name!r} without forward(training=True)")
        x = self._x
        batch, steps, n_in = x.shape
        grads = {key: np.zeros_like(value)
                 for key, value in self.params.items()}
        grad_in = np.zeros_like(x)
        dh_carry = np.zeros((batch, self.units))
        dc_carry = np.zeros((batch, self.units))
        for t in reversed(range(steps)):
            step = self._cache[t]
            dh = grad_out[:, t] + dh_carry
            do = dh * step["tanh_c"]
            dc = dh * step["o"] * (1.0 - step["tanh_c"] ** 2) + dc_carry
            di = dc * step["g"]
            dg = dc * step["i"]
            df = dc * step["c_prev"]
            dc_carry = dc * step["f"]
            pre = {
                "i": di * step["i"] * (1.0 - step["i"]),
                "f": df * step["f"] * (1.0 - step["f"]),
                "o": do * step["o"] * (1.0 - step["o"]),
                "g": dg * (1.0 - step["g"] ** 2),
            }
            dh_carry = np.zeros((batch, self.units))
            for gate in GATES:
                grads[f"w_{gate}"] += pre[gate].T @ step["x_t"]
                grads[f"u_{gate}"] += pre[gate].T @ step["h_prev"]
                grads[f"b_{gate}"] += pre[gate].sum(axis=0)
                grad_in[:, t] += pre[gate] @ self.params[f"w_{gate}"]
                dh_carry += pre[gate] @ self.params[f"u_{gate}"]
        self.grads = grads
        return grad_in

    # ------------------------------------------------------------------
    # Neurocube mapping metadata
    # ------------------------------------------------------------------

    @property
    def connections_per_neuron(self) -> int:
        """Per gate: all inputs plus all recurrent hidden units."""
        self._require_built()
        return self.input_shape[1] + self.units

    @property
    def macs(self) -> int:
        """Across the unrolled sequence: four gates of weighted sums
        plus the element-wise cell update (3 MAC-equivalents/unit)."""
        steps = self.input_shape[0]
        gate_macs = 4 * steps * self.units * self.connections_per_neuron
        elementwise = 3 * steps * self.units
        return gate_macs + elementwise

    @property
    def weight_count(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.params.values())
