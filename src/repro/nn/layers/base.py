"""Layer base class.

A layer is both a differentiable function (``forward``/``backward``) and a
description the Neurocube compiler can map: every layer reports its neuron
count, connections per neuron, MAC count and connectivity class, which is
exactly the information the PNG's three-counter FSM is programmed with
(paper §IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat, quantize_float
from repro.nn.activations import Activation, Identity

#: Connectivity classes recognised by the Neurocube compiler (paper §II-A):
#: ``local`` — 2D-neighbourhood connections (conv, cellular nets);
#: ``full``  — all-to-all connections (MLP / FC / RNN layers);
#: ``pool``  — local reduction without weights.
CONNECTIVITY_CLASSES = ("local", "full", "pool")


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`compute_output_shape`, :meth:`forward` and
    :meth:`backward`, and the mapping metadata properties.  Parameters and
    their gradients live in the ``params`` / ``grads`` dicts under matching
    keys so optimisers can walk them generically.

    Args:
        activation: the non-linearity applied to this layer's
            pre-activations (Eq. 2).  Defaults to identity.
        name: optional human-readable name used in reports.
        qformat: when set, weights and outputs are rounded to this
            fixed-point format after every forward pass, emulating the
            Q1.7.8 hardware datapath.
    """

    #: connectivity class used by the Neurocube compiler.
    connectivity = "full"

    def __init__(self, activation: Activation | None = None,
                 name: str | None = None,
                 qformat: QFormat | None = None) -> None:
        self.activation = activation if activation is not None else Identity()
        self.name = name or type(self).__name__.lower()
        self.qformat = qformat
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    # ------------------------------------------------------------------
    # shape plumbing
    # ------------------------------------------------------------------

    def build(self, input_shape: tuple[int, ...],
              rng: np.random.Generator) -> tuple[int, ...]:
        """Bind the layer to ``input_shape`` (sans batch) and allocate params.

        Returns the layer's output shape.  Calling ``build`` again with a
        different shape reallocates parameters.
        """
        self.input_shape = tuple(input_shape)
        self.output_shape = self.compute_output_shape(self.input_shape)
        self.allocate(rng)
        return self.output_shape

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Output shape (sans batch) for the given input shape."""
        raise NotImplementedError

    def allocate(self, rng: np.random.Generator) -> None:
        """Allocate parameters; default is parameter-free."""

    def _require_built(self) -> None:
        if self.output_shape is None:
            raise ConfigurationError(
                f"layer {self.name!r} used before build(); add it to a "
                f"Network or call build() with an input shape")

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass on a batched input ``(B, *input_shape)``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass.

        Receives d(loss)/d(output), fills ``self.grads`` and returns
        d(loss)/d(input).  Must be called after a ``forward`` with
        ``training=True``.
        """
        raise NotImplementedError

    def _activate(self, y: np.ndarray, training: bool) -> np.ndarray:
        """Apply activation (and fixed-point rounding) to pre-activations."""
        if training:
            self._y = y
        out = self.activation.forward(y)
        if self.qformat is not None:
            out = quantize_float(out, self.qformat)
        return out

    def _activation_grad(self, grad_out: np.ndarray) -> np.ndarray:
        """Chain grad_out through the activation derivative."""
        if self._y is None:
            raise ConfigurationError(
                f"backward() on layer {self.name!r} without a prior "
                f"forward(training=True)")
        return grad_out * self.activation.derivative(self._y)

    def quantize_params(self) -> None:
        """Round all parameters to the layer's Q-format, if one is set."""
        if self.qformat is None:
            return
        for key, value in self.params.items():
            self.params[key] = quantize_float(value, self.qformat)

    # ------------------------------------------------------------------
    # Neurocube mapping metadata
    # ------------------------------------------------------------------

    @property
    def neuron_count(self) -> int:
        """Number of output neurons — the PNG's outermost loop bound."""
        self._require_built()
        return int(np.prod(self.output_shape))

    @property
    def connections_per_neuron(self) -> int:
        """Inputs feeding one output neuron — the PNG's middle loop bound."""
        raise NotImplementedError

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of one forward pass (one sample)."""
        return self.neuron_count * self.connections_per_neuron

    @property
    def ops(self) -> int:
        """Arithmetic op count (2 per MAC: multiply + add), one sample."""
        return 2 * self.macs

    @property
    def weight_count(self) -> int:
        """Number of synaptic-weight parameters."""
        return sum(int(np.prod(p.shape)) for p in self.params.values())

    def __repr__(self) -> str:
        built = (f"{self.input_shape}->{self.output_shape}"
                 if self.output_shape is not None else "unbuilt")
        return f"{type(self).__name__}(name={self.name!r}, {built})"
