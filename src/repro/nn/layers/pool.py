"""Pooling layers (the paper's subsampling layers between convolutions)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer


class _Pool2D(Layer):
    """Shared machinery for non-overlapping square pooling.

    Inputs whose spatial size is not a multiple of the window are cropped
    at the bottom/right (floor semantics), matching how the paper's layer
    sizes shrink (e.g. 151x111 -> 75x55 under 2x2 pooling).
    """

    connectivity = "pool"

    def __init__(self, size: int = 2, **kwargs) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        super().__init__(**kwargs)
        self.size = size

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ConfigurationError(
                f"pooling expects (C, H, W) input, got {input_shape}")
        channels, height, width = input_shape
        if height < self.size or width < self.size:
            raise ConfigurationError(
                f"pool window {self.size} larger than input {height}x{width}")
        return (channels, height // self.size, width // self.size)

    def _tile(self, x: np.ndarray) -> np.ndarray:
        """Crop and reshape to ``(B, C, OH, s, OW, s)`` windows."""
        _, out_h, out_w = self.output_shape
        s = self.size
        cropped = x[:, :, :out_h * s, :out_w * s]
        batch, channels = x.shape[:2]
        return cropped.reshape(batch, channels, out_h, s, out_w, s)

    @property
    def connections_per_neuron(self) -> int:
        return self.size * self.size

    @property
    def weight_count(self) -> int:
        return 0


class MaxPool2D(_Pool2D):
    """Max pooling with a square non-overlapping window."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        tiles = self._tile(x)
        y = tiles.max(axis=(3, 5))
        if training:
            self._x = x
            # Mask of the winning elements; ties split gradient evenly.
            expanded = y[:, :, :, None, :, None]
            winners = (tiles == expanded).astype(np.float64)
            self._mask = winners / winners.sum(axis=(3, 5), keepdims=True)
        return self._activate(y, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_y = self._activation_grad(grad_out)
        batch = grad_y.shape[0]
        grad_tiles = self._mask * grad_y[:, :, :, None, :, None]
        grad_in = np.zeros((batch, *self.input_shape), dtype=np.float64)
        _, out_h, out_w = self.output_shape
        s = self.size
        grad_in[:, :, :out_h * s, :out_w * s] = grad_tiles.reshape(
            batch, self.input_shape[0], out_h * s, out_w * s)
        return grad_in


class AvgPool2D(_Pool2D):
    """Average pooling with a square non-overlapping window."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        y = self._tile(x).mean(axis=(3, 5))
        if training:
            self._x = x
        return self._activate(y, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_y = self._activation_grad(grad_out)
        batch = grad_y.shape[0]
        s = self.size
        _, out_h, out_w = self.output_shape
        spread = np.repeat(np.repeat(grad_y, s, axis=2), s, axis=3)
        spread /= s * s
        grad_in = np.zeros((batch, *self.input_shape), dtype=np.float64)
        grad_in[:, :, :out_h * s, :out_w * s] = spread
        return grad_in
