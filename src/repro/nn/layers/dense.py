"""Fully connected layers and the flatten adapter.

``Dense`` is the paper's fully connected layer (all-to-all connectivity,
Fig. 3b).  ``PixelwiseDense`` applies the same weight matrix to the channel
vector at every pixel — the standard form of the classifier layers in
scene-labeling networks, and still "fully connected" from the Neurocube
compiler's point of view (every output neuron at a pixel connects to every
input channel at that pixel).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import initializers
from repro.nn.activations import Activation
from repro.nn.layers.base import Layer


class Flatten(Layer):
    """Reshape ``(C, H, W)`` (or any shape) into a flat vector."""

    connectivity = "pool"

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        if training:
            self._x = x
        return np.asarray(x, dtype=np.float64).reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(grad_out.shape[0], *self.input_shape)

    @property
    def connections_per_neuron(self) -> int:
        return 1

    @property
    def macs(self) -> int:
        return 0

    @property
    def weight_count(self) -> int:
        return 0


class Dense(Layer):
    """Fully connected layer: every output neuron sees every input neuron."""

    connectivity = "full"

    def __init__(self, units: int, activation: Activation | None = None,
                 **kwargs) -> None:
        if units < 1:
            raise ConfigurationError(f"units must be >= 1, got {units}")
        super().__init__(activation=activation, **kwargs)
        self.units = units

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ConfigurationError(
                f"Dense expects a flat input, got {input_shape}; "
                f"insert a Flatten layer first")
        return (self.units,)

    def allocate(self, rng: np.random.Generator) -> None:
        fan_in = self.input_shape[0]
        self.params = {
            "weight": initializers.glorot_uniform(
                (self.units, fan_in), fan_in, self.units, rng),
            "bias": initializers.zeros((self.units,)),
        }
        self.quantize_params()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._x = x
        y = x @ self.params["weight"].T + self.params["bias"]
        return self._activate(y, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_y = self._activation_grad(grad_out)
        self.grads["weight"] = grad_y.T @ self._x
        self.grads["bias"] = grad_y.sum(axis=0)
        return grad_y @ self.params["weight"]

    @property
    def connections_per_neuron(self) -> int:
        self._require_built()
        return self.input_shape[0]


class PixelwiseDense(Layer):
    """Per-pixel fully connected layer over the channel dimension.

    Maps ``(C_in, H, W)`` to ``(units, H, W)`` by applying one shared
    ``units x C_in`` weight matrix at every pixel.  Mathematically a 1x1
    convolution; kept as its own class because the Neurocube compiler maps
    it with fully connected (vector) semantics per pixel, as the paper's
    scene-labeling classifier layers require.
    """

    connectivity = "full"

    def __init__(self, units: int, activation: Activation | None = None,
                 **kwargs) -> None:
        if units < 1:
            raise ConfigurationError(f"units must be >= 1, got {units}")
        super().__init__(activation=activation, **kwargs)
        self.units = units

    def compute_output_shape(
            self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ConfigurationError(
                f"PixelwiseDense expects (C, H, W) input, got {input_shape}")
        return (self.units, input_shape[1], input_shape[2])

    def allocate(self, rng: np.random.Generator) -> None:
        fan_in = self.input_shape[0]
        self.params = {
            "weight": initializers.glorot_uniform(
                (self.units, fan_in), fan_in, self.units, rng),
            "bias": initializers.zeros((self.units,)),
        }
        self.quantize_params()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._x = x
        y = np.einsum("oc,bchw->bohw", self.params["weight"], x,
                      optimize=True)
        y += self.params["bias"][None, :, None, None]
        return self._activate(y, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_y = self._activation_grad(grad_out)
        self.grads["weight"] = np.einsum(
            "bohw,bchw->oc", grad_y, self._x, optimize=True)
        self.grads["bias"] = grad_y.sum(axis=(0, 2, 3))
        return np.einsum("oc,bohw->bchw", self.params["weight"], grad_y,
                         optimize=True)

    @property
    def connections_per_neuron(self) -> int:
        self._require_built()
        return self.input_shape[0]
