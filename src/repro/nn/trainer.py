"""Mini-batch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.loss import Loss
from repro.nn.network import Network
from repro.nn.optim import Optimizer


@dataclass
class TrainingResult:
    """Outcome of a training run.

    Attributes:
        epoch_losses: mean training loss per epoch.
        final_loss: the last epoch's mean loss.
        samples_seen: total samples processed.
    """

    epoch_losses: list[float] = field(default_factory=list)
    samples_seen: int = 0

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ConfigurationError("no epochs were run")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        """True when the final loss is below the first epoch's loss."""
        return (len(self.epoch_losses) >= 2
                and self.epoch_losses[-1] < self.epoch_losses[0])


class Trainer:
    """Runs mini-batch SGD epochs over an in-memory dataset.

    Args:
        network: the model to train.
        loss: loss function.
        optimizer: update rule.
        batch_size: mini-batch size; the last partial batch is used too.
        shuffle: reshuffle sample order every epoch.
        seed: RNG seed for shuffling.
    """

    def __init__(self, network: Network, loss: Loss, optimizer: Optimizer,
                 batch_size: int = 8, shuffle: bool = True,
                 seed: int = 0) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        self.network = network
        self.loss = loss
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        pred = self.network.forward(x, training=True)
        loss_value = self.loss.value(pred, y)
        self.network.backward(self.loss.gradient(pred, y))
        self.optimizer.step(self.network)
        return loss_value

    def fit(self, x: np.ndarray, y: np.ndarray,
            epochs: int = 1) -> TrainingResult:
        """Train for ``epochs`` passes over ``(x, y)``."""
        if len(x) != len(y):
            raise ConfigurationError(
                f"{len(x)} inputs vs {len(y)} targets")
        if len(x) == 0:
            raise ConfigurationError("empty training set")
        result = TrainingResult()
        indices = np.arange(len(x))
        for _ in range(epochs):
            if self.shuffle:
                self._rng.shuffle(indices)
            batch_losses = []
            for start in range(0, len(indices), self.batch_size):
                batch = indices[start:start + self.batch_size]
                batch_losses.append(self.train_batch(x[batch], y[batch]))
                result.samples_seen += len(batch)
            result.epoch_losses.append(float(np.mean(batch_losses)))
        return result

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss over a dataset without updating parameters."""
        losses = []
        for start in range(0, len(x), self.batch_size):
            pred = self.network.predict(x[start:start + self.batch_size])
            losses.append(
                self.loss.value(pred, y[start:start + self.batch_size]))
        return float(np.mean(losses))
