"""Sequential network container."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer


class Network:
    """A feed-forward stack of layers with forward and backward passes.

    This is the object the Neurocube compiler consumes: its layers carry
    both the arithmetic (for functional verification) and the mapping
    metadata (neuron counts, connectivity) for PNG programming.

    Args:
        layers: the layers in execution order.
        input_shape: per-sample input shape, e.g. ``(3, 240, 320)``.
        name: network name used in reports.
        seed: RNG seed for parameter initialisation.
    """

    def __init__(self, layers: Iterable[Layer], input_shape: tuple[int, ...],
                 name: str = "network", seed: int = 0) -> None:
        self.layers = list(layers)
        if not self.layers:
            raise ConfigurationError("a Network needs at least one layer")
        self.input_shape = tuple(input_shape)
        self.name = name
        rng = np.random.default_rng(seed)
        shape = self.input_shape
        seen: set[str] = set()
        for index, layer in enumerate(self.layers):
            if layer.name in seen:
                layer.name = f"{layer.name}_{index}"
            seen.add(layer.name)
            shape = layer.build(shape, rng)
        self.output_shape = shape

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network on batched input ``(B, *input_shape)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != self.input_shape:
            raise ConfigurationError(
                f"input shape {x.shape[1:]} does not match the network's "
                f"input shape {self.input_shape} (did you forget the batch "
                f"axis?)")
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate a loss gradient; fills each layer's ``grads``."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # aggregate metadata
    # ------------------------------------------------------------------

    @property
    def total_ops(self) -> int:
        """Arithmetic ops for one forward pass of one sample."""
        return sum(layer.ops for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """MACs for one forward pass of one sample."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        """Total parameter count."""
        return sum(layer.weight_count for layer in self.layers)

    def parameters(self) -> Iterator[tuple[Layer, str, np.ndarray]]:
        """Yield ``(layer, key, array)`` for every parameter tensor."""
        for layer in self.layers:
            for key, value in layer.params.items():
                yield layer, key, value

    def summary(self) -> str:
        """Human-readable per-layer table (shapes, connections, ops)."""
        rows = [f"{self.name}: input {self.input_shape}"]
        header = (f"{'layer':<16}{'output shape':<18}{'conn/neuron':>12}"
                  f"{'neurons':>10}{'MACs':>14}{'weights':>12}")
        rows.append(header)
        rows.append("-" * len(header))
        for layer in self.layers:
            rows.append(
                f"{layer.name:<16}{str(layer.output_shape):<18}"
                f"{layer.connections_per_neuron:>12}"
                f"{layer.neuron_count:>10}{layer.macs:>14,}"
                f"{layer.weight_count:>12,}")
        rows.append(f"total MACs {self.total_macs:,}  "
                    f"ops {self.total_ops:,}  weights {self.total_weights:,}")
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (f"Network(name={self.name!r}, layers={len(self.layers)}, "
                f"{self.input_shape}->{self.output_shape})")
