"""Gradient-descent optimisers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network


class Optimizer:
    """Base optimiser: applies layer gradients to layer parameters."""

    def step(self, network: Network) -> None:
        """Apply one update using the gradients stored in each layer."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    After each update, layers with a Q-format re-round their parameters so
    weights stay representable in the hardware's Q1.7.8 storage.
    """

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, network: Network) -> None:
        for layer in network.layers:
            for key, param in layer.params.items():
                if key not in layer.grads:
                    raise ConfigurationError(
                        f"layer {layer.name!r} has no gradient for "
                        f"{key!r}; run backward() before step()")
                grad = layer.grads[key]
                if self.momentum > 0.0:
                    slot = (id(layer), key)
                    velocity = self._velocity.get(slot)
                    if velocity is None:
                        velocity = np.zeros_like(param)
                    velocity = self.momentum * velocity - self.lr * grad
                    self._velocity[slot] = velocity
                    layer.params[key] = param + velocity
                else:
                    layer.params[key] = param - self.lr * grad
            layer.quantize_params()
