"""Activation functions, including the LUT-quantised variants of the paper.

The Neurocube implements the non-linear activate function ``N.L()`` of Eq. 2
as a look-up table inside each PNG (§IV-A).  :class:`ActivationLUT` models
that: it tabulates any activation over the Q1.7.8 input domain and evaluates
by table lookup, so the same object serves both the functional NN substrate
and the PNG hardware model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fixedpoint import Q_1_7_8, QFormat, from_float, to_float


class Activation:
    """Base class for differentiable activation functions."""

    #: short name used by the compiler and reports.
    name = "activation"

    def forward(self, y: np.ndarray) -> np.ndarray:
        """Apply the activation element-wise to pre-activations ``y``."""
        raise NotImplementedError

    def derivative(self, y: np.ndarray) -> np.ndarray:
        """d(activation)/dy evaluated at pre-activations ``y``."""
        raise NotImplementedError

    def __call__(self, y: np.ndarray) -> np.ndarray:
        return self.forward(y)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Pass-through activation (used by pooling and output layers)."""

    name = "identity"

    def forward(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=np.float64)

    def derivative(self, y: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(y, dtype=np.float64))


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, y: np.ndarray) -> np.ndarray:
        return np.maximum(y, 0.0)

    def derivative(self, y: np.ndarray) -> np.ndarray:
        return (np.asarray(y) > 0.0).astype(np.float64)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, y: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.asarray(y, dtype=np.float64)))

    def derivative(self, y: np.ndarray) -> np.ndarray:
        s = self.forward(y)
        return s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, y: np.ndarray) -> np.ndarray:
        return np.tanh(y)

    def derivative(self, y: np.ndarray) -> np.ndarray:
        t = np.tanh(y)
        return 1.0 - t * t


class PiecewiseLinear(Activation):
    """The cellular neural network output function [29].

    ``f(y) = 0.5 * (|y + 1| - |y - 1|)`` — identity on [-1, 1], clamped
    to +-1 outside.  Used when programming CeNN layers (paper §VI: a
    locally connected layer "like Cellular Neural Network" maps the same
    way as a 2D convolution, with this function in the LUT).
    """

    name = "piecewise_linear"

    def forward(self, y: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(y, dtype=np.float64), -1.0, 1.0)

    def derivative(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64)
        return ((y > -1.0) & (y < 1.0)).astype(np.float64)


class ActivationLUT(Activation):
    """A look-up-table realisation of an activation (paper §IV-A, Fig. 8a).

    The table is indexed by the raw fixed-point pre-activation value; it
    covers the full Q-format input domain, so lookup is exact for any
    representable input.  The PNG reprograms this table per layer, which is
    how the paper supports per-layer activations (e.g. LSTM gates, §VI).

    Args:
        base: the real-valued activation being tabulated.
        fmt: fixed-point format of inputs and outputs.
    """

    def __init__(self, base: Activation, fmt: QFormat = Q_1_7_8) -> None:
        if fmt.total_bits > 24:
            raise ConfigurationError(
                f"LUT over a {fmt.total_bits}-bit domain would need "
                f"{1 << fmt.total_bits} entries; refusing above 24 bits")
        self.base = base
        self.fmt = fmt
        self.name = f"lut({base.name})"
        raw_inputs = np.arange(fmt.min_raw, fmt.max_raw + 1, dtype=np.int64)
        outputs = base.forward(to_float(raw_inputs, fmt))
        self._table = from_float(outputs, fmt)
        self._offset = -fmt.min_raw

    @property
    def entries(self) -> int:
        """Number of table entries (``2 ** total_bits``)."""
        return len(self._table)

    def lookup_raw(self, raw: np.ndarray) -> np.ndarray:
        """Table lookup on raw fixed-point values (the hardware path)."""
        raw = np.asarray(raw, dtype=np.int64)
        clipped = np.clip(raw, self.fmt.min_raw, self.fmt.max_raw)
        return self._table[clipped + self._offset]

    def forward(self, y: np.ndarray) -> np.ndarray:
        """Quantise ``y`` to the LUT domain, look up, return real values."""
        return to_float(self.lookup_raw(from_float(y, self.fmt)), self.fmt)

    def derivative(self, y: np.ndarray) -> np.ndarray:
        """Derivative of the underlying smooth activation.

        Training through a LUT uses the smooth derivative (straight-through
        on the quantisation), the standard practice for fixed-point training.
        """
        return self.base.derivative(y)

    def max_abs_error(self) -> float:
        """Worst-case |LUT(y) - base(y)| over the representable domain."""
        raw_inputs = np.arange(self.fmt.min_raw, self.fmt.max_raw + 1,
                               dtype=np.int64)
        y = to_float(raw_inputs, self.fmt)
        return float(np.max(np.abs(to_float(self._table, self.fmt)
                                   - self.base.forward(y))))


_BUILTINS: dict[str, type[Activation]] = {
    "identity": Identity,
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "piecewise_linear": PiecewiseLinear,
}


def by_name(name: str) -> Activation:
    """Instantiate a built-in activation by its short name."""
    try:
        return _BUILTINS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown activation {name!r}; "
            f"known: {sorted(_BUILTINS)}") from None
