"""Job vocabulary of the simulation service.

Everything here is plain data: specs cross the worker-process boundary
as dicts, records live only in the supervisor.  The retry/backoff
fields of :class:`ServicePolicy` deliberately reuse the
:class:`repro.faults.FaultConfig` vocabulary (``max_retries``, a
``backoff * 2**(k-1)`` schedule) so service-level retries read like the
simulator's fault retries, and a quarantined poison job is recorded
with the same :class:`repro.faults.DegradedResult` ledger type the
fault injector uses.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError

#: Workload kinds a job may request.  ``poison`` always raises inside
#: the worker — it exists so tests (and the chaos smoke) can exercise
#: the retry/quarantine path without patching anything.
WORKLOADS = ("inference", "training", "streaming", "poison")


class JobState:
    """Terminal and transient job states (plain strings on the wire)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    DEGRADED = "degraded"
    REJECTED = "rejected"
    CANCELLED = "cancelled"

    #: States a job never leaves; :meth:`JobRecord.terminal` tests these.
    TERMINAL = (DONE, DEGRADED, REJECTED, CANCELLED)


class Overloaded(Exception):
    """Typed admission rejection: the queue is full or draining.

    Attributes:
        retry_after: suggested seconds before resubmitting (a hint
            derived from queue depth and recent service rate, not a
            promise).
        reason: ``"queue_full"`` or ``"draining"``.
    """

    def __init__(self, retry_after: float, reason: str = "queue_full"):
        self.retry_after = float(retry_after)
        self.reason = reason
        super().__init__(
            f"service overloaded ({reason}); retry after "
            f"{self.retry_after:.3f}s")


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asks for: one simulation job.

    Attributes:
        workload: one of :data:`WORKLOADS`.
        tenant: fair-share lane this job bills to.
        seed: deterministic workload seed — two jobs with equal specs
            produce bit-identical results, which is what makes retry
            and chaos replay checkable.
        frames: streamed frames (``streaming`` only).
        epochs: training epochs (``training`` only).
        deadline_s: seconds from submission until the job must have
            finished; None disables the deadline.
        preemptible: allow deadline preemption: the job is killed at a
            checkpoint boundary and resumed on another worker instead
            of being degraded (``training`` jobs checkpoint per epoch).
        checkpoint_keep_last: epoch snapshots retained per training job
            (:attr:`repro.faults.CheckpointSpec.keep_last`).
    """

    workload: str = "inference"
    tenant: str = "default"
    seed: int = 0
    frames: int = 4
    epochs: int = 3
    deadline_s: float | None = None
    preemptible: bool = False
    checkpoint_keep_last: int = 2

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {WORKLOADS}")
        if self.frames < 1:
            raise ConfigurationError(
                f"frames must be >= 1, got {self.frames}")
        if self.epochs < 1:
            raise ConfigurationError(
                f"epochs must be >= 1, got {self.epochs}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {self.deadline_s}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> JobSpec:
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown job-spec fields {sorted(unknown)}")
        return cls(**data)


@dataclass
class JobResult:
    """What a finished job carries back to its tenant.

    Attributes:
        output_digest: sha256 hex digest of the workload's output bytes
            — the bit-identity handle for retry/replay checks.
        cycles: total simulated cycles billed to the job.
        warm_plan: True when the compiled program came from the
            cross-request plan cache (no compile in the worker).
        plan_verified: True when the worker re-verified the shipped
            plan hashes (always True unless the cache went stale).
        memo: folded memo-store counters of the run, when any.
        detail: workload-specific extras (frame counts, epochs run,
            resume cycle, ...).
    """

    output_digest: str = ""
    cycles: int = 0
    warm_plan: bool = False
    plan_verified: bool = True
    memo: dict | None = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> JobResult:
        return cls(**data)


_job_seq = itertools.count()


@dataclass
class JobRecord:
    """Supervisor-side lifecycle record of one submitted job.

    Attributes:
        job_id: service-unique id handed back to the tenant.
        seq: monotone submission sequence number — the chaos
            controller's site key, stable across retries.
        spec: the submitted :class:`JobSpec`.
        state: a :class:`JobState` constant.
        attempts: dispatch attempts so far (1 on the first run).
        worker_history: worker names that ran (or started) this job.
        ledger: append-only failure records — one dict per crash,
            timeout, preemption or quarantine, in the
            :class:`repro.faults.DegradedResult` field vocabulary.
        result: the :class:`JobResult` once terminal-successful.
        error: last failure detail for degraded/rejected jobs.
        submitted_at / finished_at: service-loop timestamps.
        not_before: earliest dispatch time (retry backoff).
    """

    job_id: str
    seq: int
    spec: JobSpec
    state: str = JobState.PENDING
    attempts: int = 0
    worker_history: list[str] = field(default_factory=list)
    ledger: list[dict] = field(default_factory=list)
    result: JobResult | None = None
    error: str = ""
    submitted_at: float = 0.0
    finished_at: float = 0.0
    not_before: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def latency_s(self) -> float:
        if not self.terminal:
            return 0.0
        return max(0.0, self.finished_at - self.submitted_at)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "worker_history": list(self.worker_history),
            "ledger": [dict(entry) for entry in self.ledger],
            "result": self.result.to_dict() if self.result else None,
            "error": self.error,
            "latency_s": self.latency_s,
        }


def next_seq() -> int:
    """The next job submission sequence number (process-wide)."""
    return next(_job_seq)


@dataclass(frozen=True)
class ServicePolicy:
    """Tunable service behaviour, all in one picklable place.

    Attributes:
        workers: supervised worker processes.
        max_queue_depth: admission bound; a submit beyond it raises
            :class:`Overloaded`.
        tenant_weights: relative dequeue weights per tenant; tenants
            not listed get weight 1.
        max_retries: attempts before a failing job is quarantined
            (the :class:`repro.faults.FaultConfig` field of the same
            name, lifted to job granularity).
        retry_backoff_s: base of the exponential backoff — retry k
            waits ``retry_backoff_s * 2**(k-1)`` seconds, the
            ``FaultConfig.retry_backoff`` schedule in host seconds.
        heartbeat_interval_s: worker heartbeat period.
        heartbeat_timeout_s: silence after which a worker is declared
            dead and its job retried.
        tick_s: supervisor loop period.
        checkpoint_dir: where training jobs keep epoch snapshots
            (required for preemptible training jobs).
        memo_dir: persistent memo store shared by all workers' cold
            timing phases; None disables it.
        plan_cache: enable the cross-request compiled-plan cache.
    """

    workers: int = 2
    max_queue_depth: int = 8
    tenant_weights: dict = field(default_factory=dict)
    max_retries: int = 3
    retry_backoff_s: float = 0.05
    heartbeat_interval_s: float = 0.05
    heartbeat_timeout_s: float = 1.0
    tick_s: float = 0.02
    checkpoint_dir: str | None = None
    memo_dir: str | None = None
    plan_cache: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}")
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        for value, name in ((self.retry_backoff_s, "retry_backoff_s"),
                            (self.heartbeat_interval_s,
                             "heartbeat_interval_s"),
                            (self.heartbeat_timeout_s,
                             "heartbeat_timeout_s"),
                            (self.tick_s, "tick_s")):
            if value <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0, got {value}")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): base * 2**(k-1)."""
        return self.retry_backoff_s * (2 ** max(0, attempt - 1))

    def weight_for(self, tenant: str) -> int:
        weight = int(self.tenant_weights.get(tenant, 1))
        return max(1, weight)
