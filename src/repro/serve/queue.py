"""Bounded admission queue with weighted-fair tenant dequeue.

Admission control is the service's first line of defence: a full queue
rejects immediately with a typed :class:`~repro.serve.jobs.Overloaded`
carrying a retry-after hint, instead of buffering unboundedly until the
process dies.  Dequeue runs smooth weighted round-robin over tenant
lanes (the nginx algorithm): each pick, every non-empty eligible lane
gains its weight in credit, the richest lane is picked, and the pick
pays the total credit handed out — so over time each tenant's share of
dispatches converges to its weight share, without starving anyone, and
with a deterministic tie-break (lane name) so tests can pin orderings.
"""

from __future__ import annotations

from collections import deque

from repro.serve.jobs import JobRecord, Overloaded, ServicePolicy


class AdmissionQueue:
    """Per-tenant lanes behind one global admission bound."""

    def __init__(self, policy: ServicePolicy) -> None:
        self.policy = policy
        self._lanes: dict[str, deque[JobRecord]] = {}
        self._credit: dict[str, float] = {}
        self.draining = False
        self.accepted = 0
        self.rejected = 0

    @property
    def depth(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def retry_after(self) -> float:
        """The rejection hint: one backoff base per queued job.

        Deliberately crude — it only needs to scale with load so
        well-behaved clients spread their retries.
        """
        return self.policy.retry_backoff_s * max(1, self.depth)

    def push(self, record: JobRecord, force: bool = False) -> None:
        """Admit one job, or raise :class:`Overloaded`.

        ``force`` bypasses the bound and the drain gate: re-admission
        of an already-accepted job (a retry after a worker crash) must
        never be rejected — the admission decision was taken once, at
        submit time.
        """
        if not force:
            if self.draining:
                self.rejected += 1
                raise Overloaded(self.retry_after(), reason="draining")
            if self.depth >= self.policy.max_queue_depth:
                self.rejected += 1
                raise Overloaded(self.retry_after())
            self.accepted += 1
        tenant = record.spec.tenant
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = deque()
            self._credit.setdefault(tenant, 0.0)
        if force:
            # Retries go to the front of their lane: the job already
            # waited its turn once.
            lane.appendleft(record)
        else:
            lane.append(record)

    def _eligible(self, tenant: str, now: float) -> bool:
        lane = self._lanes.get(tenant)
        return bool(lane) and lane[0].not_before <= now

    def pop(self, now: float) -> JobRecord | None:
        """The next job under weighted-fair round-robin, or None.

        A lane whose head is still in retry backoff (``not_before`` in
        the future) is skipped this pick without earning credit.
        """
        eligible = sorted(tenant for tenant in self._lanes
                          if self._eligible(tenant, now))
        if not eligible:
            return None
        total = 0
        for tenant in eligible:
            weight = self.policy.weight_for(tenant)
            self._credit[tenant] += weight
            total += weight
        best = max(eligible, key=lambda t: (self._credit[t], t))
        self._credit[best] -= total
        record = self._lanes[best].popleft()
        if not self._lanes[best]:
            del self._lanes[best]
        return record

    def remove(self, job_id: str) -> JobRecord | None:
        """Pull one queued job out (cancellation); None if not queued."""
        for tenant, lane in list(self._lanes.items()):
            for record in lane:
                if record.job_id == job_id:
                    lane.remove(record)
                    if not lane:
                        del self._lanes[tenant]
                    return record
        return None

    def queued(self) -> list[JobRecord]:
        """Every queued record (deadline sweeps iterate this)."""
        return [record for lane in self._lanes.values()
                for record in lane]

    def drain(self) -> None:
        """Close admission: every further non-forced push rejects."""
        self.draining = True
