"""Deterministic chaos harness for the simulation service.

Chaos decisions are drawn from :class:`repro.faults.DeterministicRNG`
under fixed site keys — ``f(seed, site, job_seq, attempt)`` — with no
ambient entropy anywhere, so a chaos run is replayable by seed: the
same seed kills the same job attempts at the same workload stages
every time, which is what lets tests assert that a SIGKILL'd job's
retry is bit-identical to an undisturbed run.

The plan for one attempt rides inside the job message; the *worker*
executes it (killing itself at a stage boundary, or going silent to
trip the heartbeat timeout).  Parent-side timing never decides what
dies, so the harness has no races.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.rng import DeterministicRNG

#: RNG site keys (stable; new sites get new numbers, never reuse).
SITE_KILL = 0x5EC1
SITE_STALL = 0x5EC2


@dataclass(frozen=True)
class ChaosConfig:
    """What to break, how often, and under which seed.

    Attributes:
        seed: the chaos seed; every decision derives from it.
        kill_rate: probability an attempt's worker SIGKILLs itself.
        stall_rate: probability an attempt's worker goes silent
            (heartbeats stop) long enough to trip the liveness timeout.
        stall_s: how long a stalled worker sleeps.
        stage: workload stage at which a kill fires (``"start"``,
            ``"mid"``, ``"finish"``, ``"epoch"`` or ``"frame"``); for
            indexed stages the index is drawn deterministically.
        first_attempt_only: only ever disturb attempt 1 of a job, so a
            retried job runs clean — the configuration the bit-identity
            chaos gate uses.  False keeps injecting on retries (the
            poison-quarantine path).
    """

    seed: int
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.5
    stage: str = "mid"
    first_attempt_only: bool = True

    def __post_init__(self) -> None:
        for rate, name in ((self.kill_rate, "kill_rate"),
                           (self.stall_rate, "stall_rate")):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}")
        if self.stall_s <= 0:
            raise ConfigurationError(
                f"stall_s must be > 0, got {self.stall_s}")


@dataclass
class ChaosController:
    """Draws per-attempt chaos plans; lives in the supervisor.

    Attributes:
        config: the :class:`ChaosConfig` in force.
        planned: every non-None plan handed out, in draw order —
            the replay log tests assert against.
    """

    config: ChaosConfig
    planned: list = field(default_factory=list)

    def plan_for(self, job_seq: int, attempt: int) -> dict | None:
        """The chaos plan for one dispatch attempt, or None.

        Pure in (config.seed, job_seq, attempt): dispatch order,
        worker identity and wall-clock never matter.
        """
        if self.config.first_attempt_only and attempt > 1:
            return None
        rng = DeterministicRNG(self.config.seed)
        plan = None
        if rng.bernoulli(self.config.kill_rate, SITE_KILL, job_seq,
                         attempt):
            plan = {"action": "kill", "stage": self.config.stage}
        elif rng.bernoulli(self.config.stall_rate, SITE_STALL, job_seq,
                           attempt):
            plan = {"action": "stall", "stall_s": self.config.stall_s}
        if plan is not None:
            self.planned.append(
                {"job_seq": job_seq, "attempt": attempt, **plan})
        return plan


def make_probe(plan: dict | None):
    """The worker-side chaos probe for one kill plan (identity-free).

    Returns a ``probe(stage, index)`` callable that SIGKILLs the
    current process at the plan's stage — indistinguishable from an
    OOM kill as far as the supervisor can tell.  Stage ``"mid"``
    matches any mid-workload stage (``mid``/``epoch``/``frame``) so
    one config covers every workload kind; a plan whose stage never
    occurs fires at ``"finish"`` instead, so a planned kill always
    happens (the replay log stays truthful).  Stall plans are handled
    by the worker loop itself, not the probe.
    """
    if plan is None or plan.get("action") != "kill":
        return None

    want_stage = plan["stage"]

    def probe(stage: str, index: int = 0) -> None:
        import os
        import signal

        matched = (stage == want_stage
                   or (want_stage == "mid"
                       and stage in ("epoch", "frame"))
                   or stage == "finish")
        if matched:
            os.kill(os.getpid(), signal.SIGKILL)

    return probe
