"""Local-socket front end: JSON-lines over a Unix domain socket.

One request per line, one response per line; every response carries
``"ok"`` plus either the operation's payload or ``"error"`` /
``"retry_after"``.  The wire protocol is deliberately tiny — the
service API *is* :class:`~repro.serve.service.SimulationService`; this
module only exposes it to other processes (the ``ncserve`` CLI, the CI
``serve`` job) without inventing a second semantics.

Ops: ``ping``, ``submit``, ``status``, ``result`` (blocks until the
job is terminal), ``cancel``, ``stats``, ``drain`` (graceful: empties
the queue, then stops the pool) and ``shutdown`` (stops the server
loop).  Backpressure crosses the wire as
``{"ok": false, "error": "overloaded", "retry_after": ...}``.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.errors import ConfigurationError
from repro.serve.jobs import JobSpec, Overloaded
from repro.serve.service import SimulationService


async def _handle_request(service: SimulationService, request: dict,
                          shutdown: asyncio.Event) -> dict:
    op = request.get("op")
    try:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            spec = JobSpec.from_dict(request.get("spec", {}))
            return {"ok": True, "job_id": service.submit(spec)}
        if op == "status":
            return {"ok": True, "job": service.status(request["job_id"])}
        if op == "result":
            job = await service.result(
                request["job_id"], timeout_s=request.get("timeout_s"))
            return {"ok": True, "job": job}
        if op == "cancel":
            return {"ok": True,
                    "cancelled": service.cancel(request["job_id"])}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "drain":
            return {"ok": True, "stats": await service.drain()}
        if op == "shutdown":
            shutdown.set()
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": f"unknown op {op!r}"}
    except Overloaded as error:
        return {"ok": False, "error": "overloaded",
                "reason": error.reason,
                "retry_after": error.retry_after}
    except (KeyError, ConfigurationError) as error:
        return {"ok": False, "error": str(error)}


async def serve_socket(service: SimulationService, path: str,
                       ready_file: str | None = None) -> None:
    """Run the socket server until a ``shutdown`` op arrives.

    The service must not be started yet; this owns its lifecycle.
    ``ready_file`` (when given) is created once the socket is
    listening — the CI job's start barrier.
    """
    shutdown = asyncio.Event()
    await service.start()

    async def on_client(reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        try:
            while not shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    response = {"ok": False,
                                "error": f"bad json: {error}"}
                else:
                    response = await _handle_request(service, request,
                                                     shutdown)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except asyncio.CancelledError:
            # Server shutdown cancels open client readers; that is the
            # normal exit, not an error to log.
            pass
        finally:
            writer.close()

    server = await asyncio.start_unix_server(on_client, path=path)
    if ready_file is not None:
        # One async write would be overkill for a touch(); the linter
        # pragma records that this is a deliberate, one-shot blocking
        # call before any traffic exists.
        # nclint: allow(NC112) startup barrier, pre-traffic
        open(ready_file, "w").close()
    async with server:
        await shutdown.wait()
    await service.stop()


class ServeClient:
    """Blocking JSON-lines client (the CLI side; plain sync code)."""

    def __init__(self, path: str, timeout_s: float = 60.0) -> None:
        self.path = path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(path)
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, **fields) -> dict:
        payload = {"op": op, **fields}
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        self._file.close()
        self._sock.close()

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
