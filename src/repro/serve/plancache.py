"""Cross-request compiled-plan cache.

The Neurocube programmability story (PAPER.md §IV) at service scale:
structurally identical requests — any tenant, any seed — share one
compiled :class:`~repro.core.layerdesc.NeurocubeProgram`.  The cache
key is the workload's *structure* plus :func:`repro.memo.store.
memo_fingerprint` of the service configuration, so a timing-model or
config change can never serve a stale program; the cached value
additionally records every pass plan's
:meth:`~repro.core.scheduler.PassPlan.structural_hash`, and the worker
re-verifies those hashes against the shipped program before running it
(the memo store's NC207 key=>hash discipline, applied to plans).
"""

from __future__ import annotations

import pickle

from repro.core.parallel import task_plan_hashes


def program_plan_hashes(config, program) -> tuple[str, ...]:
    """Structural hashes of every plan a program's descriptors imply.

    Timing-only task construction (``layer=None``) is used for conv and
    pool descriptors — the same chains :func:`~repro.core.parallel.
    run_map_task` builds in timing mode — and the bare FC pass for fc
    descriptors, so the hash list is a pure function of (config,
    program) and recomputes identically in any process.
    """
    from repro.core.scheduler import build_fc_pass
    from repro.core.simulator import NeurocubeSimulator

    simulator = NeurocubeSimulator(config)
    hashes: list[str] = []
    for desc in program.descriptors:
        if desc.kind == "fc":
            plan = build_fc_pass(desc, config, None, None, None, None)
            hashes.append(plan.structural_hash())
            continue
        if desc.kind == "pool":
            tasks = simulator._pool_tasks(desc, None, None)
        else:
            tasks = simulator._conv_tasks(desc, None, None)
        for task in tasks:
            hashes.extend(task_plan_hashes(config, desc, None, task))
    return tuple(hashes)


class PlanCache:
    """In-memory compile-once/serve-many program cache.

    Values are pickled programs (ready to ship over the worker pipe)
    plus their plan-hash manifest.  Counters feed the
    ``neurocube_serve_plan_cache`` metric family.
    """

    def __init__(self, config) -> None:
        from repro.memo.store import memo_fingerprint

        self.config = config
        self.fingerprint = memo_fingerprint(config)
        self._entries: dict[tuple, tuple[bytes, tuple[str, ...]]] = {}
        self.hits = 0
        self.misses = 0
        self.rejects = 0

    def _key(self, workload_key: tuple) -> tuple:
        return (self.fingerprint,) + tuple(workload_key)

    def get(self, workload_key: tuple):
        """``(program_bytes, plan_hashes)`` for a key, or None (cold)."""
        entry = self._entries.get(self._key(workload_key))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, workload_key: tuple, program) -> tuple[bytes, tuple]:
        """Insert a freshly compiled program; returns the stored entry."""
        hashes = program_plan_hashes(self.config, program)
        entry = (pickle.dumps(program, pickle.HIGHEST_PROTOCOL), hashes)
        self._entries[self._key(workload_key)] = entry
        return entry

    def invalidate(self, workload_key: tuple) -> None:
        """Drop an entry a worker reported as failing verification."""
        self.rejects += 1
        self._entries.pop(self._key(workload_key), None)

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "rejects": self.rejects, "entries": len(self._entries)}
