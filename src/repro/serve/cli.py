"""``ncserve``: command-line front end of the simulation service.

``serve`` runs the socket server; ``submit``/``status``/``result``/
``cancel``/``stats``/``drain``/``shutdown`` talk to a running one;
``batch`` drives the CI mixed-workload scenario (cold + warm + over-
deadline + queue flood) and ``smoke`` runs the seeded chaos gate fully
in-process — kill a worker mid-job, assert every job still reaches a
terminal state with outputs bit-identical to an undisturbed run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile

from repro.serve.chaos import ChaosConfig, ChaosController
from repro.serve.jobs import JobSpec, ServicePolicy
from repro.serve.service import SimulationService


def _spec_from_args(args) -> JobSpec:
    return JobSpec(workload=args.workload, tenant=args.tenant,
                   seed=args.seed, frames=args.frames,
                   epochs=args.epochs, deadline_s=args.deadline,
                   preemptible=args.preemptible)


def _add_spec_flags(parser) -> None:
    parser.add_argument("--workload", default="inference",
                        choices=("inference", "training", "streaming",
                                 "poison"))
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--preemptible", action="store_true")


def _policy_from_args(args) -> ServicePolicy:
    return ServicePolicy(workers=args.workers,
                         max_queue_depth=args.queue_depth,
                         memo_dir=args.memo_dir,
                         checkpoint_dir=args.checkpoint_dir)


def _client(args):
    from repro.serve.protocol import ServeClient

    return ServeClient(args.socket, timeout_s=args.timeout)


def _print(doc: dict) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _cmd_serve(args) -> int:
    from repro.serve.protocol import serve_socket

    service = SimulationService(_policy_from_args(args))
    asyncio.run(serve_socket(service, args.socket,
                             ready_file=args.ready_file))
    return 0


def _cmd_submit(args) -> int:
    with _client(args) as client:
        response = client.request("submit",
                                  spec=_spec_from_args(args).to_dict())
        if response.get("ok") and args.wait:
            response = client.request("result",
                                      job_id=response["job_id"])
    _print(response)
    return 0 if response.get("ok") else 1


def _cmd_simple(op: str):
    def run(args) -> int:
        with _client(args) as client:
            fields = ({"job_id": args.job_id}
                      if hasattr(args, "job_id") else {})
            response = client.request(op, **fields)
        if op == "stats" and args.out and response.get("ok"):
            with open(args.out, "w") as handle:
                json.dump(response["stats"], handle, indent=2,
                          sort_keys=True)
        _print(response)
        return 0 if response.get("ok") else 1
    return run


def _cmd_batch(args) -> int:
    """The CI mixed batch: cold, warm, over-deadline, then a flood."""
    with _client(args) as client:
        submitted = []
        mix = ([("inference", None)] * args.cold
               + [("streaming", None)] * args.warm
               + [("inference", args.deadline)] * args.over_deadline)
        for index, (workload, deadline) in enumerate(mix):
            response = client.request(
                "submit", spec=JobSpec(workload=workload, seed=index,
                                       deadline_s=deadline).to_dict())
            if not response.get("ok"):
                _print(response)
                return 1
            submitted.append(response["job_id"])
        jobs = [client.request("result", job_id=job_id)["job"]
                for job_id in submitted]
        rejects = 0
        flood_ids = []
        for index in range(args.flood):
            response = client.request(
                "submit", spec=JobSpec(workload="streaming",
                                       seed=1000 + index,
                                       frames=2).to_dict())
            if not response.get("ok"):
                if response.get("error") != "overloaded":
                    _print(response)
                    return 1
                rejects += 1
            else:
                flood_ids.append(response["job_id"])
        for job_id in flood_ids:
            jobs.append(client.request("result", job_id=job_id)["job"])
        stats = client.request("stats")["stats"]
    states = sorted({job["state"] for job in jobs})
    summary = {"jobs": len(jobs), "states": states,
               "flood_rejects": rejects,
               "queue_rejected": stats["queue"]["rejected"]}
    _print(summary)
    from repro.serve.jobs import JobState

    if any(state not in JobState.TERMINAL for state in states):
        print("batch: non-terminal job state", file=sys.stderr)
        return 1
    if args.flood and rejects == 0:
        print("batch: queue flood produced no rejects", file=sys.stderr)
        return 1
    return 0


async def _run_jobs(service: SimulationService,
                    specs: list[JobSpec]) -> list[dict]:
    """Start a service, run every spec to a terminal state, stop."""
    await service.start()
    job_ids = [service.submit(spec) for spec in specs]
    jobs = [await service.result(job_id, timeout_s=120.0)
            for job_id in job_ids]
    await service.stop()
    return jobs


def _smoke_specs(checkpointed: bool) -> list[JobSpec]:
    return [
        JobSpec(workload="inference", seed=1),
        JobSpec(workload="streaming", seed=2, frames=2),
        JobSpec(workload="training", seed=3, epochs=3,
                preemptible=checkpointed),
    ]


def _cmd_smoke(args) -> int:
    """Seeded chaos gate, fully in-process.  Exit 0 iff it holds."""
    with tempfile.TemporaryDirectory(prefix="ncserve-smoke-") as tmp:
        def policy() -> ServicePolicy:
            return ServicePolicy(workers=2,
                                 checkpoint_dir=f"{tmp}/ckpt",
                                 memo_dir=f"{tmp}/memo")

        baseline = asyncio.run(_run_jobs(
            SimulationService(policy()), _smoke_specs(True)))
        chaos = ChaosController(ChaosConfig(
            seed=args.seed, kill_rate=1.0, stage="mid",
            first_attempt_only=True))
        service = SimulationService(policy(), chaos=chaos)
        disturbed = asyncio.run(_run_jobs(service, _smoke_specs(True)))
    failures = []
    for base, job in zip(baseline, disturbed, strict=True):
        if job["state"] != "done":
            failures.append(f"{job['job_id']}: state {job['state']}")
        elif (job["result"]["output_digest"]
              != base["result"]["output_digest"]):
            failures.append(f"{job['job_id']}: digest diverged "
                            f"after chaos retry")
    if not chaos.planned:
        failures.append("chaos harness planned no kills")
    if not any(job["attempts"] > 1 for job in disturbed):
        failures.append("no job was actually retried")
    summary = {"seed": args.seed, "planned_kills": len(chaos.planned),
               "jobs": [{"job_id": j["job_id"], "state": j["state"],
                         "attempts": j["attempts"]} for j in disturbed],
               "failures": failures}
    _print(summary)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ncserve",
        description="Fault-tolerant Neurocube simulation service "
                    "(see docs/serving.md).")
    parser.add_argument("--socket", default="/tmp/ncserve.sock",
                        help="unix socket path (default: %(default)s)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="client request timeout seconds")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the socket service")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--queue-depth", type=int, default=8,
                   dest="queue_depth")
    p.add_argument("--memo-dir", default=None)
    p.add_argument("--checkpoint-dir", default=None)
    p.add_argument("--ready-file", default=None,
                   help="touched once the socket is listening")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit one job")
    _add_spec_flags(p)
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    p.set_defaults(func=_cmd_submit)

    for op, needs_id in (("status", True), ("result", True),
                         ("cancel", True), ("stats", False),
                         ("drain", False), ("shutdown", False)):
        p = sub.add_parser(op)
        if needs_id:
            p.add_argument("job_id")
        if op == "stats":
            p.add_argument("--out", default=None,
                           help="also write the manifest JSON here")
        p.set_defaults(func=_cmd_simple(op))

    p = sub.add_parser("batch",
                       help="CI mixed batch against a running service")
    p.add_argument("--cold", type=int, default=2)
    p.add_argument("--warm", type=int, default=2)
    p.add_argument("--over-deadline", type=int, default=1,
                   dest="over_deadline")
    p.add_argument("--deadline", type=float, default=0.001)
    p.add_argument("--flood", type=int, default=16)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("smoke",
                       help="in-process seeded chaos gate")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
