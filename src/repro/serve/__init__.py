"""Simulation-as-a-service: a supervised, fault-tolerant job service.

``repro.serve`` turns the experiment runner into a long-lived
multi-tenant service: inference, training and streaming jobs are
submitted through an in-process API (:class:`SimulationService`) or a
local Unix socket (:mod:`repro.serve.protocol`, the ``ncserve`` CLI)
and packed onto a pool of supervised worker processes.

Robustness is the point, not the request plumbing:

* a bounded admission queue rejects overload with a typed
  :class:`Overloaded` carrying a retry-after hint;
* tenants share the queue under smooth weighted-fair dequeue;
* per-job deadlines reject stale queued work and preempt or degrade
  running work;
* worker liveness is heartbeat-based; a crashed (SIGKILL'd) or wedged
  worker is detected, its job retried with bounded exponential backoff
  (the :class:`repro.faults.FaultConfig` backoff vocabulary), and a
  poison job is quarantined as a :class:`repro.faults.DegradedResult`
  after ``max_retries`` — never an infinite retry loop;
* long training jobs checkpoint at epoch boundaries through
  :class:`repro.faults.CheckpointStore`, so preemption migrates them to
  another worker bit-identically;
* a cross-request plan cache (:mod:`repro.serve.plancache`) keyed by
  plan structural hashes + the :func:`repro.memo.memo_fingerprint`
  makes warm submissions skip compilation.

Failure handling is *testable* because it is deterministic: the chaos
harness (:mod:`repro.serve.chaos`) drives worker kills and stalls from
:class:`repro.faults.DeterministicRNG` site keys, so every chaos run is
replayable by seed.  See ``docs/serving.md``.
"""

from repro.serve.chaos import ChaosConfig, ChaosController
from repro.serve.jobs import (JobRecord, JobResult, JobSpec, JobState,
                              Overloaded, ServicePolicy)
from repro.serve.plancache import PlanCache
from repro.serve.queue import AdmissionQueue
from repro.serve.service import SimulationService

__all__ = [
    "AdmissionQueue",
    "ChaosConfig",
    "ChaosController",
    "JobRecord",
    "JobResult",
    "JobSpec",
    "JobState",
    "Overloaded",
    "PlanCache",
    "ServicePolicy",
    "SimulationService",
]
