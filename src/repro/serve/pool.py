"""Supervised worker processes for the simulation service.

A worker is a raw :class:`multiprocessing.Process` with a duplex pipe —
deliberately *not* a ``ProcessPoolExecutor``, which declares the whole
pool broken when any worker dies.  Here a SIGKILL'd worker is an
expected event: the supervisor notices (dead process or missed
heartbeats), respawns a fresh worker, and retries the victim's job.

Inside the worker, :func:`repro.core.parallel.set_inline_only` pins all
pass executors to the in-process path — a job asking for parallel
passes must not fork a nested pool under an already-supervised process.
A daemon heartbeat thread sends liveness beats over the pipe (guarded
by a lock so beats never interleave with result frames); the chaos
harness's ``stall`` plan simply pauses that thread, which is exactly
what a wedged worker looks like from outside.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.serve import workloads
from repro.serve.chaos import make_probe
from repro.serve.jobs import JobSpec


def _worker_main(conn, heartbeat_interval_s: float) -> None:
    """Worker entry point: recv job frames, send result/error frames."""
    from repro.core import parallel

    parallel.set_inline_only(True)
    send_lock = threading.Lock()
    beating = threading.Event()
    beating.set()
    stop = threading.Event()

    def heartbeat() -> None:
        while not stop.wait(heartbeat_interval_s):
            if not beating.is_set():
                continue
            try:
                with send_lock:
                    conn.send({"kind": "heartbeat"})
            except (BrokenPipeError, OSError):
                return

    thread = threading.Thread(target=heartbeat, daemon=True)
    thread.start()

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message.get("kind") == "stop":
            break
        if message.get("kind") != "job":
            continue
        job_id = message["job_id"]
        chaos = message.get("chaos")
        if chaos is not None and chaos.get("action") == "stall":
            # A stalled worker goes silent (no heartbeats) and sleeps:
            # from the supervisor this is indistinguishable from a hang
            # and must trip the liveness timeout.
            beating.clear()
            stop.wait(float(chaos.get("stall_s", 0.5)))
            beating.set()
        probe = make_probe(chaos)
        try:
            spec = JobSpec.from_dict(message["spec"])
            result = workloads.execute_job(
                spec, job_id, message.get("context", {}),
                program_bytes=message.get("program"),
                plan_hashes=message.get("plan_hashes"),
                chaos_probe=probe or workloads._no_chaos)
            frame = {"kind": "result", "job_id": job_id, "result": result}
        except BaseException as error:  # noqa: B036 - report, don't die
            frame = {"kind": "error", "job_id": job_id,
                     "error": f"{type(error).__name__}: {error}"}
        try:
            with send_lock:
                conn.send(frame)
        except (BrokenPipeError, OSError):
            break
    stop.set()


class SupervisedWorker:
    """Parent-side handle of one worker process."""

    def __init__(self, name: str, heartbeat_interval_s: float) -> None:
        self.name = name
        self.heartbeat_interval_s = heartbeat_interval_s
        self.process: multiprocessing.Process | None = None
        self.conn = None
        self.busy_job: str | None = None
        self.last_heartbeat = 0.0
        self.restarts = 0

    def spawn(self, now: float) -> None:
        """(Re)start the worker process with a fresh pipe."""
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child, self.heartbeat_interval_s),
            name=self.name, daemon=True)
        self.process.start()
        child.close()
        self.conn = parent
        self.busy_job = None
        self.last_heartbeat = now

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def idle(self) -> bool:
        return self.alive and self.busy_job is None

    def dispatch(self, frame: dict) -> None:
        self.conn.send(frame)
        self.busy_job = frame["job_id"]

    def drain_frames(self) -> list[dict]:
        """All frames the worker has sent, without blocking.

        A dead worker's half-closed pipe surfaces as EOF/era errors
        here; the supervisor treats that exactly like a missed
        heartbeat (the process poll is the authority).
        """
        frames = []
        try:
            while self.conn is not None and self.conn.poll(0):
                frames.append(self.conn.recv())
        except (EOFError, OSError):
            pass
        return frames

    def kill(self) -> None:
        """Hard-stop the process (preemption, liveness, shutdown)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def stop(self) -> None:
        """Polite stop: ask first, then reap."""
        try:
            if self.conn is not None:
                self.conn.send({"kind": "stop"})
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=2.0)
        self.kill()
