"""The simulation service: supervision, retries, deadlines, drain.

:class:`SimulationService` is a single asyncio supervisor over the
worker pool: one periodic tick drains worker pipes, checks heartbeats,
sweeps deadlines and dispatches queued jobs.  All state mutation
happens on the event loop; workers only ever see self-contained job
frames, so there is no shared state to corrupt when one dies.

Failure policy in one paragraph: a worker that crashes (SIGKILL,
hard exception) or goes silent past the heartbeat timeout is killed
and respawned; its job retries with the
:class:`repro.faults.FaultConfig` backoff schedule
(``retry_backoff_s * 2**(k-1)``), preferring a different worker, until
``max_retries`` is exhausted — then the job is quarantined as a
``degraded`` terminal state carrying a
:class:`repro.faults.DegradedResult`-shaped ledger entry (the poison-
job circuit breaker: nothing retries forever).  Deadlines reject
queued jobs that expired while waiting, degrade non-preemptible
running jobs, and *preempt* preemptible ones: the worker is killed at
whatever checkpoint boundary it last crossed and the job migrates to
another worker, resuming from its newest epoch snapshot bit-identically.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.errors import ConfigurationError
from repro.obs.live import MetricsRegistry, current_live
from repro.serve.chaos import ChaosController
from repro.serve.jobs import (JobRecord, JobResult, JobSpec, JobState,
                              Overloaded, ServicePolicy, next_seq)
from repro.serve.plancache import PlanCache
from repro.serve.pool import SupervisedWorker
from repro.serve.queue import AdmissionQueue
from repro.serve.workloads import serve_config


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty list (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class SimulationService:
    """In-process service facade; see the module docstring.

    Args:
        policy: the :class:`ServicePolicy` in force.
        chaos: optional :class:`~repro.serve.chaos.ChaosController` —
            tests only; production passes None and no chaos code runs.
        registry: metrics sink; defaults to the ambient live-telemetry
            registry when one is active, else a private one.
    """

    def __init__(self, policy: ServicePolicy | None = None,
                 chaos: ChaosController | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.policy = policy or ServicePolicy()
        self.chaos = chaos
        if registry is None:
            live = current_live()
            registry = live.registry if live is not None else (
                MetricsRegistry())
        self.metrics = registry
        self.config = serve_config()
        self.plan_cache = (PlanCache(self.config)
                           if self.policy.plan_cache else None)
        self.queue = AdmissionQueue(self.policy)
        self.jobs: dict[str, JobRecord] = {}
        self.workers: list[SupervisedWorker] = []
        self._events: dict[str, asyncio.Event] = {}
        self._latencies: dict[str, list[float]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._supervisor: asyncio.Task | None = None
        self._running = False
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn the pool and the supervisor tick."""
        if self._running:
            return
        self._loop = asyncio.get_running_loop()
        now = self._now()
        for index in range(self.policy.workers):
            worker = SupervisedWorker(
                f"serve-worker-{index}",
                self.policy.heartbeat_interval_s)
            worker.spawn(now)
            self.workers.append(worker)
        self._running = True
        self._supervisor = asyncio.create_task(self._supervise())

    async def stop(self) -> None:
        """Hard shutdown: stop supervision, stop every worker."""
        self._running = False
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        for worker in self.workers:
            worker.stop()
        self.workers.clear()

    async def drain(self) -> dict:
        """Graceful shutdown: close admission, finish in-flight work.

        New submissions get :class:`Overloaded(reason="draining")`
        immediately; queued and running jobs run to a terminal state
        (including their retry/quarantine handling); the call returns
        once the queue is empty and every worker is idle, then stops
        the pool.  Returns the final manifest.
        """
        self._draining = True
        self.queue.drain()
        while self.queue.depth or any(w.busy_job for w in self.workers):
            await asyncio.sleep(self.policy.tick_s)
        manifest = self.stats()
        await self.stop()
        return manifest

    def _now(self) -> float:
        if self._loop is None:
            raise ConfigurationError("service is not started")
        return self._loop.time()

    # -- tenant API -----------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Admit one job or raise :class:`Overloaded`; returns job id."""
        if not self._running:
            raise ConfigurationError("service is not running")
        try:
            record = JobRecord(job_id="", seq=next_seq(), spec=spec,
                               submitted_at=self._now())
            record.job_id = f"job-{record.seq:06d}"
            self.queue.push(record)
        except Overloaded as error:
            self.metrics.inc("neurocube_serve_admission_rejects",
                             reason=error.reason)
            raise
        self.jobs[record.job_id] = record
        self._events[record.job_id] = asyncio.Event()
        self._gauge_depth()
        return record.job_id

    def status(self, job_id: str) -> dict:
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        return record.to_dict()

    async def result(self, job_id: str,
                     timeout_s: float | None = None) -> dict:
        """Wait for a job's terminal state; returns its record dict."""
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        if not record.terminal:
            waiter = self._events[job_id].wait()
            if timeout_s is not None:
                await asyncio.wait_for(waiter, timeout_s)
            else:
                await waiter
        return record.to_dict()

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; False once terminal."""
        record = self.jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        if record.terminal:
            return False
        if self.queue.remove(job_id) is None:
            for worker in self.workers:
                if worker.busy_job == job_id:
                    self._respawn(worker, cause="cancel")
                    break
        self._finish(record, JobState.CANCELLED)
        return True

    # -- supervisor tick ------------------------------------------------

    async def _supervise(self) -> None:
        while self._running:
            self.tick()
            await asyncio.sleep(self.policy.tick_s)

    def tick(self) -> None:
        """One supervision round (public for deterministic tests)."""
        now = self._now()
        self._collect_frames(now)
        self._check_liveness(now)
        self._sweep_deadlines(now)
        self._dispatch(now)
        self._gauge_depth()

    def _collect_frames(self, now: float) -> None:
        for worker in self.workers:
            for frame in worker.drain_frames():
                kind = frame.get("kind")
                if kind == "heartbeat":
                    worker.last_heartbeat = now
                elif kind == "result":
                    self._on_result(worker, frame, now)
                elif kind == "error":
                    self._on_error(worker, frame, now)

    def _on_result(self, worker: SupervisedWorker, frame: dict,
                   now: float) -> None:
        worker.busy_job = None
        worker.last_heartbeat = now
        record = self.jobs.get(frame["job_id"])
        if record is None or record.terminal:
            return
        result = JobResult.from_dict(frame["result"])
        if not result.plan_verified and self.plan_cache is not None:
            self.plan_cache.invalidate(self._workload_key(record.spec))
            self.metrics.inc("neurocube_serve_plan_cache",
                             outcome="stale")
        record.result = result
        self._finish(record, JobState.DONE)

    def _on_error(self, worker: SupervisedWorker, frame: dict,
                  now: float) -> None:
        worker.busy_job = None
        worker.last_heartbeat = now
        record = self.jobs.get(frame["job_id"])
        if record is None or record.terminal:
            return
        self._retry_or_quarantine(record, kind="worker_exception",
                                  detail=frame.get("error", ""), now=now)

    def _check_liveness(self, now: float) -> None:
        for worker in self.workers:
            victim = worker.busy_job
            dead = not worker.alive
            silent = (worker.last_heartbeat
                      + self.policy.heartbeat_timeout_s) < now
            if not dead and not silent:
                continue
            if dead or silent:
                cause = "crash" if dead else "heartbeat_timeout"
                self._respawn(worker, cause=cause)
                if victim is not None:
                    record = self.jobs.get(victim)
                    if record is not None and not record.terminal:
                        self._retry_or_quarantine(
                            record, kind=f"worker_{cause}",
                            detail=f"{worker.name} {cause}", now=now)

    def _respawn(self, worker: SupervisedWorker, cause: str) -> None:
        worker.kill()
        worker.restarts += 1
        worker.spawn(self._now())
        self.metrics.inc("neurocube_serve_worker_restarts", cause=cause)

    def _sweep_deadlines(self, now: float) -> None:
        for record in self.queue.queued():
            deadline = record.spec.deadline_s
            if deadline is None:
                continue
            if record.submitted_at + deadline < now:
                self.queue.remove(record.job_id)
                record.error = "deadline expired while queued"
                record.ledger.append(
                    {"kind": "deadline_queued", "cycle": 0,
                     "detail": record.error})
                self._finish(record, JobState.REJECTED)
        for worker in self.workers:
            if worker.busy_job is None:
                continue
            record = self.jobs.get(worker.busy_job)
            if record is None or record.spec.deadline_s is None:
                continue
            if record.submitted_at + record.spec.deadline_s >= now:
                continue
            if record.spec.preemptible:
                # Preemption/migration: kill at the last checkpoint
                # boundary, clear the deadline (it already fired once)
                # and requeue — dispatch prefers a different worker.
                self._respawn(worker, cause="deadline_preempt")
                record.ledger.append(
                    {"kind": "deadline_preempted", "cycle": 0,
                     "detail": f"preempted on {worker.name}; migrating"})
                record.spec = dataclasses.replace(record.spec,
                                                  deadline_s=None)
                record.state = JobState.PENDING
                record.not_before = now
                self.metrics.inc("neurocube_serve_job_retries")
                self.queue.push(record, force=True)
            else:
                self._respawn(worker, cause="deadline_exceeded")
                record.error = "deadline exceeded while running"
                record.ledger.append(
                    {"kind": "deadline_exceeded", "cycle": 0,
                     "detail": record.error})
                self._finish(record, JobState.DEGRADED)

    def _retry_or_quarantine(self, record: JobRecord, kind: str,
                             detail: str, now: float) -> None:
        record.ledger.append({"kind": kind, "cycle": 0, "detail": detail})
        if record.attempts > self.policy.max_retries:
            # The circuit breaker: repeated failure means the job, not
            # the worker.  Quarantine as degraded, never retry again.
            record.error = (f"quarantined after {record.attempts} "
                            f"attempts: {detail}")
            record.ledger.append(
                {"kind": "poison_quarantined", "cycle": 0,
                 "detail": record.error})
            self._finish(record, JobState.DEGRADED)
            return
        record.not_before = now + self.policy.backoff_s(record.attempts)
        record.state = JobState.PENDING
        self.metrics.inc("neurocube_serve_job_retries")
        self.queue.push(record, force=True)

    def _workload_key(self, spec: JobSpec) -> tuple:
        # Seed and tenant are *data*; the compiled program depends only
        # on the workload's structure.
        return ("serve_convpool", spec.workload)

    def _dispatch(self, now: float) -> None:
        idle = [worker for worker in self.workers if worker.idle]
        while idle:
            record = self.queue.pop(now)
            if record is None:
                return
            # Prefer a worker the job has not failed on (migration).
            worker = next((w for w in idle
                           if w.name not in record.worker_history),
                          idle[0])
            idle.remove(worker)
            self._dispatch_to(worker, record)

    def _dispatch_to(self, worker: SupervisedWorker,
                     record: JobRecord) -> None:
        record.attempts += 1
        record.state = JobState.RUNNING
        record.worker_history.append(worker.name)
        program = plan_hashes = None
        if (self.plan_cache is not None
                and record.spec.workload != "poison"):
            key = self._workload_key(record.spec)
            entry = self.plan_cache.get(key)
            if entry is None:
                from repro.core.compiler import compile_inference
                from repro.serve.workloads import serve_network

                entry = self.plan_cache.put(
                    key, compile_inference(serve_network(self.config),
                                           self.config))
                self.metrics.inc("neurocube_serve_plan_cache",
                                 outcome="miss")
            else:
                self.metrics.inc("neurocube_serve_plan_cache",
                                 outcome="hit")
            program, plan_hashes = entry
        chaos = (self.chaos.plan_for(record.seq, record.attempts)
                 if self.chaos is not None else None)
        frame = {"kind": "job", "job_id": record.job_id,
                 "seq": record.seq, "attempt": record.attempts,
                 "spec": record.spec.to_dict(),
                 "program": program,
                 "plan_hashes": (list(plan_hashes)
                                 if plan_hashes else None),
                 "chaos": chaos,
                 "context": {
                     "checkpoint_dir": self.policy.checkpoint_dir,
                     "memo_dir": self.policy.memo_dir,
                     "checkpoint_label": f"serve.{record.job_id}",
                 }}
        try:
            worker.dispatch(frame)
        except (BrokenPipeError, OSError):
            # Worker died between ticks; liveness will respawn it and
            # retry the job.
            worker.busy_job = record.job_id

    def _finish(self, record: JobRecord, state: str) -> None:
        record.state = state
        record.finished_at = self._now()
        self.metrics.inc("neurocube_serve_jobs", state=state)
        if state in (JobState.DONE, JobState.DEGRADED):
            latency_ms = record.latency_s * 1000.0
            self._latencies.setdefault(record.spec.tenant,
                                       []).append(latency_ms)
            self.metrics.observe("neurocube_serve_job_latency_ms",
                                 max(1, round(latency_ms)),
                                 tenant=record.spec.tenant)
        event = self._events.get(record.job_id)
        if event is not None:
            event.set()

    def _gauge_depth(self) -> None:
        self.metrics.set_gauge("neurocube_serve_queue_depth",
                               self.queue.depth)

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        """The service manifest (``ncserve stats``)."""
        states: dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        tenants = {
            tenant: {
                "jobs": len(latencies),
                "p50_ms": round(_percentile(latencies, 0.50), 3),
                "p99_ms": round(_percentile(latencies, 0.99), 3),
            }
            for tenant, latencies in sorted(self._latencies.items())
        }
        return {
            "kind": "neurocube-serve-manifest",
            "running": self._running,
            "draining": self._draining,
            "queue": {"depth": self.queue.depth,
                      "accepted": self.queue.accepted,
                      "rejected": self.queue.rejected,
                      "max_depth": self.policy.max_queue_depth},
            "workers": [{"name": w.name, "alive": w.alive,
                         "busy_job": w.busy_job,
                         "restarts": w.restarts}
                        for w in self.workers],
            "jobs": {"total": len(self.jobs), "by_state": states},
            "tenants": tenants,
            "plan_cache": (self.plan_cache.counters()
                           if self.plan_cache is not None else None),
            "chaos": ({"seed": self.chaos.config.seed,
                       "planned": list(self.chaos.planned)}
                      if self.chaos is not None else None),
            "metrics": self.metrics.snapshot(),
        }
