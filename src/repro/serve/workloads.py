"""Service workloads: what a worker actually runs for one job.

Every workload is a deterministic function of its :class:`JobSpec` —
same spec, same bit-identical output digest — which is what makes the
service's failure handling *checkable*: a retried job after a worker
SIGKILL, or a training job preempted and resumed on another worker,
must reproduce the digest of an undisturbed run exactly.

Workloads run entirely inside a supervised worker process (the module
is import-light so worker startup stays cheap).  Chaos injection points
(:func:`execute_job`'s ``chaos_probe``) bracket each workload stage;
the probe is a no-op in production and a deterministic kill/stall site
under the chaos harness.
"""

from __future__ import annotations

import hashlib
import pickle

import numpy as np

from repro.errors import ConfigurationError

#: Deterministic seed of the served network's parameters.
_NET_SEED = 23

#: Input shape of the served workload network (16x16 tiles cleanly
#: over the 16 vault channels; see ``ext_stream``).
INPUT_SHAPE = (1, 16, 16)

#: Training jobs update this many host-side weights per epoch.
_TRAIN_WEIGHTS = 32


class PoisonJobError(RuntimeError):
    """The ``poison`` workload's unconditional failure."""


def serve_config():
    """The service's fixed simulator configuration (one per process)."""
    from repro.core.config import NeurocubeConfig

    return NeurocubeConfig.hmc_15nm()


def serve_network(config):
    """The served workload network: a small LUT-activated conv front end.

    Activations are :class:`~repro.nn.activations.ActivationLUT`-wrapped
    so the streaming workload's functional fast path is bit-exact
    against simulated outputs (same contract as ``ext_stream``).
    """
    from repro import nn
    from repro.nn.activations import ActivationLUT, Tanh

    layers = [
        nn.Conv2D(4, 3, activation=ActivationLUT(Tanh()), name="conv",
                  qformat=config.qformat),
        nn.MaxPool2D(2, name="pool"),
    ]
    return nn.Network(layers, input_shape=INPUT_SHAPE,
                      name="serve_convpool", seed=_NET_SEED)


def job_frames(seed: int, count: int) -> list[np.ndarray]:
    """``count`` deterministic input frames for a job seed."""
    rng = np.random.default_rng(int(seed) & 0xFFFFFFFF)
    return [rng.uniform(-1.0, 1.0, INPUT_SHAPE) for _ in range(count)]


def _digest(*arrays: np.ndarray) -> str:
    """sha256 over the raw bytes of the arrays, in order."""
    feed = hashlib.sha256()
    for array in arrays:
        arr = np.ascontiguousarray(np.asarray(array))
        feed.update(str(arr.shape).encode())
        feed.update(arr.dtype.str.encode())
        feed.update(arr.tobytes())
    return feed.hexdigest()


#: Plan-hash verifications this process has already done, keyed by the
#: shipped program bytes' digest.  Workers are long-lived: the first
#: warm job recomputes the structural hashes (the NC207-style check),
#: every later job with byte-identical program ships skips straight to
#: unpickling.  The bytes digest pins the memo to the exact payload, so
#: a changed program can never ride a stale verification.
_VERIFIED_PLANS: dict[str, tuple] = {}


def _load_program(config, network, program_bytes, plan_hashes):
    """The compiled program: cache-shipped (verified) or freshly built.

    Returns ``(program, warm, verified)``.  A shipped program is only
    trusted after its plan structural hashes recompute to the shipped
    list (the plan cache's NC207-style key=>hash invariant); on
    mismatch the worker falls back to a fresh compile and reports
    ``verified=False`` so the supervisor can count the stale entry.
    Verification is memoized per program payload (see
    :data:`_VERIFIED_PLANS`) so the steady-state warm path does not
    re-pay the hash recomputation on every job.
    """
    from repro.core.compiler import compile_inference
    from repro.serve.plancache import program_plan_hashes

    if program_bytes is not None:
        digest = hashlib.sha256(program_bytes).hexdigest()
        live = _VERIFIED_PLANS.get(digest)
        if live is None:
            live = program_plan_hashes(config,
                                       pickle.loads(program_bytes))
            _VERIFIED_PLANS[digest] = live
        if plan_hashes is None or tuple(plan_hashes) == live:
            return pickle.loads(program_bytes), True, True
        return compile_inference(network, config), False, False
    return compile_inference(network, config), False, True


def _run_layers(simulator, network, program, x):
    """Per-layer functional run of a precompiled program.

    The body of :meth:`NeurocubeSimulator.run_network` minus its
    internal compile — the service compiles (or cache-loads) once per
    distinct plan, not once per job.
    """
    from repro.fixedpoint import quantize_float
    from repro.nn.layers import Flatten

    descriptors = {d.layer_index: d for d in program.descriptors}
    current = quantize_float(np.asarray(x, dtype=np.float64),
                             simulator.config.qformat)
    cycles = 0
    for index, layer in enumerate(network.layers):
        if isinstance(layer, Flatten):
            current = current.reshape(-1)
            continue
        run = simulator.run_descriptor(descriptors[index], layer, current)
        cycles += run.cycles
        current = run.output
    return current, cycles


def _timing_cycles(simulator, network, program):
    """Timing-only cycles of every compute layer of a program."""
    from repro.nn.layers import Flatten

    descriptors = {d.layer_index: d for d in program.descriptors}
    cycles = 0
    memo = None
    for index, layer in enumerate(network.layers):
        if isinstance(layer, Flatten):
            continue
        run = simulator.run_descriptor(descriptors[index])
        cycles += run.cycles
        if run.memo_stats is not None:
            if memo is None:
                memo = run.memo_stats
            else:
                memo.merge(run.memo_stats)
    return cycles, memo


def _no_chaos(stage: str, index: int = 0) -> None:
    return None


def execute_job(spec, job_id: str, context: dict,
                program_bytes: bytes | None = None,
                plan_hashes=None, chaos_probe=_no_chaos) -> dict:
    """Run one job to completion inside the current process.

    Args:
        spec: the job's :class:`repro.serve.jobs.JobSpec`.
        job_id: service job id (training checkpoint label namespace).
        context: host-side wiring: ``checkpoint_dir`` / ``memo_dir``
            (either may be None) and, for training resume, the
            ``checkpoint_label`` the supervisor pinned at first
            dispatch.
        program_bytes: pickled compiled program from the plan cache, or
            None to compile here (the cold path).
        plan_hashes: the cache entry's recorded plan structural hashes;
            verified against the shipped program before use.
        chaos_probe: deterministic fault-injection hook; called as
            ``chaos_probe(stage, index)`` at every stage boundary.

    Returns a :class:`repro.serve.jobs.JobResult` field dict.
    """
    from repro.core.simulator import NeurocubeSimulator

    chaos_probe("start", 0)
    if spec.workload == "poison":
        raise PoisonJobError(f"poison job {job_id} failed (by design)")

    config = serve_config()
    network = serve_network(config)
    memo = None
    if context.get("memo_dir"):
        from repro.memo.store import MemoStore

        memo = MemoStore(context["memo_dir"], config)
    simulator = NeurocubeSimulator(config, memo=memo)
    program, warm, verified = _load_program(config, network,
                                            program_bytes, plan_hashes)
    chaos_probe("mid", 0)

    if spec.workload == "inference":
        frame = job_frames(spec.seed, 1)[0]
        output, cycles = _run_layers(simulator, network, program, frame)
        result = {"output_digest": _digest(output), "cycles": cycles,
                  "detail": {"frames": 1}}
    elif spec.workload == "streaming":
        result = _run_streaming(spec, simulator, network, program,
                                chaos_probe)
    elif spec.workload == "training":
        result = _run_training(spec, job_id, context, simulator, network,
                               program, chaos_probe)
    else:
        raise ConfigurationError(
            f"unhandled workload {spec.workload!r}")

    chaos_probe("finish", 0)
    result["warm_plan"] = warm
    result["plan_verified"] = verified
    if memo is not None and memo.stats.any:
        result["memo"] = memo.stats.as_dict()
    return result


def _run_streaming(spec, simulator, network, program, chaos_probe) -> dict:
    """Streaming job: timing once (memo-served when warm), frames warm.

    The cold timing phase is the memoizable part — with a persistent
    memo store ambient in the worker a warm submission replays timing
    from disk and only runs the functional fast path per frame.
    """
    from repro.fixedpoint import quantize_float

    cycles, memo_stats = _timing_cycles(simulator, network, program)
    outputs = []
    for index, frame in enumerate(job_frames(spec.seed, spec.frames)):
        chaos_probe("frame", index)
        quantized = quantize_float(frame, simulator.config.qformat)
        outputs.append(network.forward(quantized[np.newaxis])[0])
    return {"output_digest": _digest(*outputs), "cycles": cycles,
            "detail": {"frames": len(outputs)}}


def _run_training(spec, job_id, context, simulator, network, program,
                  chaos_probe) -> dict:
    """Training job: epoch loop with per-epoch checkpoints.

    Each epoch cycle-simulates the first compute layer timing-only (the
    job's simulated-cycle bill) and applies a deterministic host-side
    weight update; the post-epoch state is snapshotted into a
    :class:`repro.faults.CheckpointStore` under the job's label.  A
    preempted (killed) job re-dispatched anywhere resumes from the
    newest epoch snapshot and reaches bit-identical final weights —
    the update is a pure function of (weights, epoch).
    """
    rng = np.random.default_rng(int(spec.seed) & 0xFFFFFFFF)
    weights = rng.standard_normal(_TRAIN_WEIGHTS)
    cycles = 0
    start_epoch = 0
    resumed_from = None
    store = None
    label = context.get("checkpoint_label") or f"serve.{job_id}"
    if context.get("checkpoint_dir"):
        from repro.faults.checkpoint import CheckpointStore

        store = CheckpointStore(context["checkpoint_dir"],
                                keep_last=spec.checkpoint_keep_last)
        latest = store.latest(label)
        if latest is not None:
            state = store.load(label, latest)
            weights = state["weights"]
            cycles = int(state["cycles"])
            start_epoch = int(state["epoch"]) + 1
            resumed_from = latest
    first_desc = program.descriptors[0]
    for epoch in range(start_epoch, spec.epochs):
        chaos_probe("epoch", epoch)
        run = simulator.run_descriptor(first_desc)
        cycles += run.cycles
        weights = np.tanh(weights + 0.05 * np.sin((epoch + 1) * weights))
        if store is not None:
            store.save(label, epoch, {"epoch": epoch, "weights": weights,
                                      "cycles": cycles})
    return {"output_digest": _digest(weights), "cycles": cycles,
            "detail": {"epochs": spec.epochs, "start_epoch": start_epoch,
                       "resumed_from": resumed_from}}
