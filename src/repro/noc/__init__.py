"""Network-on-chip substrate.

Cycle-level model of the paper's 2D-mesh NoC (§III-C): one router per PE,
six input and six output channels (four neighbours + PE + memory),
16-deep packet buffers, credit-based (backpressure) flow control,
deterministic X-Y table routing, and rotating daisy-chain priority
arbitration updated every cycle.  A fully connected topology (Fig. 6b) is
provided for the Fig. 15b study.
"""

from repro.noc.packet import Packet, PacketKind, FLIT_BITS
from repro.noc.buffer import CreditedBuffer
from repro.noc.arbiter import RotatingPriorityArbiter
from repro.noc.routing import LOCAL_PORTS, Port
from repro.noc.router import Router
from repro.noc.topology import FullyConnected, Mesh2D, Topology
from repro.noc.interconnect import Interconnect, NocStats
from repro.noc.cubelink import CubeLinkModel, CubeLinkStats

__all__ = [
    "Packet",
    "PacketKind",
    "FLIT_BITS",
    "CreditedBuffer",
    "RotatingPriorityArbiter",
    "Port",
    "LOCAL_PORTS",
    "Router",
    "Topology",
    "Mesh2D",
    "FullyConnected",
    "Interconnect",
    "NocStats",
    "CubeLinkModel",
    "CubeLinkStats",
]
