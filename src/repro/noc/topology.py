"""NoC topologies: 2D mesh (Fig. 6a) and fully connected (Fig. 6b)."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.noc.packet import Packet
from repro.noc.routing import (
    OPPOSITE,
    Port,
    PortKey,
    local_delivery_port,
    xy_route,
)


class Topology:
    """Abstract wiring plan: ports per node, link targets, route tables."""

    n_nodes: int

    def link_ports(self, node: int) -> list[PortKey]:
        """Directional (non-local) ports present at ``node``."""
        raise NotImplementedError

    def link_target(self, node: int, port: PortKey) -> tuple[int, PortKey]:
        """The ``(node, input port)`` a packet leaving ``(node, port)`` hits."""
        raise NotImplementedError

    def next_port(self, node: int, packet: Packet) -> PortKey:
        """Output port a packet takes from ``node`` (the routing table)."""
        raise NotImplementedError

    def min_hops(self, src: int, dst: int) -> int:
        """Router-to-router link traversals on the routing path."""
        raise NotImplementedError

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(
                f"node {node} out of range 0..{self.n_nodes - 1}")


class Mesh2D(Topology):
    """A ``rows x cols`` 2D mesh with deterministic X-Y routing.

    The paper's configuration is 4x4 (16 vaults/PEs).  Border routers
    simply lack the off-edge ports.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"mesh dimensions must be >= 1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.n_nodes = rows * cols

    @classmethod
    def for_nodes(cls, n_nodes: int) -> Mesh2D:
        """Near-square mesh for ``n_nodes`` (must factorise)."""
        from repro.memory.layout import grid_dimensions

        rows, cols = grid_dimensions(n_nodes)
        return cls(rows, cols)

    def coords(self, node: int) -> tuple[int, int]:
        """Node id to ``(row, col)``."""
        self._check_node(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"({row}, {col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def link_ports(self, node: int) -> list[PortKey]:
        row, col = self.coords(node)
        ports: list[PortKey] = []
        if row > 0:
            ports.append(Port.NORTH)
        if row < self.rows - 1:
            ports.append(Port.SOUTH)
        if col < self.cols - 1:
            ports.append(Port.EAST)
        if col > 0:
            ports.append(Port.WEST)
        return ports

    def link_target(self, node: int, port: PortKey) -> tuple[int, PortKey]:
        row, col = self.coords(node)
        delta = {Port.NORTH: (-1, 0), Port.SOUTH: (1, 0),
                 Port.EAST: (0, 1), Port.WEST: (0, -1)}
        if port not in delta:
            raise ConfigurationError(f"{port} is not a mesh link port")
        d_row, d_col = delta[port]
        return self.node_at(row + d_row, col + d_col), OPPOSITE[port]

    def next_port(self, node: int, packet: Packet) -> PortKey:
        row, col = self.coords(node)
        dst_row, dst_col = self.coords(packet.dst)
        step = xy_route(row, col, dst_row, dst_col)
        if step is None:
            return local_delivery_port(packet.kind)
        return step

    def min_hops(self, src: int, dst: int) -> int:
        src_row, src_col = self.coords(src)
        dst_row, dst_col = self.coords(dst)
        return abs(src_row - dst_row) + abs(src_col - dst_col)

    @property
    def diameter(self) -> int:
        """Longest minimal path in hops."""
        return (self.rows - 1) + (self.cols - 1)

    @property
    def bisection_links(self) -> int:
        """Links crossing the narrower bisection cut."""
        if self.cols >= self.rows:
            return self.rows
        return self.cols

    def __repr__(self) -> str:
        return f"Mesh2D({self.rows}x{self.cols})"


class FullyConnected(Topology):
    """Every router directly linked to every other (Fig. 6b).

    A node's peer ports are keyed ``("peer", other)``.  The paper notes a
    16-node instance needs 17 input/output channels per router — the cost
    that motivates sticking with the mesh.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ConfigurationError(
                f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes

    def link_ports(self, node: int) -> list[PortKey]:
        self._check_node(node)
        return [("peer", other) for other in range(self.n_nodes)
                if other != node]

    def link_target(self, node: int, port: PortKey) -> tuple[int, PortKey]:
        if not (isinstance(port, tuple) and port[0] == "peer"):
            raise ConfigurationError(f"{port} is not a peer port")
        return port[1], ("peer", node)

    def next_port(self, node: int, packet: Packet) -> PortKey:
        self._check_node(node)
        if packet.dst == node:
            return local_delivery_port(packet.kind)
        return ("peer", packet.dst)

    def min_hops(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        return 0 if src == dst else 1

    @property
    def channels_per_router(self) -> int:
        """Input (or output) channels per router, incl. PE and MEM."""
        return (self.n_nodes - 1) + 2

    def __repr__(self) -> str:
        return f"FullyConnected({self.n_nodes})"
