"""Port naming and deterministic route computation.

Each router has four neighbour ports (mesh) or N-1 peer ports (fully
connected) plus two local ports: ``PE`` (to/from the processing element)
and ``MEM`` (to/from the vault's PNG) — six channels each way in the mesh
configuration, as §III-C describes.

Routing is table-based: topologies precompute, per router, a map from
destination node to output port.  For the mesh the tables implement
deterministic X-Y (column first, then row) routing.
"""

from __future__ import annotations

import enum


class Port(enum.Enum):
    """Named local and mesh ports; peer ports use ``("peer", node)``."""

    NORTH = "north"
    SOUTH = "south"
    EAST = "east"
    WEST = "west"
    PE = "pe"
    MEM = "mem"


#: The two router ports that terminate at the node rather than a link.
LOCAL_PORTS = (Port.PE, Port.MEM)

#: Opposite directions for mesh link hookup.
OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}

PortKey = object  # Port or ("peer", node)


def xy_route(cur_row: int, cur_col: int, dst_row: int,
             dst_col: int) -> Port | None:
    """One X-Y routing step; None when already at the destination."""
    if cur_col < dst_col:
        return Port.EAST
    if cur_col > dst_col:
        return Port.WEST
    if cur_row < dst_row:
        return Port.SOUTH
    if cur_row > dst_row:
        return Port.NORTH
    return None


def local_delivery_port(kind) -> Port:
    """Which local port a packet leaves through at its destination node.

    Write-backs return to the vault's PNG (MEM port); weights and states
    are consumed by the PE.
    """
    from repro.noc.packet import PacketKind

    return Port.MEM if kind == PacketKind.WRITEBACK else Port.PE
