"""Fixed-capacity packet buffer with credit semantics.

Every router channel has a 16-deep packet buffer (§III-C).  Credit-based
flow control means an upstream agent may only send when the downstream
buffer has a free slot; this class is that slot accounting.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError, SimulationError
from repro.noc.packet import Packet

#: Paper §III-C: "a 16-depth packet buffer for each input and output
#: channel".
DEFAULT_DEPTH = 16


class CreditedBuffer:
    """A FIFO of packets with a hard capacity.

    Pushing into a full buffer raises :class:`SimulationError` — callers
    must check :attr:`has_space` first, which is exactly what a credit
    check is.
    """

    def __init__(self, depth: int = DEFAULT_DEPTH, label: str = "") -> None:
        if depth < 1:
            raise ConfigurationError(f"buffer depth must be >= 1: {depth}")
        self.depth = depth
        self.label = label
        self._fifo: deque[Packet] = deque()
        self.peak_occupancy = 0
        self.total_pushed = 0

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    @property
    def has_space(self) -> bool:
        """True when one more packet fits (the "credit available" check)."""
        return len(self._fifo) < self.depth

    @property
    def empty(self) -> bool:
        return not self._fifo

    def push(self, packet: Packet) -> None:
        if not self.has_space:
            raise SimulationError(
                f"push into full buffer {self.label or id(self)} "
                f"(depth {self.depth}); caller must check has_space")
        self._fifo.append(packet)
        self.total_pushed += 1
        if len(self._fifo) > self.peak_occupancy:
            self.peak_occupancy = len(self._fifo)

    def peek(self) -> Packet:
        if not self._fifo:
            raise SimulationError(
                f"peek on empty buffer {self.label or id(self)}")
        return self._fifo[0]

    def pop(self) -> Packet:
        if not self._fifo:
            raise SimulationError(
                f"pop on empty buffer {self.label or id(self)}")
        return self._fifo.popleft()

    def state_dict(self) -> dict:
        """Picklable snapshot (packets are frozen dataclasses)."""
        return {"fifo": tuple(self._fifo),
                "peak_occupancy": self.peak_occupancy,
                "total_pushed": self.total_pushed}

    def load_state(self, state: dict) -> None:
        self._fifo.clear()
        self._fifo.extend(state["fifo"])
        self.peak_occupancy = state["peak_occupancy"]
        self.total_pushed = state["total_pushed"]

    def __len__(self) -> int:
        return len(self._fifo)

    def __repr__(self) -> str:
        return (f"CreditedBuffer({self.label!r}, "
                f"{self.occupancy}/{self.depth})")
