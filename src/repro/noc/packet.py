"""NoC packet format (paper §V-B, Fig. 11a).

Each packet carries one 16-bit data item plus routing and sequencing
metadata: 4-bit source vault, 4-bit destination PE, 4-bit MAC-ID and
8-bit OP-ID — 36 bits, matching the router datapath width in Table II.
A 32-bit DRAM word is therefore encapsulated into two packets.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Router datapath / flit width in bits (Table II "Router" row).
FLIT_BITS = 36

_sequence = itertools.count()


class PacketKind(enum.Enum):
    """What a packet's payload means to the receiving PE or PNG."""

    #: a synaptic weight headed for a MAC's temporal-buffer weight slot.
    WEIGHT = "weight"
    #: a neuron state (input pixel) headed for a MAC's state slot.
    STATE = "state"
    #: a computed output state returning from a PE to its home PNG.
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class Packet:
    """One 36-bit NoC packet.

    Attributes:
        src: source vault id (4 bits in hardware).
        dst: destination PE id.
        mac_id: target MAC within the PE (4 bits).
        op_id: sequence number of the operation this item feeds, modulo
            256 (8 bits in hardware; stored un-wrapped here with
            :meth:`op_id_field` giving the wire value).
        kind: weight / state / writeback.
        payload: raw 16-bit fixed-point value.
        neuron: opaque tag identifying the output neuron (functional mode
            bookkeeping; not a hardware field).
        inject_cycle: cycle the packet entered the NoC (for latency stats).
        serial: global creation order, used only for deterministic
            tie-breaking in tests.
    """

    src: int
    dst: int
    mac_id: int
    op_id: int
    kind: PacketKind
    payload: int = 0
    neuron: object = None
    inject_cycle: int = 0
    serial: int = field(default_factory=lambda: next(_sequence))

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError(
                f"packet ids must be non-negative: src={self.src}, "
                f"dst={self.dst}")
        if self.mac_id < 0:
            raise ConfigurationError(f"negative mac_id {self.mac_id}")
        if self.op_id < 0:
            raise ConfigurationError(f"negative op_id {self.op_id}")

    @property
    def op_id_field(self) -> int:
        """The 8-bit wire encoding of the OP-ID (§V-B: modulo 256)."""
        return self.op_id % 256

    @property
    def flits(self) -> int:
        """Packet length in flits; the 36-bit format is single-flit."""
        return 1

    def __repr__(self) -> str:
        return (f"Packet({self.kind.value} {self.src}->{self.dst} "
                f"mac={self.mac_id} op={self.op_id})")
