"""NoC packet format (paper §V-B, Fig. 11a).

Each packet carries one 16-bit data item plus routing and sequencing
metadata: 4-bit source vault, 4-bit destination PE, 4-bit MAC-ID and
8-bit OP-ID — 36 bits, matching the router datapath width in Table II.
A 32-bit DRAM word is therefore encapsulated into two packets.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Router datapath / flit width in bits (Table II "Router" row).
FLIT_BITS = 36

#: CRC-8/ATM generator polynomial (x^8 + x^2 + x + 1).
CRC8_POLY = 0x07

_sequence = itertools.count()


class PacketKind(enum.Enum):
    """What a packet's payload means to the receiving PE or PNG."""

    #: a synaptic weight headed for a MAC's temporal-buffer weight slot.
    WEIGHT = "weight"
    #: a neuron state (input pixel) headed for a MAC's state slot.
    STATE = "state"
    #: a computed output state returning from a PE to its home PNG.
    WRITEBACK = "writeback"


#: Stable 2-bit wire encoding of the packet kind for the CRC input.
_KIND_CODE = {PacketKind.WEIGHT: 0, PacketKind.STATE: 1,
              PacketKind.WRITEBACK: 2}


def packet_crc(src: int, dst: int, mac_id: int, op_id: int,
               kind: PacketKind, payload: int) -> int:
    """CRC-8 over a packet's wire fields (header + 16-bit payload).

    Used by the fault-injection link protocol: the sender stamps the
    packet at creation, the receiving link port recomputes and compares.
    CRC-8 detects every single-bit payload corruption, so with
    ``crc=True`` a corrupted flit always turns into a retry rather than
    silent data corruption.
    """
    data = bytes((src & 0xF, dst & 0xF, mac_id & 0xF, op_id & 0xFF,
                  _KIND_CODE[kind], (payload >> 8) & 0xFF,
                  payload & 0xFF))
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = ((crc << 1) ^ CRC8_POLY if crc & 0x80
                   else crc << 1) & 0xFF
    return crc


@dataclass(frozen=True)
class Packet:
    """One 36-bit NoC packet.

    Attributes:
        src: source vault id (4 bits in hardware).
        dst: destination PE id.
        mac_id: target MAC within the PE (4 bits).
        op_id: sequence number of the operation this item feeds, modulo
            256 (8 bits in hardware; stored un-wrapped here with
            :meth:`op_id_field` giving the wire value).
        kind: weight / state / writeback.
        payload: raw 16-bit fixed-point value.
        neuron: opaque tag identifying the output neuron (functional mode
            bookkeeping; not a hardware field).
        inject_cycle: cycle the packet entered the NoC (for latency stats).
        crc: CRC-8 stamp over the wire fields (:func:`packet_crc`), or
            None when the link CRC protocol is off.  Stamped at packet
            creation; a link corruption flips payload bits *without*
            restamping, which is exactly what the receiver detects.
        serial: global creation order, used only for deterministic
            tie-breaking in tests.
    """

    src: int
    dst: int
    mac_id: int
    op_id: int
    kind: PacketKind
    payload: int = 0
    neuron: object = None
    inject_cycle: int = 0
    crc: int | None = None
    serial: int = field(default_factory=lambda: next(_sequence))

    def crc_ok(self) -> bool:
        """Recompute the CRC and compare (True when unstamped)."""
        if self.crc is None:
            return True
        return self.crc == packet_crc(self.src, self.dst, self.mac_id,
                                      self.op_id_field, self.kind,
                                      self.payload & 0xFFFF)

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError(
                f"packet ids must be non-negative: src={self.src}, "
                f"dst={self.dst}")
        if self.mac_id < 0:
            raise ConfigurationError(f"negative mac_id {self.mac_id}")
        if self.op_id < 0:
            raise ConfigurationError(f"negative op_id {self.op_id}")

    @property
    def op_id_field(self) -> int:
        """The 8-bit wire encoding of the OP-ID (§V-B: modulo 256)."""
        return self.op_id % 256

    @property
    def flits(self) -> int:
        """Packet length in flits; the 36-bit format is single-flit."""
        return 1

    def __repr__(self) -> str:
        return (f"Packet({self.kind.value} {self.src}->{self.dst} "
                f"mac={self.mac_id} op={self.op_id})")
