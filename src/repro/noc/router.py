"""Cycle-level wormhole router (paper §III-C, Fig. 6c).

Each router has an input and an output :class:`CreditedBuffer` per port.
The switch stage moves at most one packet per output port per cycle from
the input buffers, arbitrated by a rotating daisy-chain priority scheme;
credit-based flow control means a move only happens when the target
buffer has space.  Link traversal between routers is handled by
:class:`repro.noc.interconnect.Interconnect`, giving the canonical
two-stage (switch + link) pipeline.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.noc.arbiter import RotatingPriorityArbiter
from repro.noc.buffer import DEFAULT_DEPTH, CreditedBuffer
from repro.noc.packet import Packet
from repro.noc.routing import LOCAL_PORTS, PortKey


class Router:
    """One NoC router.

    Args:
        node_id: this router's node number (== PE id == vault id).
        link_ports: directional ports wired to other routers.
        route: function ``(packet) -> PortKey`` giving the output port a
            packet must take *from this router*.
        buffer_depth: per-channel packet buffer depth (16 in the paper).
        local_rate: packets per cycle the local (PE/MEM) channels can
            move through the switch.  Mesh links are one 36-bit flit per
            cycle, but the vault pushes a whole 32-bit word — two packets
            — per cycle into the PNG (Fig. 11a), so the local channels are
            provisioned at the word rate.
    """

    def __init__(self, node_id: int, link_ports: list[PortKey],
                 route: Callable[[Packet], PortKey],
                 buffer_depth: int = DEFAULT_DEPTH,
                 local_rate: int = 2) -> None:
        if local_rate < 1:
            raise ConfigurationError(
                f"local_rate must be >= 1, got {local_rate}")
        self.node_id = node_id
        self.ports: list[PortKey] = list(link_ports) + list(LOCAL_PORTS)
        if len(set(self.ports)) != len(self.ports):
            raise ConfigurationError(
                f"router {node_id}: duplicate ports {self.ports}")
        self.local_rate = local_rate
        self._port_rate = {
            port: (local_rate if port in LOCAL_PORTS else 1)
            for port in self.ports}
        self.route = route
        self.inputs: dict[PortKey, CreditedBuffer] = {
            port: CreditedBuffer(buffer_depth, f"r{node_id}.in.{port}")
            for port in self.ports}
        self.outputs: dict[PortKey, CreditedBuffer] = {
            port: CreditedBuffer(buffer_depth, f"r{node_id}.out.{port}")
            for port in self.ports}
        self._arbiters: dict[PortKey, RotatingPriorityArbiter] = {
            port: RotatingPriorityArbiter(len(self.ports))
            for port in self.ports}
        # Arbiter heads rotate every cycle even when the router is idle
        # (§III-C).  Idle rotations are batched into this counter and
        # flushed lazily before the next real arbitration, which keeps
        # the per-cycle cost of an empty router at one integer add.
        self._pending_rotations = 0
        self._input_buffers = list(self.inputs.values())
        # Hoisted out of switch(): the arbitration round count per cycle.
        self._max_port_rate = max(self._port_rate.values())
        self.switched_packets = 0

    def advance_idle(self, cycles: int) -> None:
        """Account ``cycles`` idle cycles of arbiter rotation at once."""
        self._pending_rotations += cycles

    def _flush_rotations(self) -> None:
        if self._pending_rotations:
            for arbiter in self._arbiters.values():
                arbiter.advance(self._pending_rotations)
            self._pending_rotations = 0

    def switch(self) -> int:
        """One switch-stage cycle: input buffers -> output buffers.

        Returns the number of packets moved.  For every output port, the
        requesting input heads are arbitrated and the winner's head packet
        moves iff the output buffer has a credit.  Link ports move at most
        one packet per cycle; local ports up to ``local_rate``, realised
        as repeated arbitration rounds.
        """
        if all(buffer.empty for buffer in self._input_buffers):
            self._pending_rotations += 1
            return 0
        self._flush_rotations()
        moved = 0
        supplied = {port: 0 for port in self.ports}
        accepted = {port: 0 for port in self.ports}
        for _ in range(self._max_port_rate):
            # Gather, per output port, the inputs whose head wants it.
            wants: dict[PortKey, list[int]] = {}
            for index, port in enumerate(self.ports):
                buffer = self.inputs[port]
                if supplied[port] >= self._port_rate[port] or buffer.empty:
                    continue
                out_port = self.route(buffer.peek())
                if out_port not in self.outputs:
                    raise SimulationError(
                        f"router {self.node_id}: route returned unknown "
                        f"port {out_port} for {buffer.peek()}")
                wants.setdefault(out_port, []).append(index)
            any_move = False
            for out_port, requesters in wants.items():
                output = self.outputs[out_port]
                if accepted[out_port] >= self._port_rate[out_port]:
                    continue
                if not output.has_space:
                    continue
                winner = self._arbiters[out_port].grant(requesters)
                if winner is None:
                    continue
                in_port = self.ports[winner]
                output.push(self.inputs[in_port].pop())
                supplied[in_port] += 1
                accepted[out_port] += 1
                moved += 1
                any_move = True
            if not any_move:
                break
        for arbiter in self._arbiters.values():
            arbiter.rotate()
        self.switched_packets += moved
        return moved

    @property
    def busy(self) -> bool:
        """True while any buffer holds a packet."""
        return (any(not b.empty for b in self.inputs.values())
                or any(not b.empty for b in self.outputs.values()))

    @property
    def occupancy(self) -> int:
        """Total packets resident in this router."""
        return (sum(b.occupancy for b in self.inputs.values())
                + sum(b.occupancy for b in self.outputs.values()))

    def occupancy_by_port(self) -> dict[PortKey, tuple[int, int]]:
        """Per-port ``(input, output)`` buffer occupancy snapshot.

        A read-only probe for the observability layer's counter sampler
        and for stall diagnostics; never called on the simulation path.
        """
        return {port: (self.inputs[port].occupancy,
                       self.outputs[port].occupancy)
                for port in self.ports}

    def state_dict(self) -> dict:
        """Picklable snapshot: buffers, arbiters, pending rotations."""
        return {
            "inputs": {port: b.state_dict()
                       for port, b in self.inputs.items()},
            "outputs": {port: b.state_dict()
                        for port, b in self.outputs.items()},
            "arbiters": {port: a.state_dict()
                         for port, a in self._arbiters.items()},
            "pending_rotations": self._pending_rotations,
            "switched_packets": self.switched_packets,
        }

    def load_state(self, state: dict) -> None:
        for port, payload in state["inputs"].items():
            self.inputs[port].load_state(payload)
        for port, payload in state["outputs"].items():
            self.outputs[port].load_state(payload)
        for port, payload in state["arbiters"].items():
            self._arbiters[port].load_state(payload)
        self._pending_rotations = state["pending_rotations"]
        self.switched_packets = state["switched_packets"]

    def __repr__(self) -> str:
        return f"Router(node={self.node_id}, occupancy={self.occupancy})"
