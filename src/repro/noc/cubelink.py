"""Inter-cube SerDes link timing model (the paper's §VII/§IX links).

Cubes in a multi-cube cluster are joined by their HMC external SerDes
links (four per cube at the HMC-Ext per-channel bandwidth of Table I).
This module models one cube's aggregate outbound link as the vault
channels model a vault: an integer serialization cost per transfer at
the reference clock, a fixed one-way latency, and a per-cube busy-cycle
occupancy ledger.

The model is deliberately conservative and stateless between transfers:
a frame's delivery time is ``serialization + latency`` regardless of
what other cubes are sending (each cube owns its own links, so outbound
transfers of different cubes never contend).  All arithmetic is integer
(``ceil`` at the reference clock), so the sharded executor's barrier
cycles are exact and bit-identical in any execution mode.

This module sits below :mod:`repro.core` in the layering, so it takes
plain numbers rather than a :class:`repro.core.multicube.MultiCubeConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CubeLinkStats:
    """Occupancy snapshot of a cluster's inter-cube links.

    Attributes:
        busy_cycles: per-cube link busy cycles (serialization time of
            every frame the cube sent, retransmissions included).
        bytes_sent: per-cube payload bytes offered to the links
            (first transmissions only; retries resend the same bytes).
        transfers: per-cube frame transmissions (retries counted).
    """

    busy_cycles: tuple[int, ...]
    bytes_sent: tuple[int, ...]
    transfers: tuple[int, ...]

    def occupancy(self, cube: int, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` a cube's links were serializing."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles[cube] / total_cycles)


class CubeLinkModel:
    """One cluster's inter-cube SerDes links at the reference clock.

    Args:
        n_cubes: number of cubes in the cluster.
        links_per_cube: external SerDes links per cube (paper §VII:
            "4 links (SERDES)").
        link_bandwidth: per-link bandwidth in bytes/s (HMC-Ext channel).
        latency_s: one-way link latency in seconds.
        f_clk_hz: the reference clock the cycle counts are in.
    """

    def __init__(self, n_cubes: int, links_per_cube: int,
                 link_bandwidth: float, latency_s: float,
                 f_clk_hz: float) -> None:
        if n_cubes < 1:
            raise ConfigurationError(
                f"n_cubes must be >= 1, got {n_cubes}")
        if links_per_cube < 1:
            raise ConfigurationError("links_per_cube must be >= 1")
        if link_bandwidth <= 0:
            raise ConfigurationError("link_bandwidth must be positive")
        if latency_s < 0:
            raise ConfigurationError("latency_s must be >= 0")
        if f_clk_hz <= 0:
            raise ConfigurationError("f_clk_hz must be positive")
        self.n_cubes = n_cubes
        self.links_per_cube = links_per_cube
        self.link_bandwidth = link_bandwidth
        self.f_clk_hz = f_clk_hz
        #: One-way latency in whole reference cycles (conservative ceil).
        self.latency_cycles = math.ceil(latency_s * f_clk_hz)
        self._busy = [0] * n_cubes
        self._bytes = [0] * n_cubes
        self._transfers = [0] * n_cubes

    @property
    def cube_bandwidth(self) -> float:
        """Aggregate outbound bandwidth of one cube, bytes/s."""
        return self.link_bandwidth * self.links_per_cube

    def serialization_cycles(self, n_bytes: int) -> int:
        """Whole cycles to push ``n_bytes`` out of one cube's links."""
        if n_bytes <= 0:
            return 0
        return max(1, math.ceil(
            n_bytes * self.f_clk_hz / self.cube_bandwidth))

    def delivery_cycles(self, n_bytes: int) -> int:
        """Cycles from send start to remote arrival (0 for no payload)."""
        serialization = self.serialization_cycles(n_bytes)
        if serialization == 0:
            return 0
        return serialization + self.latency_cycles

    def barrier_cycles(self, sent_bytes) -> int:
        """Conservative barrier delay of one exchange, fault-free.

        The slowest cube's frame delivery over the per-cube payloads —
        the exact integer the sharded executor pays at each exchange
        rendezvous when no link fault fires.  A pure cube-order fold
        (``max`` over :meth:`delivery_cycles`), so it is permutation-
        invariant; the static verifier (``ncshardcheck`` NC305) pins
        the executor's barrier arithmetic against it.
        """
        return max((self.delivery_cycles(n) for n in sent_bytes),
                   default=0)

    def record_send(self, cube: int, n_bytes: int,
                    transmissions: int = 1) -> None:
        """Charge one frame send (plus retransmissions) to a cube.

        ``transmissions`` counts how many times the frame crossed the
        link (1 + retries); each crossing occupies the links for the
        frame's serialization time.
        """
        if not 0 <= cube < self.n_cubes:
            raise ConfigurationError(
                f"cube {cube} out of range for {self.n_cubes} cube(s)")
        if n_bytes <= 0:
            return
        self._busy[cube] += (self.serialization_cycles(n_bytes)
                             * max(1, transmissions))
        self._bytes[cube] += n_bytes
        self._transfers[cube] += max(1, transmissions)

    def stats(self) -> CubeLinkStats:
        """Immutable occupancy snapshot (per-cube tuples)."""
        return CubeLinkStats(busy_cycles=tuple(self._busy),
                             bytes_sent=tuple(self._bytes),
                             transfers=tuple(self._transfers))
