"""The assembled NoC: routers + links + injection/ejection interfaces.

One :class:`Interconnect` owns a router per node, wires their directional
ports per the topology, and steps the whole fabric one cycle at a time:
link stage first (output buffer -> downstream input buffer, one packet per
link per cycle, credit checked), then switch stage inside every router.
A packet therefore spends at least two cycles per router it crosses,
modelling the switch+link pipeline.

Injection: the vault-side PNG pushes packets into its router's MEM input
buffer; a PE pushes write-backs into the PE input buffer.  Ejection is the
mirror image from the output buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError, SimulationError
from repro.noc.buffer import DEFAULT_DEPTH
from repro.noc.packet import Packet
from repro.noc.router import Router
from repro.noc.routing import Port, PortKey
from repro.noc.topology import Topology


@dataclass
class NocStats:
    """Aggregate interconnect statistics.

    Attributes:
        injected: packets accepted into the fabric.
        delivered: packets ejected at their destination.
        lateral: delivered packets whose source node differed from the
            destination node (they crossed at least one link).
        link_traversals: total link-stage moves.
        total_latency: sum over delivered packets of (eject - inject)
            cycles, for mean-latency reporting.
        rejected_injections: injection attempts bounced for lack of space.
        dropped: packets permanently lost in the fabric (link retry
            budget exhausted under fault injection; always 0 otherwise).
    """

    injected: int = 0
    delivered: int = 0
    lateral: int = 0
    link_traversals: int = 0
    total_latency: int = 0
    rejected_injections: int = 0
    dropped: int = 0
    _cycle: int = field(default=0, repr=False)

    @property
    def lateral_fraction(self) -> float:
        """Fraction of delivered packets that crossed the mesh."""
        return self.lateral / self.delivered if self.delivered else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean inject-to-eject latency in cycles."""
        return (self.total_latency / self.delivered
                if self.delivered else 0.0)


class Interconnect:
    """A steppable NoC instance over an arbitrary :class:`Topology`."""

    def __init__(self, topology: Topology,
                 buffer_depth: int = DEFAULT_DEPTH,
                 local_rate: int = 2, tracer=None,
                 injector=None) -> None:
        self.topology = topology
        self.cycle = 0
        self.local_rate = local_rate
        self.tracer = tracer
        # Optional repro.faults.FaultInjector.  The faulted link stage
        # only replaces the plain one when link fault rates are nonzero,
        # so a rate-0 injector leaves the cycle behaviour untouched.
        self.injector = injector
        self._links_faulted = (injector is not None
                               and injector.noc_active)
        self.stats = NocStats()
        self.routers = [
            Router(node, topology.link_ports(node),
                   self._route_fn(node), buffer_depth,
                   local_rate=local_rate)
            for node in range(topology.n_nodes)
        ]
        # Precompute link hookups: (node, out port) -> (node, in port).
        self._links: list[tuple[Router, PortKey, Router, PortKey]] = []
        for router in self.routers:
            for port in topology.link_ports(router.node_id):
                target, in_port = topology.link_target(router.node_id, port)
                self._links.append(
                    (router, port, self.routers[target], in_port))
        # The link stage only needs the two buffers of each link; binding
        # them once keeps the per-cycle loop free of dict lookups.
        self._link_buffers = [
            (src.outputs[out_port], dst.inputs[in_port])
            for src, out_port, dst, in_port in self._links]
        self._link_labels = [
            f"{src.node_id}->{dst.node_id}"
            for src, _, dst, _ in self._links]
        # Link retry protocol state (fault injection only): per link,
        # retransmissions already consumed by the head packet, and the
        # cycle its next transmission attempt is allowed (backoff).
        self._link_retries = [0] * len(self._links)
        self._link_blocked_until = [0] * len(self._links)

    def _route_fn(self, node: int):
        return lambda packet: self.topology.next_port(node, packet)

    # ------------------------------------------------------------------
    # edge interfaces
    # ------------------------------------------------------------------

    def can_inject(self, node: int, port: Port = Port.MEM) -> bool:
        """Credit check for an injection at ``node``'s local ``port``."""
        return self.routers[node].inputs[port].has_space

    def inject(self, node: int, packet: Packet,
               port: Port = Port.MEM) -> bool:
        """Push a packet into the fabric; False when the buffer is full."""
        if port not in (Port.MEM, Port.PE):
            raise ConfigurationError(
                f"injection must use a local port, got {port}")
        buffer = self.routers[node].inputs[port]
        if not buffer.has_space:
            self.stats.rejected_injections += 1
            return False
        buffer.push(packet)
        self.stats.injected += 1
        return True

    def eject(self, node: int, port: Port = Port.PE,
              limit: int | None = None) -> list[Packet]:
        """Drain up to ``limit`` packets delivered at ``node``'s ``port``."""
        if port not in (Port.MEM, Port.PE):
            raise ConfigurationError(
                f"ejection must use a local port, got {port}")
        buffer = self.routers[node].outputs[port]
        out: list[Packet] = []
        while not buffer.empty and (limit is None or len(out) < limit):
            packet = buffer.pop()
            out.append(packet)
            self.stats.delivered += 1
            if packet.src != node:
                self.stats.lateral += 1
            latency = self.cycle - packet.inject_cycle
            self.stats.total_latency += latency
            if self.tracer is not None:
                self.tracer.packet_delivered(self.cycle, node, latency,
                                             packet)
        return out

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def next_event_delta(self) -> int | None:
        """Cycles until the fabric next does visible work.

        The event-horizon scheduler's per-agent contract: 1 while any
        packet is resident (a resident packet can move on the very next
        link/switch stage, so the fabric must be stepped every cycle),
        None when the fabric is empty — an empty fabric only rotates
        arbiter priorities, which :meth:`skip` batches exactly.
        """
        return 1 if self.in_fabric else None

    def step(self) -> None:
        """Advance the fabric one cycle: link stage, then switch stage."""
        self.cycle += 1
        if not self.in_fabric:
            # Empty fabric: the link loop cannot move anything and every
            # switch only rotates its arbiters.  Batch the rotations the
            # way Router.switch would (it defers them when all inputs
            # are empty), keeping the lock-step reference path cheap.
            for router in self.routers:
                router.advance_idle(1)
            return
        if self._links_faulted:
            self._step_links_faulted()
        elif self.tracer is None:
            # Hook-free hot path: the traced loop below is identical but
            # pays a label lookup per move, which the untraced fabric
            # must not.
            for output, target in self._link_buffers:
                if not output.empty and target.has_space:
                    target.push(output.pop())
                    self.stats.link_traversals += 1
        else:
            for label, (output, target) in zip(self._link_labels,
                                               self._link_buffers,
                                               strict=True):
                if not output.empty and target.has_space:
                    target.push(output.pop())
                    self.stats.link_traversals += 1
                    self.tracer.noc_hop(self.cycle, label)
        for router in self.routers:
            router.switch()

    def _step_links_faulted(self) -> None:
        """One link-stage cycle under the CRC/retry/timeout protocol.

        Per link and cycle, at most one transmission attempt; the fault
        RNG keys each attempt by (link index, cycle), so retransmissions
        on later cycles draw independently.  A corrupted flit is caught
        by the receiver's CRC check (when the packet is stamped) and a
        dropped flit by the sender's ack timeout; both leave the packet
        at the head of the upstream buffer and schedule a retransmission
        after exponential backoff.  A packet that exhausts its retry
        budget is removed and recorded on the injector's loss ledger —
        the fabric degrades instead of wedging.
        """
        injector = self.injector
        config = injector.config
        for index, (output, target) in enumerate(self._link_buffers):
            if output.empty or not target.has_space:
                continue
            if self.cycle < self._link_blocked_until[index]:
                continue
            fault = injector.link_fault(index, self.cycle)
            if fault is None:
                target.push(output.pop())
                self.stats.link_traversals += 1
                self._link_retries[index] = 0
                if self.tracer is not None:
                    self.tracer.noc_hop(self.cycle,
                                        self._link_labels[index])
                continue
            label = self._link_labels[index]
            packet = output.peek()
            if fault == "corrupt":
                injector.stats.link_corruptions += 1
                corrupted = replace(
                    packet, payload=injector.corrupt_payload(
                        index, self.cycle, packet.payload))
                if corrupted.crc_ok():
                    # No CRC stamp (crc=False): the corruption is
                    # undetectable and the damaged payload propagates.
                    target.push(corrupted)
                    output.pop()
                    self.stats.link_traversals += 1
                    injector.stats.link_silent_corruptions += 1
                    self._link_retries[index] = 0
                    if self.tracer is not None:
                        self.tracer.fault_inject(
                            self.cycle, "noc.silent_corrupt",
                            f"noc/{label}", {"op": packet.op_id})
                    continue
            else:
                injector.stats.link_drops += 1
            # Detected failure: corrupt caught by the receiver CRC, drop
            # by the sender's ack timeout (one extra backoff period).
            consumed = self._link_retries[index]
            if consumed >= config.max_retries:
                output.pop()
                self.stats.dropped += 1
                self._link_retries[index] = 0
                injector.record_loss(self.cycle, packet, label)
                if self.tracer is not None:
                    self.tracer.noc_retry(self.cycle, label,
                                          {"op": packet.op_id,
                                           "outcome": "lost",
                                           "retries": consumed})
                continue
            self._link_retries[index] = consumed + 1
            injector.stats.retries += 1
            backoff = config.retry_backoff * (2 ** consumed)
            if fault == "drop":
                backoff += config.retry_backoff
            self._link_blocked_until[index] = self.cycle + backoff
            if self.tracer is not None:
                self.tracer.noc_retry(self.cycle, label,
                                      {"op": packet.op_id,
                                       "outcome": fault,
                                       "retry": consumed + 1,
                                       "backoff": backoff})

    def skip(self, cycles: int) -> None:
        """Advance ``cycles`` empty-fabric cycles at once.

        Only legal while :attr:`in_fabric` is zero: the clock moves, the
        arbiter priority heads rotate (they rotate every cycle, idle or
        not), and nothing else can change.  Used by the simulator's
        quiescence skip-ahead.
        """
        if self.in_fabric:
            raise SimulationError(
                f"skip({cycles}) with {self.in_fabric} packets in flight")
        self.cycle += cycles
        for router in self.routers:
            router.advance_idle(cycles)

    @property
    def in_fabric(self) -> int:
        """Packets currently inside the fabric, O(1).

        Every packet enters through :meth:`inject` and leaves through
        :meth:`eject` — or, under fault injection, is removed as lost —
        so the counter difference is the live population (equal to
        :attr:`occupancy`, without walking buffers).
        """
        return (self.stats.injected - self.stats.delivered
                - self.stats.dropped)

    def retry_diagnostics(self) -> list[str]:
        """Human-readable pending retry/backoff state, for stall reports.

        Lets a fault-induced stall be distinguished from a plan bug: a
        link mid-backoff or a recorded permanent loss shows up here.
        """
        lines: list[str] = []
        for index, label in enumerate(self._link_labels):
            retries = self._link_retries[index]
            blocked = self._link_blocked_until[index]
            if retries or blocked > self.cycle:
                head = (repr(self._link_buffers[index][0].peek())
                        if not self._link_buffers[index][0].empty
                        else "<empty>")
                lines.append(
                    f"link {label}: retries={retries} "
                    f"blocked_until={blocked} head={head}")
        if self.injector is not None:
            lines.extend(f"lost: {loss.describe()}"
                         for loss in self.injector.pending_losses())
        return lines

    def state_dict(self) -> dict:
        """Picklable snapshot of the whole fabric for checkpointing."""
        return {
            "cycle": self.cycle,
            "stats": replace(self.stats),
            "routers": [router.state_dict() for router in self.routers],
            "link_retries": list(self._link_retries),
            "link_blocked_until": list(self._link_blocked_until),
        }

    def load_state(self, state: dict) -> None:
        self.cycle = state["cycle"]
        self.stats = replace(state["stats"])
        for router, payload in zip(self.routers, state["routers"],
                                   strict=True):
            router.load_state(payload)
        self._link_retries = list(state["link_retries"])
        self._link_blocked_until = list(state["link_blocked_until"])

    @property
    def busy(self) -> bool:
        """True while any packet is resident in any router."""
        return any(router.busy for router in self.routers)

    @property
    def occupancy(self) -> int:
        """Total packets currently inside the fabric."""
        return sum(router.occupancy for router in self.routers)

    def link_occupancies(self) -> list[tuple[str, int]]:
        """Per-link buffered packets: upstream output + downstream input.

        Used by the trace counter sampler for the per-link occupancy
        time series; the label matches the ``noc/<src>-><dst>`` tracks
        of the hop events.
        """
        return [(label, out.occupancy + inp.occupancy)
                for label, (out, inp) in zip(self._link_labels,
                                             self._link_buffers,
                                             strict=True)]

    def __repr__(self) -> str:
        return (f"Interconnect({self.topology!r}, cycle={self.cycle}, "
                f"occupancy={self.occupancy})")
