"""Rotating daisy-chain priority arbitration (paper §III-C).

"Input buffers use a rotating daisy chain priority scheme for arbitrating
between inputs requesting the same outputs.  Priorities are updated every
clock cycle."
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError


class RotatingPriorityArbiter:
    """Grants one of N requesters; the priority head rotates each cycle.

    On a cycle where the head requester is idle, the grant daisy-chains to
    the next requesting input in rotation order.  Rotation happens every
    cycle regardless of grants, matching the paper's description, which
    guarantees starvation freedom.
    """

    def __init__(self, n_inputs: int) -> None:
        if n_inputs < 1:
            raise ConfigurationError(
                f"arbiter needs >= 1 input, got {n_inputs}")
        self.n_inputs = n_inputs
        self._head = 0
        self.grants = 0

    def rotate(self) -> None:
        """Advance the priority head; call once per clock cycle."""
        self._head = (self._head + 1) % self.n_inputs

    def advance(self, cycles: int) -> None:
        """Advance the head by ``cycles`` rotations at once.

        Used by the simulator's quiescence skip-ahead: the head after
        ``cycles`` idle cycles is the same as after ``cycles`` calls to
        :meth:`rotate`, so arbitration decisions stay bit-identical to a
        cycle-by-cycle run.
        """
        if cycles < 0:
            raise ConfigurationError(f"cannot advance by {cycles} cycles")
        self._head = (self._head + cycles) % self.n_inputs

    @property
    def head(self) -> int:
        """The input currently holding top priority."""
        return self._head

    def state_dict(self) -> dict:
        """Picklable snapshot for checkpointing."""
        return {"head": self._head, "grants": self.grants}

    def load_state(self, state: dict) -> None:
        self._head = state["head"]
        self.grants = state["grants"]

    def grant(self, requests: Iterable[int] | Sequence[bool]) -> int | None:
        """Pick the winning input for this cycle, or None if no requests.

        Args:
            requests: either an iterable of requesting input indices, or a
                boolean mask of length ``n_inputs``.
        """
        mask = self._as_mask(requests)
        for offset in range(self.n_inputs):
            candidate = (self._head + offset) % self.n_inputs
            if mask[candidate]:
                self.grants += 1
                return candidate
        return None

    def _as_mask(self, requests) -> list[bool]:
        requests = list(requests)
        if requests and all(isinstance(r, bool) for r in requests):
            if len(requests) != self.n_inputs:
                raise ConfigurationError(
                    f"mask length {len(requests)} != n_inputs "
                    f"{self.n_inputs}")
            return requests
        mask = [False] * self.n_inputs
        for index in requests:
            if not 0 <= index < self.n_inputs:
                raise ConfigurationError(
                    f"request index {index} out of range 0..{self.n_inputs - 1}")
            mask[index] = True
        return mask
