"""Pass scheduling: turn one layer descriptor into simulator plans.

The host-side software of the paper maps "all data structures of NN (e.g.,
input image and weights) into the physical address space of the cube"
(§IV-C) and then programs each PNG.  This module is that host software for
the cycle simulator: given a descriptor, the actual tensors and a config,
it produces

* per-vault memory images (input states, weights, output space),
* per-vault ordered emission schedules (what each PNG generates),
* per-PE group plans (which neurons each PE computes, in which order),
* the write-back address map.

Emission order models all PNGs sweeping the layer front in lock-step:
records are ordered by (op, destination, lane), which is the order a
hardware PNG's three-counter FSM visits them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor
from repro.core.pe import GroupPlan, GroupSlot
from repro.core.png import EmissionRecord
from repro.errors import ConfigurationError, MappingError
from repro.fixedpoint import from_float
from repro.memory.layout import ConvLayout, FullLayout, Rect, partition_grid
from repro.nn.activations import ActivationLUT
from repro.noc.packet import PacketKind

#: Neuron tag: (pass_index, flat_output_index).
NeuronTag = tuple[int, int]


@dataclass
class PassPlan:
    """Everything the simulator needs to run one PNG pass.

    Attributes:
        vault_emissions: per-channel ordered emission schedules.
        pe_groups: per-PE group plans.
        vault_data: per-channel raw memory images.
        out_addresses: neuron tag -> (channel, item address) for
            write-back storage.
        expected_writebacks: per-channel write-back counts.
        lut: activation LUT the PNGs apply to returned states.
        total_neurons: output neurons in this pass.
    """

    vault_emissions: list[list[EmissionRecord]]
    pe_groups: list[list[GroupPlan]]
    vault_data: list[np.ndarray]
    out_addresses: dict[NeuronTag, tuple[int, int]]
    expected_writebacks: list[int]
    lut: ActivationLUT | None
    total_neurons: int = 0
    stream_items: int = field(default=0)

    def __post_init__(self) -> None:
        """Reject structurally inconsistent plans at construction.

        These are shape-level invariants every consumer (the simulator,
        the parallel executor, :mod:`repro.analysis.nccheck`) assumes;
        violating them would otherwise surface as an IndexError deep in
        a worker process.  Semantic well-formedness (producer/consumer
        matching, address ranges, routes) is nccheck's job — it needs a
        constructed plan to inspect.
        """
        n_channels = len(self.vault_data)
        if len(self.vault_emissions) != n_channels:
            raise ConfigurationError(
                f"PassPlan has {len(self.vault_emissions)} emission "
                f"schedules for {n_channels} vault images; every "
                f"channel needs exactly one schedule")
        if len(self.expected_writebacks) != n_channels:
            raise ConfigurationError(
                f"PassPlan has {len(self.expected_writebacks)} "
                f"write-back counts for {n_channels} channels")
        for channel, count in enumerate(self.expected_writebacks):
            if count < 0:
                raise ConfigurationError(
                    f"PassPlan expects {count} write-backs on channel "
                    f"{channel}; counts must be non-negative")
        if self.total_neurons < 0:
            raise ConfigurationError(
                f"PassPlan.total_neurons must be non-negative, got "
                f"{self.total_neurons}")
        if self.stream_items < 0:
            raise ConfigurationError(
                f"PassPlan.stream_items must be non-negative, got "
                f"{self.stream_items}")

    def structural_hash(self) -> str:
        """SHA-256 digest of the plan's timing-relevant structure.

        Covers the per-vault emission schedules, the per-PE group
        shapes, the expected write-back counts and the stream totals —
        everything that determines packet timing.  Payload data (vault
        images, biases, weights) is deliberately excluded: it never
        moves a packet.  Two tasks with equal
        :func:`repro.core.parallel.structural_key` values build plans
        with equal hashes, which is the invariant timing-pass
        memoization relies on (and what its tests pin down).
        """
        digest = hashlib.sha256()
        for channel, records in enumerate(self.vault_emissions):
            digest.update(f"vault {channel}:{len(records)}\n".encode())
            for record in records:
                digest.update(
                    f"{record.address},{record.dst},{record.mac_id},"
                    f"{record.op_id},{record.kind.value},"
                    f"{record.neuron}\n".encode())
        for pe, groups in enumerate(self.pe_groups):
            digest.update(f"pe {pe}:{len(groups)}\n".encode())
            for group in groups:
                digest.update(
                    f"{len(group.slots)},{group.n_connections},"
                    f"{group.mode},{group.weights_resident},"
                    f"{group.shared_state}\n".encode())
        digest.update(f"writebacks {self.expected_writebacks}\n".encode())
        digest.update(
            f"totals {self.total_neurons},{self.stream_items}\n".encode())
        return digest.hexdigest()


def _chunk(items: list, size: int) -> list[list]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _owner_of(tiles: list[Rect], x: int, y: int) -> int:
    for index, tile in enumerate(tiles):
        if tile.contains(x, y):
            return index
    raise MappingError(f"pixel ({x}, {y}) not covered by any tile")


def _sorted_emissions(records: list[EmissionRecord]) -> list[EmissionRecord]:
    return sorted(records, key=lambda r: (r.op_id, r.dst, r.mac_id,
                                          r.kind.value))


def build_conv_pass(desc: LayerDescriptor, config: NeurocubeConfig,
                    input_tensor: np.ndarray | None,
                    kernel_weights: np.ndarray | None,
                    bias: float | np.ndarray,
                    lut: ActivationLUT | None,
                    mode: str = "mac") -> PassPlan:
    """Schedule one pass of a locally connected layer (one output map).

    Args:
        desc: the layer descriptor (kind "conv" or "pool").
        config: the target Neurocube.
        input_tensor: ``(C_in, H, W)`` real-valued input (quantised on
            store); None runs the pass timing-only.  For a sub-passed
            convolution this is the input-map *block* of the sub-pass.
        kernel_weights: ``(C_in, k, k)`` kernel for this output map
            (ignored for pooling / max mode).
        bias: accumulator preload — a scalar, or a per-neuron array
            (flattened output order) carrying partial sums between the
            sub-passes of a blocked convolution.
        lut: activation LUT for write-backs (None on intermediate
            sub-passes: the raw partial sum is stored).
        mode: "mac" or "max" (max pooling).
    """
    layout = desc.layout
    if not isinstance(layout, ConvLayout):
        raise MappingError(f"{desc.name}: conv pass needs a ConvLayout")
    k = desc.kernel
    height, width = desc.in_height, desc.in_width
    in_maps = (input_tensor.shape[0] if input_tensor is not None
               else desc.connections // (k * k))
    out_h, out_w = height - k + 1, width - k + 1
    if desc.kind == "pool":
        out_h, out_w = height // k, width // k
    functional = input_tensor is not None

    # ---- memory images: [input pixels][weights][output space] ---------
    n_channels = config.n_channels
    stored = list(layout.stored_tiles)
    pixel_addr: list[dict[tuple[int, int, int], int]] = []
    vault_sizes: list[int] = []
    raw_input = (from_float(input_tensor, config.qformat)
                 if functional else None)
    vault_items: list[list[int]] = []
    for tile in stored:
        addr_map: dict[tuple[int, int, int], int] = {}
        items: list[int] = []
        for c in range(in_maps):
            for y in range(tile.y0, tile.y1):
                for x in range(tile.x0, tile.x1):
                    addr_map[(c, y, x)] = len(items)
                    items.append(int(raw_input[c, y, x])
                                 if functional else 0)
        pixel_addr.append(addr_map)
        vault_items.append(items)
        vault_sizes.append(len(items))

    raw_weights = None
    if mode == "mac":
        # Average pooling rides the MAC datapath with constant 1/k^2
        # coefficients; weighted layers use the pass's kernel.
        if kernel_weights is None and desc.kind == "pool":
            kernel_weights = np.full((1, k, k), 1.0 / (k * k))
        if functional and kernel_weights is None:
            raise MappingError(f"{desc.name}: functional conv pass needs "
                               f"kernel weights")
        if kernel_weights is not None:
            raw_weights = from_float(kernel_weights, config.qformat).ravel()
        else:
            raw_weights = np.zeros(desc.connections, dtype=np.int64)

    # ---- PE ownership and groups ---------------------------------------
    n_pe = config.n_pe
    pe_tiles = partition_grid(height, width, n_pe)
    half = k // 2
    pe_neurons: list[list[tuple[int, int]]] = [[] for _ in range(n_pe)]
    for oy in range(out_h):
        for ox in range(out_w):
            if desc.kind == "pool":
                cx, cy = ox * k, oy * k
            else:
                cx, cy = ox + half, oy + half
            pe_neurons[_owner_of(pe_tiles, cx, cy)].append((ox, oy))

    out_addresses: dict[NeuronTag, tuple[int, int]] = {}
    expected = [0] * n_channels
    pe_groups: list[list[GroupPlan]] = [[] for _ in range(n_pe)]
    emissions: list[list[EmissionRecord]] = [[] for _ in range(n_channels)]

    weights_tuple = (tuple(int(w) for w in raw_weights)
                     if raw_weights is not None else None)
    connection_offsets = [(c, dy, dx) for c in range(in_maps)
                          for dy in range(k) for dx in range(k)]
    if desc.kind == "pool":
        n_conn = k * k
        connection_offsets = [(None, dy, dx) for dy in range(k)
                              for dx in range(k)]
    else:
        n_conn = in_maps * k * k

    bias_array = None if np.isscalar(bias) else np.asarray(bias)
    stream_items = 0
    for pe in range(n_pe):
        home = config.channel_of_pe(pe)
        for g, chunk in enumerate(_chunk(pe_neurons[pe], config.n_mac)):
            slots = []
            for ox, oy in chunk:
                tag: NeuronTag = (0, oy * out_w + ox)
                out_addr = vault_sizes[home] + expected[home]
                out_addresses[tag] = (home, out_addr)
                expected[home] += 1
                slot_bias = (float(bias) if bias_array is None
                             else float(bias_array[oy * out_w + ox]))
                slots.append(GroupSlot(neuron=tag, home_vault=home,
                                       bias=slot_bias))
            pe_groups[pe].append(GroupPlan(
                slots=tuple(slots), n_connections=n_conn, mode=mode,
                weights_resident=(mode == "max" or desc.weights_resident),
                shared_state=False, weights=weights_tuple))
            for c, (in_map, dy, dx) in enumerate(connection_offsets):
                op = g * n_conn + c
                for lane, (ox, oy) in enumerate(chunk):
                    if desc.kind == "pool":
                        px, py = ox * k + dx, oy * k + dy
                        pmap = 0 if in_map is None else in_map
                    else:
                        px, py = ox + dx, oy + dy
                        pmap = in_map
                    src = _pixel_source(stored, home, pmap, px, py,
                                        pixel_addr)
                    emissions[src].append(EmissionRecord(
                        address=pixel_addr[src][(pmap, py, px)],
                        dst=pe, mac_id=lane, op_id=op,
                        kind=PacketKind.STATE, neuron=(0, oy * out_w + ox)))
                    stream_items += 1

    # Grow vault images to hold the output region.
    vault_data = []
    for channel in range(n_channels):
        array = np.zeros(vault_sizes[channel] + expected[channel],
                         dtype=np.int64)
        if vault_items[channel]:
            array[:vault_sizes[channel]] = vault_items[channel]
        vault_data.append(array)

    return PassPlan(
        vault_emissions=[_sorted_emissions(e) for e in emissions],
        pe_groups=pe_groups, vault_data=vault_data,
        out_addresses=out_addresses, expected_writebacks=expected,
        lut=lut, total_neurons=out_h * out_w, stream_items=stream_items)


def _pixel_source(stored: list[Rect], preferred: int, pmap: int,
                  px: int, py: int,
                  pixel_addr: list[dict]) -> int:
    """Which channel sources a pixel: the consumer's own channel when it
    holds a (possibly duplicated) copy, else the owning tile's channel."""
    if (pmap, py, px) in pixel_addr[preferred]:
        return preferred
    for channel, _ in enumerate(stored):
        if (pmap, py, px) in pixel_addr[channel]:
            return channel
    raise MappingError(f"pixel ({pmap}, {py}, {px}) stored nowhere")


def build_fc_pass(desc: LayerDescriptor, config: NeurocubeConfig,
                  input_vector: np.ndarray | None,
                  weights: np.ndarray | None,
                  biases: np.ndarray | None,
                  lut: ActivationLUT | None) -> PassPlan:
    """Schedule one pass of a fully connected layer.

    Output neurons are split across PEs; each PE's weight rows live in its
    channel and stream as packets; one state item per operation feeds all
    MAC lanes (every neuron in the group reads input ``c``).

    Args:
        desc: descriptor of kind "fc".
        config: the target Neurocube.
        input_vector: ``(N_in,)`` input (None for timing-only).
        weights: ``(N_out, N_in)`` weight matrix (None for timing-only).
        biases: ``(N_out,)`` biases (None -> zero).
        lut: activation LUT for write-backs.
    """
    layout = desc.layout
    if not isinstance(layout, FullLayout):
        raise MappingError(f"{desc.name}: fc pass needs a FullLayout")
    n_in, n_out = desc.connections, desc.neurons_per_pass
    functional = input_vector is not None
    n_channels, n_pe = config.n_channels, config.n_pe

    raw_input = (from_float(input_vector, config.qformat)
                 if functional else np.zeros(n_in, dtype=np.int64))
    raw_weights = (from_float(weights, config.qformat)
                   if weights is not None
                   else np.zeros((n_out, n_in), dtype=np.int64))
    bias_arr = (np.asarray(biases, dtype=np.float64)
                if biases is not None else np.zeros(n_out))

    # ---- input placement -----------------------------------------------
    if layout.duplicate:
        input_slices = [np.arange(n_in) for _ in range(n_channels)]
    else:
        input_slices = np.array_split(np.arange(n_in), n_channels)
    input_addr: list[dict[int, int]] = []
    vault_items: list[list[int]] = []
    for channel in range(n_channels):
        addr_map = {int(j): a for a, j in enumerate(input_slices[channel])}
        input_addr.append(addr_map)
        vault_items.append([int(raw_input[j]) for j in
                            input_slices[channel]])
    input_owner = np.empty(n_in, dtype=np.int64)
    if layout.duplicate:
        input_owner[:] = -1  # every channel has a copy
    else:
        for channel, js in enumerate(input_slices):
            input_owner[js] = channel

    # ---- output / weight placement -------------------------------------
    pe_outputs = np.array_split(np.arange(n_out), n_pe)
    weight_addr: dict[tuple[int, int], tuple[int, int]] = {}
    for pe in range(n_pe):
        channel = config.channel_of_pe(pe)
        for n in pe_outputs[pe]:
            for c in range(n_in):
                weight_addr[(int(n), c)] = (channel,
                                            len(vault_items[channel]))
                vault_items[channel].append(int(raw_weights[n, c]))

    out_addresses: dict[NeuronTag, tuple[int, int]] = {}
    expected = [0] * n_channels
    pe_groups: list[list[GroupPlan]] = [[] for _ in range(n_pe)]
    emissions: list[list[EmissionRecord]] = [[] for _ in range(n_channels)]
    vault_sizes = [len(items) for items in vault_items]

    stream_items = 0
    for pe in range(n_pe):
        home = config.channel_of_pe(pe)
        for g, chunk in enumerate(_chunk([int(n) for n in pe_outputs[pe]],
                                         config.n_mac)):
            slots = []
            for n in chunk:
                tag: NeuronTag = (0, n)
                out_addresses[tag] = (home, vault_sizes[home]
                                      + expected[home])
                expected[home] += 1
                slots.append(GroupSlot(neuron=tag, home_vault=home,
                                       bias=float(bias_arr[n])))
            pe_groups[pe].append(GroupPlan(
                slots=tuple(slots), n_connections=n_in, mode="mac",
                weights_resident=False, shared_state=False, weights=None))
            for c in range(n_in):
                op = g * n_in + c
                # Every lane receives its own state copy (Fig. 11: the
                # temporal buffer takes "16 input pixels and 16 synaptic
                # weights"); the hardware does not broadcast within a PE.
                state_src = (home if layout.duplicate
                             else int(input_owner[c]))
                for lane, n in enumerate(chunk):
                    emissions[state_src].append(EmissionRecord(
                        address=input_addr[state_src][c], dst=pe,
                        mac_id=lane, op_id=op, kind=PacketKind.STATE,
                        neuron=(0, n)))
                    channel, address = weight_addr[(n, c)]
                    emissions[channel].append(EmissionRecord(
                        address=address, dst=pe, mac_id=lane, op_id=op,
                        kind=PacketKind.WEIGHT, neuron=(0, n)))
                    stream_items += 2

    vault_data = []
    for channel in range(n_channels):
        array = np.zeros(vault_sizes[channel] + expected[channel],
                         dtype=np.int64)
        if vault_items[channel]:
            array[:vault_sizes[channel]] = vault_items[channel]
        vault_data.append(array)

    return PassPlan(
        vault_emissions=[_sorted_emissions(e) for e in emissions],
        pe_groups=pe_groups, vault_data=vault_data,
        out_addresses=out_addresses, expected_writebacks=expected,
        lut=lut, total_neurons=n_out, stream_items=stream_items)
