"""Multi-cube scaling (the paper's §IX next step).

"Next steps involve scaling this implementation across multiple cubes to
support much larger networks than can be feasibly supported today."

This module models that extension analytically.  Cubes are joined by
their HMC external SerDes links (four per cube, at the HMC-Ext
per-channel bandwidth of Table I).  A network is partitioned across
cubes the same way a layer is partitioned across vaults, one level up:

* **locally connected layers** split the image by rows; neighbouring
  cubes exchange a kernel halo per layer;
* **fully connected layers** split output neurons; the input vector is
  all-gathered across cubes before the layer runs.

Per layer the model takes ``max(compute_share, comm_time)`` — the PNGs
can prefetch the next slice while links move halos — plus a per-layer
link latency.  The result quantifies when a workload stops scaling:
conv-heavy networks scale nearly linearly; FC-heavy ones saturate on the
all-gather.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.analytic import AnalyticModel
from repro.core.compiler import compile_inference, compile_training
from repro.core.config import NeurocubeConfig
from repro.errors import ConfigurationError
from repro.memory.specs import HMC_EXT
from repro.nn.network import Network

#: SerDes links per cube (§VII: "4 links (SERDES)").
LINKS_PER_CUBE = 4
#: One-way link latency charged per layer exchange, in seconds.
LINK_LATENCY_S = 50e-9


@dataclass(frozen=True)
class MultiCubeConfig:
    """A cluster of Neurocubes.

    Attributes:
        cube: the per-cube configuration.
        n_cubes: number of cubes.
        links_per_cube: external SerDes links per cube.
        link_bandwidth: per-link bandwidth, bytes/s (HMC-Ext channel).
        cube_capacity_bytes: per-cube vault DRAM capacity budget in
            bytes, or None for unlimited.  When set, the sharded
            partitioner (:func:`repro.core.shard.shard_network`) refuses
            any plan whose per-cube footprint exceeds it — the mechanism
            behind "this workload only fits when sharded".
    """

    cube: NeurocubeConfig
    n_cubes: int
    links_per_cube: int = LINKS_PER_CUBE
    link_bandwidth: float = HMC_EXT.peak_bandwidth
    cube_capacity_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.n_cubes < 1:
            raise ConfigurationError(
                f"n_cubes must be >= 1, got {self.n_cubes}")
        if self.links_per_cube < 1:
            raise ConfigurationError("links_per_cube must be >= 1")
        if self.link_bandwidth <= 0:
            raise ConfigurationError("link_bandwidth must be positive")
        if (self.cube_capacity_bytes is not None
                and self.cube_capacity_bytes <= 0):
            raise ConfigurationError(
                "cube_capacity_bytes must be positive when set, got "
                f"{self.cube_capacity_bytes}")

    @property
    def total_peak_gops(self) -> float:
        return self.cube.peak_gops * self.n_cubes

    @property
    def cube_link_bandwidth(self) -> float:
        """Aggregate outbound bandwidth of one cube, bytes/s."""
        return self.link_bandwidth * self.links_per_cube


@dataclass
class MultiCubeLayer:
    """Per-layer scaling accounting.

    Attributes:
        name, kind: from the descriptor.
        compute_cycles: per-cube compute share (reference cycles).
        comm_cycles: inter-cube exchange time (reference cycles).
        cycles: the layer's contribution to the critical path.
    """

    name: str
    kind: str
    compute_cycles: float
    comm_cycles: float

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.comm_cycles)

    @property
    def comm_bound(self) -> bool:
        return self.comm_cycles > self.compute_cycles


@dataclass
class MultiCubeReport:
    """Result of a multi-cube evaluation."""

    network_name: str
    n_cubes: int
    f_clk_hz: float
    total_ops: int
    single_cube_cycles: float
    layers: list[MultiCubeLayer] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def throughput_gops(self) -> float:
        return self.total_ops / (self.total_cycles / self.f_clk_hz) / 1e9

    @property
    def speedup(self) -> float:
        """Over the single-cube run of the same network."""
        return self.single_cube_cycles / self.total_cycles

    @property
    def parallel_efficiency(self) -> float:
        """Speedup divided by cube count."""
        return self.speedup / self.n_cubes

    @property
    def comm_fraction(self) -> float:
        """Share of the critical path spent communication-bound."""
        total = self.total_cycles
        comm = sum(layer.cycles for layer in self.layers if layer.comm_bound)
        return comm / total if total else 0.0

    def to_table(self) -> str:
        header = (f"{'layer':<22}{'kind':<6}{'compute Mc':>12}"
                  f"{'comm Mc':>10}{'bound':>8}")
        lines = [f"{self.network_name} on {self.n_cubes} cube(s)",
                 header, "-" * len(header)]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<22}{layer.kind:<6}"
                f"{layer.compute_cycles / 1e6:>12.3f}"
                f"{layer.comm_cycles / 1e6:>10.3f}"
                f"{'comm' if layer.comm_bound else 'compute':>8}")
        lines.append(
            f"speedup {self.speedup:.2f}x on {self.n_cubes} cubes "
            f"(efficiency {100 * self.parallel_efficiency:.0f}%), "
            f"{self.throughput_gops:.1f} GOPs/s")
        return "\n".join(lines)


class MultiCubeModel:
    """Analytic scaling model over a single-cube :class:`AnalyticModel`."""

    def __init__(self, config: MultiCubeConfig) -> None:
        self.config = config
        self._cube_model = AnalyticModel(config.cube)

    def comm_bytes(self, desc) -> float:
        """Bytes each cube must exchange for one descriptor.

        Public because the static shard-plan verifier
        (:mod:`repro.analysis.shardcheck`, NC302) holds the executable
        partitioner's per-cube exchange byte counts to exactly these
        semantics — the analytic and measured communication figures can
        never drift apart.
        """
        return self._comm_bytes(desc)

    def _comm_bytes(self, desc) -> float:
        """Bytes each cube must exchange for one descriptor."""
        n = self.config.n_cubes
        if n == 1:
            return 0.0
        item_bytes = self.config.cube.qformat.total_bits // 8
        if desc.kind in ("conv", "pool"):
            # Row-partitioned image: each cube sends/receives a halo of
            # (kernel-1) rows to each of up to two neighbours, for every
            # input map (passes share the same stored input).
            halo_rows = max(0, desc.kernel - 1)
            in_maps = max(1, desc.connections // max(1, desc.kernel ** 2))
            return 2 * halo_rows * desc.in_width * in_maps * item_bytes
        # Fully connected: all-gather the input vector — each cube sends
        # its 1/n shard to the other n-1 cubes.
        inputs = desc.connections
        return inputs * item_bytes * (n - 1) / n

    def _comm_cycles(self, desc) -> float:
        bytes_out = self._comm_bytes(desc)
        if bytes_out == 0.0:
            return 0.0
        seconds = (bytes_out / self.config.cube_link_bandwidth
                   + LINK_LATENCY_S)
        return seconds * self.config.cube.f_pe_hz

    def evaluate_network(self, network: Network, duplicate: bool = True,
                         training: bool = False) -> MultiCubeReport:
        """Model the network on the cluster."""
        compiler = compile_training if training else compile_inference
        program = compiler(network, self.config.cube, duplicate)
        return self.evaluate_program(program)

    def evaluate_program(self, program,
                         single_cycles=None) -> MultiCubeReport:
        """Model an already-compiled program on the cluster.

        ``single_cycles`` (per-descriptor single-cube cycle counts, in
        descriptor order) lets :meth:`scaling_curve` evaluate them once
        and reuse them for every cluster size; when None they are
        computed here.
        """
        if single_cycles is None:
            single_cycles = [
                self._cube_model.evaluate_descriptor(d).cycles
                for d in program.descriptors]
        n = self.config.n_cubes
        report = MultiCubeReport(
            network_name=program.network_name, n_cubes=n,
            f_clk_hz=self.config.cube.f_pe_hz,
            total_ops=program.total_ops,
            single_cube_cycles=sum(single_cycles))
        for desc, single in zip(program.descriptors, single_cycles,
                                strict=True):
            # Per-cube share: work divides by n; the per-pass overhead
            # (PNG programming) does not.
            overhead = (self._cube_model.factors.pass_overhead_cycles
                        * desc.passes)
            compute = max((single - overhead) / n + overhead, overhead)
            report.layers.append(MultiCubeLayer(
                name=desc.name, kind=desc.kind,
                compute_cycles=compute,
                comm_cycles=self._comm_cycles(desc)))
        return report

    def scaling_curve(self, network: Network, cube_counts,
                      duplicate: bool = True,
                      training: bool = False) -> list[MultiCubeReport]:
        """Evaluate the network across a range of cluster sizes.

        The network is compiled once and the per-descriptor single-cube
        cycles evaluated once; every cluster size reuses both (they do
        not depend on ``n_cubes``).
        """
        compiler = compile_training if training else compile_inference
        program = compiler(network, self.config.cube, duplicate)
        single_cycles = [self._cube_model.evaluate_descriptor(d).cycles
                         for d in program.descriptors]
        reports = []
        for n in cube_counts:
            model = MultiCubeModel(replace(self.config, n_cubes=n))
            reports.append(model.evaluate_program(program, single_cycles))
        return reports
