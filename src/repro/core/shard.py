"""Cycle-accurate multi-cube sharded execution (the paper's §IX).

:mod:`repro.core.multicube` models multi-cube scaling analytically; this
module *executes* it.  A compiled network is partitioned across cubes
the same way the analytic model assumes — locally connected layers split
the image by rows (neighbouring cubes exchange a kernel halo per layer),
fully connected layers split output neurons (the input vector is
all-gathered before the layer runs) — and each cube's shard runs on the
unmodified single-cube cycle simulator.

Three pieces:

* :func:`shard_network` — the compiler-level partitioner.  Every
  descriptor becomes one per-cube :class:`LayerDescriptor` (same PNG
  vocabulary, reduced geometry, freshly derived vault layout) plus, for
  every descriptor after the first, a :class:`CubeLinkExchange` record
  whose per-cube byte counts mirror ``MultiCubeModel._comm_bytes``
  semantics exactly.  When ``MultiCubeConfig.cube_capacity_bytes`` is
  set, plans whose per-cube footprint exceeds it are refused — a
  workload can *require* sharding.
* the inter-cube SerDes link model
  (:class:`repro.noc.cubelink.CubeLinkModel`) — integer serialization
  and latency cycles, per-cube occupancy ledger.
* :class:`ShardedSimulator` — the executor.  Cubes simulate
  independently between exchanges (one :func:`run_cube_job` per cube,
  dispatched through :class:`repro.core.parallel.ParallelPassExecutor`)
  and rendezvous at **conservative barrier cycles**: a layer's cluster
  cycle count is ``exchange_delivery + max(cube compute cycles)``,
  where the exchange delivery time is the slowest cube's frame
  serialization + link latency (+ fault retransmissions).  All barrier
  arithmetic is parent-side integer math over per-cube outcomes folded
  in cube order, so a sharded run is bit-identical — outputs, cycles,
  per-cube stats, fault counters — to the same shards run serially in
  one process (``workers=1``), structurally, not accidentally.

Inter-cube link faults (``FaultConfig.intercube_*`` rates) run the same
CRC/retransmit protocol as mesh links, at frame granularity, salted by
:func:`repro.faults.rng.pass_salt` of the (exchange, cube) identity —
never by execution order — so injections stay identical serial vs
sharded, and rate 0 is pinned bit-identical to no injector at all.

Observability caveat: ambient trace/fault/memo *sessions* are parent-
process state; with ``workers > 1`` the cube processes cannot see them.
Pass ``faults``/``checkpoint`` explicitly (or via the cube config) for
strict session parity between serial and parallel sharded runs.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import compile_inference, default_validate
from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor
from repro.core.metrics import LayerStats, RunReport
from repro.core.multicube import LINK_LATENCY_S, MultiCubeConfig
from repro.core.parallel import ParallelPassExecutor
from repro.errors import ConfigurationError, MappingError
from repro.faults.checkpoint import CheckpointSpec
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector, FaultStats, _flip_bits
from repro.faults.rng import pass_salt
from repro.faults.session import (
    current_checkpoint_session,
    current_fault_session,
)
from repro.fixedpoint import from_float, quantize_float, to_float
from repro.memory.layout import conv_layout, fc_layout
from repro.nn.layers import Dense, Flatten
from repro.nn.network import Network
from repro.noc.cubelink import CubeLinkModel, CubeLinkStats
from repro.obs.live import current_live, intercube_attribution

#: Per-cube link occupancy metric family (see METRIC_FAMILIES).
LINK_OCCUPANCY_METRIC = "neurocube_intercube_link_occupancy"


# ----------------------------------------------------------------------
# the shard plan (compiler output)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CubeSlice:
    """One cube's share of one layer.

    Attributes:
        cube: cube index.
        out_lo, out_hi: owned output range — image rows for conv/pool,
            output neurons for fc (``[lo, hi)``).
        in_lo, in_hi: input range the cube streams — image rows
            including the kernel halo for conv, pooled rows for pool,
            the full ``[0, inputs)`` vector for fc (all-gather).
    """

    cube: int
    out_lo: int
    out_hi: int
    in_lo: int
    in_hi: int


@dataclass(frozen=True)
class CubeLinkExchange:
    """One inter-cube exchange, scheduled before its consuming layer.

    Attributes:
        index: exchange ordinal in the plan — the logical identity
            inter-cube fault draws are salted by.
        layer: name of the consuming descriptor.
        kind: "halo" (conv/pool row refresh) or "all_gather" (fc).
        sent_bytes: per-cube outbound payload, mirroring
            ``MultiCubeModel._comm_bytes`` semantics — halo rows to each
            neighbour for conv/pool, the owned input shard to every
            other cube for fc.
    """

    index: int
    layer: str
    kind: str
    sent_bytes: tuple[int, ...]


@dataclass(frozen=True)
class ShardedLayer:
    """One descriptor's partition across the cluster.

    Attributes:
        index: position in the plan (descriptor order).
        layer_index: source ``repro.nn`` layer index.
        name, kind: from the base descriptor.
        base: the unsharded descriptor the shards were derived from.
        descriptors: one per-cube descriptor, in cube order (the base
            descriptor itself, unrenamed, when ``n_cubes == 1``).
        slices: one :class:`CubeSlice` per cube.
        exchange: the :class:`CubeLinkExchange` delivering this layer's
            inputs, or None (first layer, single cube, or a zero-byte
            halo such as a 1x1 kernel).
    """

    index: int
    layer_index: int
    name: str
    kind: str
    base: LayerDescriptor
    descriptors: tuple[LayerDescriptor, ...]
    slices: tuple[CubeSlice, ...]
    exchange: CubeLinkExchange | None


@dataclass(frozen=True)
class ShardPlan:
    """A network partitioned across a cube cluster."""

    network_name: str
    n_cubes: int
    duplicate: bool
    layers: tuple[ShardedLayer, ...]
    per_cube_bytes: tuple[int, ...]

    @property
    def exchanges(self) -> tuple[CubeLinkExchange, ...]:
        return tuple(entry.exchange for entry in self.layers
                     if entry.exchange is not None)

    def cube_descriptors(self, cube: int) -> tuple[LayerDescriptor, ...]:
        """One cube's full descriptor sequence, in execution order."""
        return tuple(entry.descriptors[cube] for entry in self.layers)


def _row_splits(total: int, n: int, what: str,
                name: str) -> list[tuple[int, int]]:
    """Split ``total`` units into n contiguous ``[lo, hi)`` shares."""
    if total < n:
        raise MappingError(
            f"{name}: cannot shard {total} {what} across {n} cubes; "
            f"every cube needs at least one")
    return [(int(part[0]), int(part[-1]) + 1)
            for part in np.array_split(np.arange(total), n)]


def _mirror_layout(base, fresh):
    """Re-apply the compiler's per-kind layout overrides to a reshard.

    The partitioner rebuilds each cube's layout from its reduced
    geometry; the base descriptor records which overrides the compiler
    applied on top of the generic builders (streamed weights use two
    packets per connection, pooling and the LSTM cell update carry no
    weight bytes, vault-local passes no remote traffic) and they carry
    over unchanged.
    """
    fresh = dataclasses.replace(
        fresh, packets_per_connection=base.packets_per_connection)
    if base.weight_bytes == 0:
        fresh = dataclasses.replace(fresh, weight_bytes=0)
    if base.remote_state_fraction == 0.0:
        fresh = dataclasses.replace(fresh, remote_state_fraction=0.0)
    return fresh


def _cube_layout(desc: LayerDescriptor, cube: int, builder):
    """Build one cube's layout, naming the cube on mapping failures."""
    try:
        return _mirror_layout(desc.layout, builder())
    except MappingError as error:
        raise MappingError(
            f"{desc.name}: cube {cube}'s shard cannot be laid out "
            f"across {desc.layout.vaults} vaults ({error}); use fewer "
            f"cubes or a larger layer") from error


def _shard_descriptor(desc: LayerDescriptor, n: int) -> tuple[
        tuple[LayerDescriptor, ...], tuple[CubeSlice, ...], list[int]]:
    """Partition one descriptor; returns (descriptors, slices, owned).

    ``owned`` is each cube's output item count — the share it must send
    during a following fc all-gather.
    """
    if n == 1:
        if desc.kind == "pool":
            out_items = desc.passes * desc.neurons_per_pass
        elif desc.kind == "conv":
            out_items = (desc.passes // desc.sub_passes
                         * desc.neurons_per_pass)
        else:
            out_items = desc.neurons_per_pass
        full = CubeSlice(cube=0, out_lo=0, out_hi=out_items, in_lo=0,
                         in_hi=desc.in_height)
        return (desc,), (full,), [out_items]
    vaults = desc.layout.vaults
    duplicate = desc.layout.duplicate
    descriptors: list[LayerDescriptor] = []
    slices: list[CubeSlice] = []
    owned: list[int] = []
    if desc.kind == "conv":
        out_h = desc.in_height - desc.kernel + 1
        out_w = desc.in_width - desc.kernel + 1
        out_maps = desc.passes // desc.sub_passes
        in_maps = (max(1, desc.connections // max(1, desc.kernel ** 2))
                   * desc.sub_passes)
        for cube, (lo, hi) in enumerate(
                _row_splits(out_h, n, "output rows", desc.name)):
            rows = hi - lo
            in_lo, in_hi = lo, hi + desc.kernel - 1
            layout = _cube_layout(
                desc, cube, lambda: conv_layout(
                    in_hi - in_lo, desc.in_width, desc.kernel, in_maps,
                    out_maps, vaults, duplicate))
            descriptors.append(dataclasses.replace(
                desc, name=f"{desc.name}.cube{cube}",
                neurons_per_pass=rows * out_w, in_height=in_hi - in_lo,
                layout=layout))
            slices.append(CubeSlice(cube=cube, out_lo=lo, out_hi=hi,
                                    in_lo=in_lo, in_hi=in_hi))
            owned.append(out_maps * rows * out_w)
    elif desc.kind == "pool":
        out_h = desc.in_height // desc.kernel
        out_w = desc.in_width // desc.kernel
        maps = desc.passes
        for cube, (lo, hi) in enumerate(
                _row_splits(out_h, n, "pooled rows", desc.name)):
            rows = hi - lo
            in_lo, in_hi = lo * desc.kernel, hi * desc.kernel
            layout = _cube_layout(
                desc, cube, lambda: conv_layout(
                    in_hi - in_lo, desc.in_width, desc.kernel, maps,
                    maps, vaults, duplicate))
            descriptors.append(dataclasses.replace(
                desc, name=f"{desc.name}.cube{cube}",
                neurons_per_pass=rows * out_w, in_height=in_hi - in_lo,
                layout=layout))
            slices.append(CubeSlice(cube=cube, out_lo=lo, out_hi=hi,
                                    in_lo=in_lo, in_hi=in_hi))
            owned.append(maps * rows * out_w)
    else:
        for cube, (lo, hi) in enumerate(
                _row_splits(desc.neurons_per_pass, n, "output neurons",
                            desc.name)):
            share = hi - lo
            layout = _cube_layout(
                desc, cube, lambda: fc_layout(
                    desc.connections, share, vaults, duplicate))
            descriptors.append(dataclasses.replace(
                desc, name=f"{desc.name}.cube{cube}",
                neurons_per_pass=share, layout=layout))
            slices.append(CubeSlice(cube=cube, out_lo=lo, out_hi=hi,
                                    in_lo=0, in_hi=desc.connections))
            owned.append(share)
    return tuple(descriptors), tuple(slices), owned


def _exchange_bytes(desc: LayerDescriptor, n: int,
                    prev_owned: list[int] | None,
                    item_bytes: int) -> tuple[str, list[int]]:
    """Per-cube outbound bytes for the exchange feeding ``desc``.

    Mirrors ``MultiCubeModel._comm_bytes``: conv/pool cubes refresh a
    ``kernel - 1``-row halo with each neighbour (edge cubes have one
    neighbour, interior cubes two — the analytic model charges every
    cube the interior rate); fc cubes all-gather, each sending its
    owned share of the input vector to the other ``n - 1`` cubes.
    """
    if desc.kind in ("conv", "pool"):
        halo_rows = max(0, desc.kernel - 1)
        in_maps = max(1, desc.connections // max(1, desc.kernel ** 2))
        band = halo_rows * desc.in_width * in_maps * item_bytes
        sent = [band * (1 if cube in (0, n - 1) else 2)
                for cube in range(n)]
        return "halo", sent
    inputs = desc.connections
    if prev_owned is not None and sum(prev_owned) == inputs:
        shares = list(prev_owned)
    else:
        # The previous descriptor's output is not this input vector
        # (e.g. LSTM gates reading [x, h]); fall back to an even split.
        shares = [int(part.size)
                  for part in np.array_split(np.arange(inputs), n)]
    return "all_gather", [share * (n - 1) * item_bytes
                          for share in shares]


def shard_network(network: Network, config: MultiCubeConfig,
                  duplicate: bool = True,
                  validate: bool | None = None) -> ShardPlan:
    """Partition a network across the cluster (compiler level).

    Compiles the network for one cube, then rewrites every descriptor
    into per-cube shards with freshly derived vault layouts, and emits
    one :class:`CubeLinkExchange` per descriptor after the first (the
    analytic model charges communication once per descriptor, so the
    executor does too).  Raises :class:`repro.errors.MappingError` when
    a layer is too small for the cube count or — with
    ``cube_capacity_bytes`` set — when any cube's DRAM footprint
    exceeds its capacity (the message carries the NC303 report: the
    violating cube, its heaviest layer, and the bytes over budget).

    Args:
        network: a built :class:`repro.nn.Network`.
        config: the target cluster.
        duplicate: passed through to the single-cube compiler.
        validate: statically verify the finished plan with
            :mod:`repro.analysis.shardcheck` (checks NC301-NC306)
            before returning, raising
            :class:`repro.errors.PlanCheckError` on any violation; None
            (the default) follows
            :func:`repro.core.compiler.set_default_validate` — the same
            process-wide switch the compile hooks use, so the runner's
            ``--validate`` flag covers shard plans too.
    """
    n = config.n_cubes
    if validate is None:
        validate = default_validate()
    # The single-cube compile hook runs on the *base* program; when the
    # shard hook is live the whole plan (shards included) is verified
    # below, so let the compiler follow the same resolved setting.
    program = compile_inference(network, config.cube, duplicate,
                                validate=validate)
    item_bytes = config.cube.qformat.total_bits // 8
    entries: list[ShardedLayer] = []
    prev_owned: list[int] | None = None
    exchange_count = 0
    for position, desc in enumerate(program.descriptors):
        descriptors, slices, owned = _shard_descriptor(desc, n)
        exchange = None
        if n > 1 and position > 0:
            kind, sent = _exchange_bytes(desc, n, prev_owned, item_bytes)
            if any(sent):
                exchange = CubeLinkExchange(
                    index=exchange_count, layer=desc.name, kind=kind,
                    sent_bytes=tuple(sent))
                exchange_count += 1
        entries.append(ShardedLayer(
            index=position, layer_index=desc.layer_index, name=desc.name,
            kind=desc.kind, base=desc, descriptors=descriptors,
            slices=slices, exchange=exchange))
        prev_owned = owned
    per_cube = tuple(
        sum(entry.descriptors[cube].layout.total_bytes
            for entry in entries)
        for cube in range(n))
    plan = ShardPlan(network_name=network.name, n_cubes=n,
                     duplicate=duplicate, layers=tuple(entries),
                     per_cube_bytes=per_cube)
    if validate:
        # Lazy import: repro.analysis depends on this module's plan
        # types, so a module-level import would be circular.  The full
        # NC3xx sweep includes the NC303 capacity check, so an
        # over-budget plan fails here with the structured report.
        from repro.analysis.shardcheck import check_shard_plan

        check_shard_plan(plan, config,
                         label=f"shard plan for {network.name!r}")
    elif config.cube_capacity_bytes is not None:
        # Validate off: keep the MappingError path as the backstop, but
        # let the static NC303 check author the diagnosis (violating
        # cube, heaviest layer, bytes over budget).
        from repro.analysis.shardcheck import capacity_violations

        over = capacity_violations(plan, config)
        if over:
            raise MappingError(
                f"network {network.name!r} does not fit: "
                f"{over[0].message}")
    return plan


def cube_pass_plans(plan: ShardPlan, cube: int,
                    config: NeurocubeConfig) -> list:
    """Timing-only :class:`repro.core.scheduler.PassPlan` set for a cube.

    Builds the exact plan sequence :func:`run_cube_job` executes (one fc
    plan per fc descriptor, one plan per conv/pool map and sub-pass),
    tensor-free — for inspection and static verification, the same way
    ``nccheck`` consumes single-cube programs.
    """
    from repro.core.scheduler import build_conv_pass, build_fc_pass

    plans = []
    for entry in plan.layers:
        desc = entry.descriptors[cube]
        if desc.kind == "fc":
            plans.append(build_fc_pass(desc, config, None, None, None,
                                       None))
            continue
        out_maps = desc.passes // desc.sub_passes
        for _ in range(out_maps):
            for j in range(desc.sub_passes):
                plans.append(build_conv_pass(
                    desc, config, None, None, 0.0, None, mode="mac"))
                del j
    return plans


# ----------------------------------------------------------------------
# the sharded executor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _FcShare:
    """Picklable stand-in for one cube's output slice of a Dense layer.

    The simulator's fc path reads exactly two attributes of the layer —
    ``params`` ("weight"/"bias") and ``activation`` — so a cube's shard
    ships only its weight rows instead of the whole layer object.
    """

    params: dict
    activation: object


@dataclass(frozen=True)
class CubeJob:
    """One cube's work for one layer (picklable worker input)."""

    cube: int
    descriptor: LayerDescriptor
    layer: object | None
    input_tensor: np.ndarray | None


@dataclass(frozen=True)
class CubeOutcome:
    """What one cube returns for one layer (picklable)."""

    cube: int
    cycles: int
    output: np.ndarray | None
    stats: LayerStats
    host_seconds: float
    fault_stats: FaultStats | None
    degraded: tuple
    memo_stats: object | None


def run_cube_job(config: NeurocubeConfig, faults: FaultConfig | None,
                 checkpoint: CheckpointSpec | None,
                 job: CubeJob) -> CubeOutcome:
    """Simulate one cube's shard of one layer (worker entry point).

    Builds a fresh single-cube simulator per job — cubes share no
    architectural state — and runs the shard through the unmodified
    :meth:`~repro.core.simulator.NeurocubeSimulator.run_descriptor`
    path.  Fault salts and checkpoint labels derive from the shard
    descriptor's name (``....cubeN``), so every cube owns a disjoint
    checkpoint namespace and serial/parallel runs inject identically.
    """
    # Imported here, not at module top: the simulator imports core
    # modules that would otherwise cycle through this one.
    from repro.core.simulator import NeurocubeSimulator

    simulator = NeurocubeSimulator(config, faults=faults,
                                   checkpoint=checkpoint)
    run = simulator.run_descriptor(job.descriptor, job.layer,
                                   job.input_tensor)
    return CubeOutcome(
        cube=job.cube, cycles=run.cycles, output=run.output,
        stats=run.to_stats(), host_seconds=run.host_seconds,
        fault_stats=run.fault_stats, degraded=run.degraded,
        memo_stats=run.memo_stats)


@dataclass
class ExchangeOutcome:
    """Timing (and fault) result of one executed exchange.

    Attributes:
        exchange: the plan record this executes.
        cycles: the barrier delay the cluster paid — the slowest cube's
            delivery time (serialization + latency + retransmissions).
        per_cube_cycles: each cube's frame delivery time.
        lost_cubes: cubes whose inbound frame exhausted its retry
            budget (their received region was zeroed and recorded as a
            degraded result).
        corrupted_cubes: cubes that received a silently corrupted frame
            (CRC off).
    """

    exchange: CubeLinkExchange
    cycles: int
    per_cube_cycles: tuple[int, ...]
    lost_cubes: tuple[int, ...] = ()
    corrupted_cubes: tuple[int, ...] = ()


@dataclass
class ShardRunReport:
    """Result of one sharded run.

    ``report`` is the cluster-level :class:`RunReport` — per-layer
    folded stats (``exchange + max(cube compute)`` cycles, summed
    counters, summed footprints) exactly as ``parallel`` folds per-map
    outcomes, so everything downstream of :class:`RunReport` works
    unchanged.  The sharding-specific detail rides alongside.
    """

    plan: ShardPlan
    report: RunReport
    cube_layers: list = field(default_factory=list)
    exchanges: list = field(default_factory=list)
    fault_stats: FaultStats | None = None
    link: CubeLinkStats | None = None

    @property
    def total_cycles(self) -> float:
        return self.report.total_cycles

    @property
    def comm_cycles(self) -> int:
        """Cycles the cluster spent at exchange barriers."""
        return sum(outcome.cycles for outcome in self.exchanges)

    def link_occupancy(self, cube: int) -> float:
        """Fraction of the run a cube's SerDes links were serializing."""
        if self.link is None:
            return 0.0
        return self.link.occupancy(cube, int(self.total_cycles))

    def to_table(self) -> str:
        rows = [self.report.to_table()]
        occupancy = ", ".join(
            f"cube{cube}={100 * self.link_occupancy(cube):.1f}%"
            for cube in range(self.plan.n_cubes))
        rows.append(
            f"SHARD: {self.plan.n_cubes} cube(s), "
            f"{len(self.exchanges)} exchange(s), "
            f"{self.comm_cycles / 1e6:.3f} Mcycles at barriers "
            f"({100 * self.comm_cycles / self.total_cycles:.1f}% of "
            f"total); link occupancy {occupancy}")
        if self.fault_stats is not None and self.fault_stats.any_injected:
            nonzero = ", ".join(
                f"{name}={value}"
                for name, value in self.fault_stats.as_dict().items()
                if value)
            rows.append(f"SHARD FAULTS: {nonzero}")
        return "\n".join(rows)


@dataclass
class _RunState:
    """Mutable parent-side state threaded through one sharded run."""

    plan: ShardPlan
    report: RunReport
    links: CubeLinkModel
    executor: ParallelPassExecutor
    faults: FaultConfig | None
    checkpoint: CheckpointSpec | None
    injector: FaultInjector | None
    cube_layers: list = field(default_factory=list)
    exchanges: list = field(default_factory=list)
    fault_stats: FaultStats | None = None
    cluster_cycle: int = 0
    positions: list | None = None
    drained_degraded: int = 0


def _slice_coords(kind: str, slice_: CubeSlice, shape,
                  flat: np.ndarray):
    """Map flat input-tensor positions to a cube's local slice coords."""
    if kind == "fc":
        return (flat,)
    _, height, width = shape
    maps_index = flat // (height * width)
    remainder = flat % (height * width)
    return (maps_index, remainder // width - slice_.in_lo,
            remainder % width)


class ShardedSimulator:
    """Cycle-accurate execution of a network sharded across cubes.

    Args:
        config: the cluster (per-cube config, cube count, link model
            parameters, optional per-cube capacity).
        workers: process-pool width for cube dispatch; defaults to
            ``config.n_cubes``.  ``workers=1`` runs every cube in-process
            through the identical code path (the serial reference the
            equivalence suite pins the parallel mode against).
        faults: explicit :class:`FaultConfig`; falls back to
            ``config.cube.faults``, then to the ambient fault session.
        checkpoint: explicit :class:`CheckpointSpec`; falls back to the
            ambient checkpoint session.
    """

    def __init__(self, config: MultiCubeConfig,
                 workers: int | None = None,
                 faults: FaultConfig | None = None,
                 checkpoint: CheckpointSpec | None = None) -> None:
        if config.n_cubes < 1:
            raise ConfigurationError(
                f"n_cubes must be >= 1, got {config.n_cubes}")
        self.config = config
        self.workers = (config.n_cubes if workers is None
                        else max(1, int(workers)))
        self.faults = faults
        self.checkpoint = checkpoint
        # Each cube worker simulates its passes serially: the cluster's
        # parallelism is one process per cube, not nested pools.
        self._cube_config = dataclasses.replace(config.cube,
                                                sim_workers=1)

    # -- resolution (parent-side, so pool workers see the same state) --

    def _resolve_faults(self) -> FaultConfig | None:
        if self.faults is not None:
            return self.faults
        if self.config.cube.faults is not None:
            return self.config.cube.faults
        session = current_fault_session()
        return session.config if session is not None else None

    def _resolve_checkpoint(self) -> CheckpointSpec | None:
        if self.checkpoint is not None:
            return self.checkpoint
        session = current_checkpoint_session()
        return session.spec if session is not None else None

    # -- run entry points ----------------------------------------------

    def run_network(self, network: Network, x: np.ndarray,
                    duplicate: bool = True,
                    validate: bool | None = None) -> tuple[np.ndarray,
                                                           ShardRunReport]:
        """Simulate a full network, functionally, sharded across cubes.

        Functional sharding needs one descriptor per compute layer
        (LSTMs lower to five — use :meth:`run_timing` for those) and,
        for fc layers, a :class:`~repro.nn.layers.Dense` instance
        (other fc-kind layers are timing-only here too).  ``validate``
        statically verifies the shard plan (NC301-NC306) before any
        cube process is spawned; None follows the process-wide default.
        """
        # Host wall-clock only; never feeds any simulated result.
        # nclint: allow(NC101) host-side timing
        started = time.perf_counter()
        plan = shard_network(network, self.config, duplicate,
                             validate=validate)
        by_layer: dict[int, ShardedLayer] = {}
        for entry in plan.layers:
            if entry.layer_index in by_layer:
                raise MappingError(
                    f"{network.name!r}: layer {entry.name!r} lowers to "
                    f"multiple descriptors; functional sharded "
                    f"execution needs one descriptor per layer — use "
                    f"run_timing for timing-only sharding")
            by_layer[entry.layer_index] = entry
        state = self._begin_run(plan, network.name)
        current = quantize_float(np.asarray(x, dtype=np.float64),
                                 self.config.cube.qformat)
        for index, layer in enumerate(network.layers):
            if isinstance(layer, Flatten):
                current = current.reshape(-1)
                continue
            entry = by_layer.get(index)
            if entry is None:
                raise MappingError(
                    f"layer {layer.name!r} missing from shard plan")
            inputs = self._cube_inputs(entry, current)
            exchange_cycles = self._run_exchange(state, entry, current,
                                                 inputs)
            jobs = [CubeJob(cube=cube,
                            descriptor=entry.descriptors[cube],
                            layer=self._cube_layer(entry, layer, cube),
                            input_tensor=inputs[cube])
                    for cube in range(plan.n_cubes)]
            outcomes = self._dispatch(state, jobs)
            current = self._stitch(entry, outcomes)
            state.positions = self._owned_positions(entry, current)
            self._fold_layer(state, entry, outcomes, exchange_cycles)
        # nclint: allow(NC101) host-side timing
        state.report.host_seconds = time.perf_counter() - started
        return current, self._finalize(state)

    def run_timing(self, network: Network,
                   duplicate: bool = True,
                   validate: bool | None = None) -> ShardRunReport:
        """Simulate timing only, sharded — every descriptor, no tensors.

        Iterates the plan's descriptor order directly, so multi-
        descriptor layers (LSTM gates + cell update) shard too; link
        faults still run their retry protocol (drops and corruptions
        cost cycles; lost frames are recorded as degraded results).
        """
        # nclint: allow(NC101) host-side timing
        started = time.perf_counter()
        plan = shard_network(network, self.config, duplicate,
                             validate=validate)
        state = self._begin_run(plan, network.name)
        for entry in plan.layers:
            exchange_cycles = self._run_exchange(state, entry, None,
                                                 None)
            jobs = [CubeJob(cube=cube,
                            descriptor=entry.descriptors[cube],
                            layer=None, input_tensor=None)
                    for cube in range(plan.n_cubes)]
            outcomes = self._dispatch(state, jobs)
            self._fold_layer(state, entry, outcomes, exchange_cycles)
        # nclint: allow(NC101) host-side timing
        state.report.host_seconds = time.perf_counter() - started
        return self._finalize(state)

    # -- internals ------------------------------------------------------

    def _begin_run(self, plan: ShardPlan, network_name: str) -> _RunState:
        faults = self._resolve_faults()
        injector = None
        if faults is not None and faults.intercube_active:
            # One parent-side injector for the whole run: inter-cube
            # draws are keyed by (exchange, cube, attempt) identity, so
            # a run-level salt of 0 is stable across execution modes.
            injector = FaultInjector(faults, salt=0)
        report = RunReport(network_name=network_name,
                           f_clk_hz=self.config.cube.f_pe_hz,
                           peak_gops=self.config.total_peak_gops,
                           source="cycle")
        links = CubeLinkModel(
            n_cubes=plan.n_cubes,
            links_per_cube=self.config.links_per_cube,
            link_bandwidth=self.config.link_bandwidth,
            latency_s=LINK_LATENCY_S,
            f_clk_hz=self.config.cube.f_pe_hz)
        return _RunState(plan=plan, report=report, links=links,
                         executor=ParallelPassExecutor(self.workers),
                         faults=faults,
                         checkpoint=self._resolve_checkpoint(),
                         injector=injector)

    def _dispatch(self, state: _RunState,
                  jobs: list[CubeJob]) -> list[CubeOutcome]:
        from functools import partial

        worker = partial(run_cube_job, self._cube_config, state.faults,
                         state.checkpoint)
        return state.executor.map(worker, jobs)

    def _cube_layer(self, entry: ShardedLayer, layer, cube: int):
        """The layer object one cube's job ships (or a Dense slice)."""
        if entry.kind != "fc":
            return layer
        if not isinstance(layer, Dense):
            raise MappingError(
                f"{entry.name}: functional fc sharding supports Dense "
                f"layers only (got {type(layer).__name__}); use "
                f"run_timing")
        lo, hi = entry.slices[cube].out_lo, entry.slices[cube].out_hi
        return _FcShare(
            params={"weight": layer.params["weight"][lo:hi],
                    "bias": layer.params["bias"][lo:hi]},
            activation=layer.activation)

    def _cube_inputs(self, entry: ShardedLayer,
                     current: np.ndarray) -> list[np.ndarray | None]:
        """Each cube's input slice of the stitched layer input.

        Slices are views unless inter-cube faults are live — a
        corrupted or lost frame mutates one cube's copy only.
        """
        mutable = entry.exchange is not None
        inputs: list[np.ndarray | None] = []
        for slice_ in entry.slices:
            if entry.kind == "fc":
                piece = current.reshape(-1)
            else:
                piece = current[:, slice_.in_lo:slice_.in_hi, :]
            inputs.append(piece.copy() if mutable else piece)
        return inputs

    def _owned_positions(self, entry: ShardedLayer,
                         output: np.ndarray) -> list[np.ndarray]:
        """Flat output positions each cube produced (C-order).

        Tracked across layers so an fc all-gather knows which inbound
        items each cube actually *received* (everything it did not own)
        — the region link faults corrupt or zero.
        """
        positions = []
        if entry.kind == "fc":
            for slice_ in entry.slices:
                positions.append(np.arange(slice_.out_lo, slice_.out_hi,
                                           dtype=np.int64))
            return positions
        maps, height, width = output.shape
        for slice_ in entry.slices:
            rows = np.arange(slice_.out_lo, slice_.out_hi,
                             dtype=np.int64)
            grid = (np.arange(maps, dtype=np.int64)[:, None, None]
                    * (height * width)
                    + rows[None, :, None] * width
                    + np.arange(width, dtype=np.int64)[None, None, :])
            positions.append(grid.reshape(-1))
        return positions

    def _received_positions(self, entry: ShardedLayer, cube: int,
                            shape) -> np.ndarray:
        """Flat positions of cube ``cube``'s inbound frame contents."""
        slice_ = entry.slices[cube]
        if entry.kind == "fc":
            needed = np.arange(int(np.prod(shape)), dtype=np.int64)
        else:
            maps, height, width = shape
            rows = np.arange(slice_.in_lo, slice_.in_hi, dtype=np.int64)
            needed = (np.arange(maps, dtype=np.int64)[:, None, None]
                      * (height * width)
                      + rows[None, :, None] * width
                      + np.arange(width, dtype=np.int64)[None, None, :]
                      ).reshape(-1)
        if self._prev_positions is None:
            return needed
        owned = self._prev_positions[cube]
        return np.setdiff1d(needed, owned)

    def _run_exchange(self, state: _RunState, entry: ShardedLayer,
                      current: np.ndarray | None,
                      inputs: list[np.ndarray | None] | None) -> int:
        """Execute one exchange: timing, occupancy, faults, data effects.

        Conservative sync: the cluster resumes when the slowest cube's
        frame has been delivered — ``max`` over per-cube serialization +
        latency + retransmission backoffs.  Returns that barrier delay
        (0 when the entry has no exchange).
        """
        exchange = entry.exchange
        if exchange is None:
            return 0
        self._prev_positions = state.positions
        injector = state.injector
        per_cube: list[int] = []
        lost: list[int] = []
        corrupted: list[int] = []
        for cube, sent in enumerate(exchange.sent_bytes):
            if sent <= 0:
                per_cube.append(0)
                continue
            serialization = state.links.serialization_cycles(sent)
            delivery = state.links.delivery_cycles(sent)
            extra = 0
            retransmissions = 0
            outcome = None
            if injector is not None:
                # The frame's logical identity — never execution order.
                salt = pass_salt(exchange.index, cube)
                extra, retransmissions, outcome = (
                    injector.intercube_transfer(salt, cube,
                                                serialization))
            state.links.record_send(cube, sent,
                                    transmissions=1 + retransmissions)
            per_cube.append(delivery + extra)
            if outcome == "lost":
                lost.append(cube)
                injector.record_degraded(
                    "intercube_frame_lost", state.cluster_cycle,
                    f"{entry.name}: cube {cube} inbound frame lost "
                    f"after {injector.config.max_retries} "
                    f"retransmissions")
                if inputs is not None:
                    self._zero_received(entry, cube, current, inputs)
            elif outcome == "corrupt":
                corrupted.append(cube)
                if inputs is not None:
                    self._corrupt_received(state, entry, cube, current,
                                           inputs)
        cycles = max(per_cube) if per_cube else 0
        state.exchanges.append(ExchangeOutcome(
            exchange=exchange, cycles=cycles,
            per_cube_cycles=tuple(per_cube), lost_cubes=tuple(lost),
            corrupted_cubes=tuple(corrupted)))
        if injector is not None:
            fresh = injector.degraded[state.drained_degraded:]
            state.report.degraded.extend(fresh)
            state.drained_degraded = len(injector.degraded)
        return cycles

    def _zero_received(self, entry: ShardedLayer, cube: int,
                       current: np.ndarray,
                       inputs: list[np.ndarray | None]) -> None:
        """Graceful degradation: a lost frame's region reads as zeros."""
        received = self._received_positions(entry, cube, current.shape)
        if received.size == 0:
            return
        coords = _slice_coords(entry.kind, entry.slices[cube],
                               current.shape, received)
        inputs[cube][coords] = 0.0

    def _corrupt_received(self, state: _RunState, entry: ShardedLayer,
                          cube: int, current: np.ndarray,
                          inputs: list[np.ndarray | None]) -> None:
        """Silent (CRC-off) corruption: flip one bit of one item."""
        received = self._received_positions(entry, cube, current.shape)
        if received.size == 0:
            return
        salt = pass_salt(entry.exchange.index, cube)
        item, bit = state.injector.intercube_corrupt_site(
            salt, cube, int(received.size))
        flat = received[item % received.size]
        coords = _slice_coords(entry.kind, entry.slices[cube],
                               current.shape, np.asarray([flat]))
        qformat = self.config.cube.qformat
        raw = int(from_float(inputs[cube][coords], qformat)[0])
        inputs[cube][coords] = to_float(
            np.asarray([_flip_bits(raw, (bit,))]), qformat)

    def _stitch(self, entry: ShardedLayer,
                outcomes: list[CubeOutcome]) -> np.ndarray:
        """Reassemble the cubes' outputs into the full layer output."""
        parts = [outcome.output for outcome in outcomes]
        if entry.kind == "fc":
            return np.concatenate(parts)
        return np.concatenate(parts, axis=1)

    def _fold_layer(self, state: _RunState, entry: ShardedLayer,
                    outcomes: list[CubeOutcome],
                    exchange_cycles: int) -> None:
        """Fold per-cube outcomes into one cluster layer row.

        The conservative barrier: every cube has finished its shard by
        ``max(cube cycles)``, and the next layer's inputs were delivered
        ``exchange_cycles`` before the shards started — so the layer
        costs their sum on the cluster clock.  Counters fold in cube
        order, exactly as ``parallel`` folds map outcomes.
        """
        base = entry.base
        compute = max(outcome.cycles for outcome in outcomes)
        cycles = exchange_cycles + compute
        packets = sum(outcome.stats.packets for outcome in outcomes)
        lateral = sum(
            round(outcome.stats.packets * outcome.stats.lateral_fraction)
            for outcome in outcomes)
        latency = sum(
            outcome.stats.packets * outcome.stats.mean_packet_latency
            for outcome in outcomes)
        stats = LayerStats(
            name=base.name, kind=base.kind, phase=base.phase.value,
            duplicate=base.duplicate, neurons=base.neurons,
            connections=base.connections, macs=base.macs, ops=base.ops,
            cycles=cycles, bound="measured", packets=packets,
            lateral_fraction=lateral / packets if packets else 0.0,
            state_bytes=sum(d.layout.state_bytes
                            for d in entry.descriptors),
            weight_bytes=sum(d.layout.weight_bytes
                             for d in entry.descriptors),
            duplicated_bytes=sum(d.layout.duplicated_bytes
                                 for d in entry.descriptors),
            mean_packet_latency=latency / packets if packets else 0.0,
            pe_busy_cycles=sum(o.stats.pe_busy_cycles for o in outcomes),
            pe_idle_cycles=sum(o.stats.pe_idle_cycles for o in outcomes),
            search_stall_cycles=sum(o.stats.search_stall_cycles
                                    for o in outcomes),
            inject_stall_cycles=sum(o.stats.inject_stall_cycles
                                    for o in outcomes))
        state.report.layers.append(stats)
        state.cube_layers.append(tuple(o.stats for o in outcomes))
        state.cluster_cycle += cycles
        for outcome in outcomes:
            state.report.degraded.extend(outcome.degraded)
            if outcome.fault_stats is not None:
                if state.fault_stats is None:
                    state.fault_stats = FaultStats()
                state.fault_stats.merge(outcome.fault_stats)
            if outcome.memo_stats is not None:
                if state.report.memo is None:
                    from repro.memo.store import MemoStats

                    state.report.memo = MemoStats()
                state.report.memo.merge(outcome.memo_stats)
        if exchange_cycles >= compute:
            state.report.attribution.append(intercube_attribution(
                base.name, base.kind, exchange_cycles, compute))

    def _finalize(self, state: _RunState) -> ShardRunReport:
        if state.injector is not None:
            if state.fault_stats is None:
                state.fault_stats = FaultStats()
            state.fault_stats.merge(state.injector.stats)
        link_stats = state.links.stats()
        shard_report = ShardRunReport(
            plan=state.plan, report=state.report,
            cube_layers=state.cube_layers, exchanges=state.exchanges,
            fault_stats=state.fault_stats, link=link_stats)
        live = current_live()
        if live is not None and state.plan.n_cubes > 1:
            total = int(state.report.total_cycles)
            for cube in range(state.plan.n_cubes):
                live.registry.set_gauge(
                    LINK_OCCUPANCY_METRIC,
                    link_stats.occupancy(cube, total), cube=str(cube))
        return shard_report

    #: Set per exchange; kept as an attribute so the received-region
    #: helpers see the ownership map of the *previous* layer.
    _prev_positions: list | None = None
