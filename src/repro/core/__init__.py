"""The Neurocube core: the paper's primary contribution.

This package implements memory-centric neural computing (§IV-§V): the
programmable neurosequence generator (PNG) with its three-counter FSM and
Eq. 4/5 address generation, the processing element with temporal buffer,
OP-counter and 16-sub-bank cache, the host/global controller that programs
one layer at a time, a flit-accurate system simulator, and a calibrated
analytic performance model for paper-scale networks.
"""

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor, NeurocubeProgram, Phase
from repro.core.compiler import compile_inference, compile_training
from repro.core.mac import MACUnit
from repro.core.png import AddressGenerator, PNGRegisters, NeurosequenceGenerator
from repro.core.host import (
    HostController,
    HostSchedule,
    registers_for_descriptor,
)
from repro.core.parallel import (
    MapOutcome,
    MapTask,
    ParallelPassExecutor,
    PassOutcome,
    SubPassSpec,
)
from repro.core.pe import ProcessingElement
from repro.core.simulator import LayerRun, NeurocubeSimulator
from repro.core.analytic import AnalyticModel
from repro.core.metrics import LayerStats, RunReport, StreamReport
from repro.core.calibration import CalibrationResult, calibrate
from repro.core.multicube import (
    MultiCubeConfig,
    MultiCubeModel,
    MultiCubeReport,
)
from repro.core.roofline import RooflineModel, RooflineReport
from repro.core.shard import (
    CubeLinkExchange,
    CubeSlice,
    ShardPlan,
    ShardRunReport,
    ShardedLayer,
    ShardedSimulator,
    shard_network,
)

__all__ = [
    "NeurocubeConfig",
    "LayerDescriptor",
    "NeurocubeProgram",
    "Phase",
    "compile_inference",
    "compile_training",
    "MACUnit",
    "PNGRegisters",
    "AddressGenerator",
    "NeurosequenceGenerator",
    "ProcessingElement",
    "NeurocubeSimulator",
    "LayerRun",
    "ParallelPassExecutor",
    "MapTask",
    "MapOutcome",
    "PassOutcome",
    "SubPassSpec",
    "AnalyticModel",
    "LayerStats",
    "RunReport",
    "StreamReport",
    "CalibrationResult",
    "calibrate",
    "MultiCubeConfig",
    "MultiCubeModel",
    "MultiCubeReport",
    "HostController",
    "HostSchedule",
    "registers_for_descriptor",
    "RooflineModel",
    "RooflineReport",
    "CubeLinkExchange",
    "CubeSlice",
    "ShardPlan",
    "ShardRunReport",
    "ShardedLayer",
    "ShardedSimulator",
    "shard_network",
]
