"""Result dataclasses shared by the cycle simulator and analytic model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import giga_ops_per_second


@dataclass(frozen=True)
class LayerStats:
    """Performance and memory accounting for one descriptor.

    Attributes:
        name: descriptor name.
        kind: "conv" / "fc" / "pool".
        phase: training phase name.
        duplicate: layout strategy.
        neurons, connections, macs, ops: work counts.
        cycles: reference-clock cycles the descriptor took.
        bound: the binding resource — "compute", "memory" or "noc".
        packets: NoC packets injected.
        lateral_fraction: fraction of packets that crossed the mesh.
        state_bytes, weight_bytes, duplicated_bytes: DRAM footprint.
        mean_packet_latency: mean inject-to-eject packet latency in
            cycles (0.0 for analytic rows, which don't model it).
        pe_busy_cycles: PE cycles spent computing, summed over PEs
            (0 for analytic rows, which don't measure it).
        pe_idle_cycles: PE cycles stalled waiting for operands.
        search_stall_cycles: cycles lost to cache sub-bank searches.
        inject_stall_cycles: PNG cycles blocked by NoC backpressure.
    """

    name: str
    kind: str
    phase: str
    duplicate: bool
    neurons: int
    connections: int
    macs: int
    ops: int
    cycles: float
    bound: str
    packets: float
    lateral_fraction: float
    state_bytes: int
    weight_bytes: int
    duplicated_bytes: int
    mean_packet_latency: float = 0.0
    pe_busy_cycles: int = 0
    pe_idle_cycles: int = 0
    search_stall_cycles: int = 0
    inject_stall_cycles: int = 0

    @property
    def total_bytes(self) -> int:
        return self.state_bytes + self.weight_bytes + self.duplicated_bytes

    def throughput_gops(self, f_clk_hz: float) -> float:
        """Layer throughput at clock ``f_clk_hz`` in GOPs/s."""
        return giga_ops_per_second(self.ops, self.cycles, f_clk_hz)


@dataclass
class RunReport:
    """A full-network evaluation result.

    Attributes:
        network_name: source network.
        f_clk_hz: the reference clock the cycle counts are in.
        peak_gops: configuration's arithmetic peak, for utilisation.
        layers: per-descriptor stats in execution order.
        source: "cycle" or "analytic".
        host_seconds: wall-clock host time the simulation took (0.0 for
            analytic reports, which are effectively instantaneous).
        degraded: :class:`repro.faults.DegradedResult` records from all
            simulated layers, in execution order — non-empty only when
            fault injection forced graceful degradation (lost packets,
            watchdog force-fires, forgiven write-backs); the affected
            outputs are approximate, and the report says so instead of
            silently presenting them as exact.
        memo: folded :class:`repro.memo.MemoStats` counters when a
            persistent memo store served this run, else None.  Kept
            duck-typed (``as_dict``/``any``/``format``) so this module
            stays below :mod:`repro.memo` in the layering.
        attribution: per-layer bottleneck verdicts
            (:class:`repro.obs.attribution.LayerAttribution`) when the
            run was observed (trace or live session active), else
            empty.  Duck-typed (``format``/``to_dict``) for the same
            layering reason as ``memo``.
    """

    network_name: str
    f_clk_hz: float
    peak_gops: float
    layers: list[LayerStats] = field(default_factory=list)
    source: str = "analytic"
    host_seconds: float = 0.0
    degraded: list = field(default_factory=list)
    memo: object | None = None
    attribution: list = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(layer.ops for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def throughput_gops(self) -> float:
        """Whole-run throughput in GOPs/s."""
        if not self.layers:
            raise ConfigurationError("report has no layers")
        if self.total_cycles == 0:
            raise ConfigurationError(
                f"report for {self.network_name!r} has zero total cycles; "
                "throughput is undefined (no layers simulated yet?)")
        return giga_ops_per_second(self.total_ops, self.total_cycles,
                                   self.f_clk_hz)

    @property
    def utilization(self) -> float:
        """Achieved fraction of the arithmetic peak."""
        return self.throughput_gops / self.peak_gops

    @property
    def seconds(self) -> float:
        """Wall-clock seconds for one input (frame/epoch-sample)."""
        return self.total_cycles / self.f_clk_hz

    @property
    def frames_per_second(self) -> float:
        """Inputs processed per second at this clock."""
        if self.total_cycles == 0:
            raise ConfigurationError(
                f"report for {self.network_name!r} has zero total cycles; "
                "frames/s is undefined (no layers simulated yet?)")
        return 1.0 / self.seconds

    @property
    def simulated_cycles_per_second(self) -> float:
        """Simulation rate: reference cycles per host wall-clock second.

        Raises :class:`ConfigurationError` when no host time was
        recorded (analytic reports), mirroring
        :attr:`frames_per_second`'s handling of zero cycles — a silent
        0.0 reads like an infinitely slow simulator in benchmark output.
        """
        if self.host_seconds <= 0.0:
            raise ConfigurationError(
                f"report for {self.network_name!r} has no recorded host "
                "time; simulation rate is undefined (analytic source?)")
        return self.total_cycles / self.host_seconds

    @property
    def state_bytes(self) -> int:
        return sum(layer.state_bytes for layer in self.layers
                   if layer.phase == "forward")

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers
                   if layer.phase == "forward")

    @property
    def duplicated_bytes(self) -> int:
        return sum(layer.duplicated_bytes for layer in self.layers
                   if layer.phase == "forward")

    @property
    def total_bytes(self) -> int:
        return self.state_bytes + self.weight_bytes + self.duplicated_bytes

    @property
    def memory_overhead(self) -> float:
        base = self.state_bytes + self.weight_bytes
        return self.duplicated_bytes / base if base else 0.0

    @property
    def lateral_fraction(self) -> float:
        """Packet-weighted lateral traffic fraction across layers."""
        packets = sum(layer.packets for layer in self.layers)
        if not packets:
            return 0.0
        lateral = sum(layer.packets * layer.lateral_fraction
                      for layer in self.layers)
        return lateral / packets

    def layer(self, name: str) -> LayerStats:
        """Find a layer's stats by descriptor name."""
        for stats in self.layers:
            if stats.name == name:
                return stats
        raise ConfigurationError(
            f"no layer {name!r} in report; have "
            f"{[layer.name for layer in self.layers]}")

    def to_table(self) -> str:
        """Render the per-layer stats as an aligned text table."""
        header = (f"{'layer':<22}{'kind':<6}{'MOPs':>9}{'Mcycles':>10}"
                  f"{'GOPs/s':>9}{'bound':>9}{'lat%':>7}{'pktlat':>8}"
                  f"{'MB':>9}")
        rows = [f"{self.network_name} ({self.source}, "
                f"{self.f_clk_hz / 1e9:.2f} GHz clock)", header,
                "-" * len(header)]
        for layer in self.layers:
            rows.append(
                f"{layer.name:<22}{layer.kind:<6}"
                f"{layer.ops / 1e6:>9.1f}{layer.cycles / 1e6:>10.3f}"
                f"{layer.throughput_gops(self.f_clk_hz):>9.1f}"
                f"{layer.bound:>9}"
                f"{100 * layer.lateral_fraction:>7.1f}"
                f"{layer.mean_packet_latency:>8.1f}"
                f"{layer.total_bytes / 1e6:>9.2f}")
        rows.append(
            f"TOTAL: {self.total_ops / 1e9:.3f} GOPs in "
            f"{self.total_cycles / 1e6:.2f} Mcycles -> "
            f"{self.throughput_gops:.1f} GOPs/s "
            f"({100 * self.utilization:.1f}% of peak), "
            f"{self.frames_per_second:.2f} frames/s, "
            f"{self.total_bytes / 1e6:.1f} MB "
            f"(+{100 * self.memory_overhead:.1f}% duplication)")
        if self.degraded:
            kinds: dict[str, int] = {}
            for record in self.degraded:
                kinds[record.kind] = kinds.get(record.kind, 0) + 1
            summary = ", ".join(f"{kind}={count}"
                                for kind, count in sorted(kinds.items()))
            rows.append(
                f"DEGRADED: {len(self.degraded)} fault-degraded results "
                f"({summary}); affected outputs are approximate")
        if self.memo is not None and self.memo.any:
            rows.append(f"MEMO: {self.memo.format()}")
        for verdict in self.attribution:
            rows.append(f"ATTRIBUTION: {verdict.format()}")
        return "\n".join(rows)


@dataclass
class StreamReport:
    """Result of a streaming run: timing compiled once, frames replayed.

    A streaming run splits inference into a *cold* phase — cycle-
    simulate timing once per distinct layer shape, memoized (and, with
    a memo store, persisted) — and a *warm* phase that pushes a stream
    of frames through the functional fixed-point path only, reusing the
    cold phase's cycle counts for every frame.  The split is sound
    because layer timing is data-independent (pinned by the timing-vs-
    functional equivalence tests) and the functional path is bit-exact
    against the simulator's assembled outputs.

    Attributes:
        network_name: source network.
        f_clk_hz: reference clock of the cold phase's cycle counts.
        frames: number of frames streamed in the warm phase.
        cold: the cold phase's :class:`RunReport` (cycle source); its
            per-frame cycle counts apply to every streamed frame.
        cold_host_seconds: wall-clock host time of the cold phase
            (compile + timing simulation).
        warm_host_seconds: wall-clock host time of the warm phase (all
            frames through the functional path).
        memo: folded :class:`repro.memo.MemoStats` counters when a
            persistent memo store served the cold phase, else None.
        outputs: per-frame output tensors, in stream order.
    """

    network_name: str
    f_clk_hz: float
    frames: int
    cold: RunReport
    cold_host_seconds: float = 0.0
    warm_host_seconds: float = 0.0
    memo: object | None = None
    outputs: list = field(default_factory=list)

    @property
    def cycles_per_frame(self) -> float:
        """Simulated cycles for one frame (the cold phase's total)."""
        return self.cold.total_cycles

    @property
    def total_cycles(self) -> float:
        """Simulated cycles across the whole stream."""
        return self.frames * self.cycles_per_frame

    @property
    def modeled_frames_per_second(self) -> float:
        """Frames/s the simulated hardware would sustain."""
        return self.cold.frames_per_second

    @property
    def warm_frames_per_second(self) -> float:
        """Host-side streaming throughput of the warm phase.

        Raises :class:`ConfigurationError` when no warm host time was
        recorded, mirroring :attr:`RunReport.frames_per_second` — a
        silent 0.0 reads like an infinitely slow pipeline.
        """
        if self.warm_host_seconds <= 0.0:
            raise ConfigurationError(
                f"stream of {self.network_name!r} has no recorded warm "
                "host time; throughput is undefined")
        return self.frames / self.warm_host_seconds

    @property
    def warm_speedup(self) -> float:
        """Warm per-frame host time vs the cold phase's."""
        if self.warm_host_seconds <= 0.0 or self.frames == 0:
            raise ConfigurationError(
                f"stream of {self.network_name!r} has no recorded warm "
                "host time; speedup is undefined")
        return self.cold_host_seconds / (self.warm_host_seconds
                                         / self.frames)

    def to_table(self) -> str:
        """Cold-phase table plus the streaming summary lines."""
        rows = [self.cold.to_table()]
        rows.append(
            f"STREAM: {self.frames} frames at "
            f"{self.cycles_per_frame / 1e6:.3f} Mcycles/frame "
            f"({self.modeled_frames_per_second:.2f} modeled frames/s); "
            f"cold {self.cold_host_seconds:.3f}s host, warm "
            f"{self.warm_frames_per_second:.1f} frames/s host "
            f"({self.warm_speedup:.1f}x per-frame speedup)")
        if self.memo is not None and self.memo.any:
            rows.append(f"MEMO: {self.memo.format()}")
        return "\n".join(rows)
