"""Compiler: lower an ``repro.nn`` network to PNG layer descriptors.

The host programs the Neurocube one layer at a time (§IV); this module
produces that program.  Each functional layer becomes one
:class:`LayerDescriptor` carrying the PNG loop bounds and a vault data
layout.  Multi-feature-map convolutions are lowered to one pass per output
map so each pass's kernel fits the PE weight register; when a kernel does
not fit (Table II allows 3,600 bits) the compiler falls back to streaming
the weights from DRAM alongside the states.

Training (§VI-2) compiles to the forward program followed by, per weighted
layer in reverse order, a backward-data pass, a backward-weight pass, and
a weight-update pass, each expressed in the same descriptor vocabulary —
on the Neurocube backpropagation is just more layers of weighted sums.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor, NeurocubeProgram, Phase
from repro.errors import MappingError
from repro.memory.layout import conv_layout, fc_layout
from repro.nn.layers import (
    LSTM,
    Conv2D,
    Dense,
    Flatten,
    PixelwiseDense,
    Recurrent,
)
from repro.nn.layers.lstm import GATES
from repro.nn.layers.pool import _Pool2D
from repro.nn.network import Network


#: Process-wide default for the compilers' ``validate=`` hook.  The
#: experiment runner's ``--validate`` flag flips it so every compile it
#: triggers — however deep in an experiment — is statically verified.
_DEFAULT_VALIDATE = False


def set_default_validate(enabled: bool) -> None:
    """Set the default for ``compile_inference(validate=None)`` et al."""
    global _DEFAULT_VALIDATE
    _DEFAULT_VALIDATE = bool(enabled)


def default_validate() -> bool:
    """The current process-wide ``validate=`` default.

    Every ``validate=None`` hook resolves through this — the compilers
    here and the shard partitioner
    (:func:`repro.core.shard.shard_network`) — so the runner's
    ``--validate`` flag covers single-cube and sharded compilation
    alike.
    """
    return _DEFAULT_VALIDATE


def _maybe_validate(program: NeurocubeProgram, config: NeurocubeConfig,
                    validate: bool | None) -> NeurocubeProgram:
    """Run the static plan verifier over a freshly compiled program.

    Raises :class:`repro.errors.PlanCheckError` on any violation.  The
    verifier is imported lazily — :mod:`repro.analysis` depends on the
    core plan types, so a module-level import would be circular.
    """
    if validate is None:
        validate = _DEFAULT_VALIDATE
    if validate:
        from repro.analysis.nccheck import check_program

        check_program(program, config)
    return program


def conv_map_block(in_maps: int, kernel: int,
                   weight_memory_items: int) -> tuple[int, int]:
    """Input-map blocking so each sub-pass's kernel fits the weight
    register.

    Returns ``(maps_per_block, sub_passes)``.  A 7x7 kernel over 8 input
    maps (392 weights) does not fit the 225-item register, so it runs as
    2 sub-passes of 4 maps (196 weights each), carrying partial sums.
    """
    per_map = kernel * kernel
    if per_map > weight_memory_items:
        # Even one map does not fit; weights must stream from DRAM.
        return in_maps, 1
    block = min(in_maps, weight_memory_items // per_map)
    # Prefer an even split so every sub-pass has the same shape.
    while in_maps % block:
        block -= 1
    return block, in_maps // block


def _conv_descriptor(layer: Conv2D, index: int, config: NeurocubeConfig,
                     duplicate: bool, phase: Phase,
                     name: str | None = None) -> LayerDescriptor:
    in_maps, height, width = layer.input_shape
    out_maps, out_h, out_w = layer.output_shape
    block, sub_passes = conv_map_block(in_maps, layer.kernel,
                                       config.weight_memory_items)
    connections = block * layer.kernel * layer.kernel
    resident = connections <= config.weight_memory_items
    layout = conv_layout(height, width, layer.kernel, in_maps, out_maps,
                         config.n_channels, duplicate)
    if not resident:
        # Weights stream from DRAM: two packets per connection.
        layout = dataclasses.replace(layout, packets_per_connection=2)
    return LayerDescriptor(
        name=name or layer.name, kind="conv", phase=phase,
        layer_index=index, passes=out_maps * sub_passes,
        sub_passes=sub_passes, neurons_per_pass=out_h * out_w,
        connections=connections, n_mac=config.n_mac, in_height=height,
        in_width=width, kernel=layer.kernel, layout=layout,
        weights_resident=resident, is_weighted=True,
        activation=layer.activation.name)


def _pool_descriptor(layer: _Pool2D, index: int, config: NeurocubeConfig,
                     duplicate: bool, phase: Phase,
                     name: str | None = None) -> LayerDescriptor:
    maps, height, width = layer.input_shape
    _, out_h, out_w = layer.output_shape
    layout = conv_layout(height, width, layer.size, maps, maps,
                         config.n_channels, duplicate)
    # Pooling has no synaptic weights; zero out the weight accounting the
    # generic conv layout assumed.
    layout = dataclasses.replace(layout, weight_bytes=0)
    return LayerDescriptor(
        name=name or layer.name, kind="pool", phase=phase,
        layer_index=index, passes=maps, neurons_per_pass=out_h * out_w,
        connections=layer.size * layer.size, n_mac=config.n_mac,
        in_height=height, in_width=width, kernel=layer.size, layout=layout,
        weights_resident=True, is_weighted=False,
        activation=layer.activation.name)


def _dense_descriptor(layer: Dense, index: int, config: NeurocubeConfig,
                      duplicate: bool, phase: Phase,
                      name: str | None = None) -> LayerDescriptor:
    inputs = layer.input_shape[0]
    outputs = layer.units
    layout = fc_layout(inputs, outputs, config.n_channels, duplicate)
    return LayerDescriptor(
        name=name or layer.name, kind="fc", phase=phase, layer_index=index,
        passes=1, neurons_per_pass=outputs, connections=inputs,
        n_mac=config.n_mac, in_height=1, in_width=inputs, kernel=0,
        layout=layout, weights_resident=False, is_weighted=True,
        activation=layer.activation.name)


def _pixelwise_descriptor(layer: PixelwiseDense, index: int,
                          config: NeurocubeConfig, duplicate: bool,
                          phase: Phase,
                          name: str | None = None) -> LayerDescriptor:
    in_maps, height, width = layer.input_shape
    resident = in_maps <= config.weight_memory_items
    layout = conv_layout(height, width, 1, in_maps, layer.units,
                         config.n_channels, duplicate)
    if not resident:
        layout = dataclasses.replace(layout, packets_per_connection=2)
    return LayerDescriptor(
        name=name or layer.name, kind="conv", phase=phase,
        layer_index=index, passes=layer.units,
        neurons_per_pass=height * width, connections=in_maps,
        n_mac=config.n_mac, in_height=height, in_width=width, kernel=1,
        layout=layout, weights_resident=resident, is_weighted=True,
        activation=layer.activation.name)


def _recurrent_descriptor(layer: Recurrent, index: int,
                          config: NeurocubeConfig, duplicate: bool,
                          phase: Phase,
                          name: str | None = None) -> LayerDescriptor:
    steps, n_in = layer.input_shape
    connections = n_in + layer.units
    layout = fc_layout(connections, layer.units, config.n_channels,
                       duplicate)
    return LayerDescriptor(
        name=name or layer.name, kind="fc", phase=phase, layer_index=index,
        passes=steps, neurons_per_pass=layer.units,
        connections=connections, n_mac=config.n_mac, in_height=1,
        in_width=connections, kernel=0, layout=layout,
        weights_resident=False, is_weighted=True,
        activation=layer.activation.name)


def _lstm_descriptors(layer: LSTM, index: int, config: NeurocubeConfig,
                      duplicate: bool,
                      phase: Phase) -> list[LayerDescriptor]:
    """Lower an LSTM into per-gate passes plus a cell-update pass.

    This is the paper's §VI recipe: each gate is a fully connected pass
    whose PNG is programmed with that gate's activation LUT (sigmoid for
    i/f/o, tanh for the candidate); the element-wise cell/state update
    (``c = f*c + i*g; h = o*tanh(c)``) is a short weight-free pass over
    the hidden units.
    """
    steps, n_in = layer.input_shape
    connections = n_in + layer.units
    activations = {"i": "sigmoid", "f": "sigmoid", "o": "sigmoid",
                   "g": "tanh"}
    descriptors = []
    for gate in GATES:
        layout = fc_layout(connections, layer.units, config.n_channels,
                           duplicate)
        descriptors.append(LayerDescriptor(
            name=f"{layer.name}/gate_{gate}", kind="fc", phase=phase,
            layer_index=index, passes=steps,
            neurons_per_pass=layer.units, connections=connections,
            n_mac=config.n_mac, in_height=1, in_width=connections,
            kernel=0, layout=layout, weights_resident=False,
            is_weighted=True, activation=activations[gate]))
    # Element-wise update: 3 MAC-equivalents per unit, operands are the
    # gate outputs already resident in the local vault.
    update_layout = dataclasses.replace(
        fc_layout(3, layer.units, config.n_channels, duplicate=False),
        weight_bytes=0, remote_state_fraction=0.0,
        packets_per_connection=1)
    descriptors.append(LayerDescriptor(
        name=f"{layer.name}/cell_update", kind="fc", phase=phase,
        layer_index=index, passes=steps, neurons_per_pass=layer.units,
        connections=3, n_mac=config.n_mac, in_height=1, in_width=3,
        kernel=0, layout=update_layout, weights_resident=True,
        is_weighted=False, activation="tanh"))
    return descriptors


_LOWERERS = [
    (Conv2D, _conv_descriptor),
    (_Pool2D, _pool_descriptor),
    (Dense, _dense_descriptor),
    (PixelwiseDense, _pixelwise_descriptor),
    (Recurrent, _recurrent_descriptor),
]


def descriptor_for_layer(layer, index: int, config: NeurocubeConfig,
                         duplicate: bool, phase: Phase = Phase.FORWARD,
                         name: str | None = None) -> LayerDescriptor | None:
    """Lower one single-descriptor layer; None for reshapes (Flatten)."""
    if isinstance(layer, Flatten):
        return None
    for layer_type, lowerer in _LOWERERS:
        if isinstance(layer, layer_type):
            return lowerer(layer, index, config, duplicate, phase,
                           name=name)
    raise MappingError(
        f"no Neurocube lowering for layer type {type(layer).__name__}")


def descriptors_for_layer(layer, index: int, config: NeurocubeConfig,
                          duplicate: bool,
                          phase: Phase = Phase.FORWARD,
                          ) -> list[LayerDescriptor]:
    """Lower one layer to its descriptor list (empty for reshapes)."""
    if isinstance(layer, LSTM):
        return _lstm_descriptors(layer, index, config, duplicate, phase)
    descriptor = descriptor_for_layer(layer, index, config, duplicate,
                                      phase)
    return [] if descriptor is None else [descriptor]


def compile_inference(network: Network, config: NeurocubeConfig,
                      duplicate: bool = True,
                      validate: bool | None = None) -> NeurocubeProgram:
    """Compile a network's forward pass into a PNG program.

    Args:
        network: a built :class:`repro.nn.Network`.
        config: the target Neurocube.
        duplicate: use the duplication layouts of Fig. 10c/10d (True) or
            the memory-lean layouts of Fig. 10b/10e (False).
        validate: statically verify every descriptor's plan with
            :mod:`repro.analysis.nccheck` before returning, raising
            :class:`repro.errors.PlanCheckError` on the first malformed
            one; None (the default) follows
            :func:`set_default_validate`.
    """
    descriptors = []
    for index, layer in enumerate(network.layers):
        descriptors.extend(
            descriptors_for_layer(layer, index, config, duplicate))
    if not descriptors:
        raise MappingError(f"network {network.name!r} lowered to nothing")
    program = NeurocubeProgram(
        network_name=network.name, descriptors=tuple(descriptors),
        duplicate=duplicate, training=False)
    return _maybe_validate(program, config, validate)


def compile_training(network: Network, config: NeurocubeConfig,
                     duplicate: bool = True,
                     validate: bool | None = None) -> NeurocubeProgram:
    """Compile one training step (forward + backward + update).

    The backward-data pass of a layer moves exactly as many MACs as its
    forward pass (each connection propagates one gradient term), as does
    the backward-weight pass (each connection accumulates one outer-
    product term); the update pass touches each weight once.  Pooling
    contributes a routing-only backward-data pass.  The first
    compute layer skips backward-data (no upstream gradient is needed).
    """
    # The forward descriptors are re-validated as part of the training
    # program below; skip the inner hook so they are not checked twice.
    forward = compile_inference(network, config, duplicate, validate=False)
    descriptors = list(forward.descriptors)
    first_index = forward.descriptors[0].layer_index
    for desc in reversed(forward.descriptors):
        if desc.layer_index != first_index:
            descriptors.append(dataclasses.replace(
                desc, name=f"{desc.name}/bwd_data",
                phase=Phase.BACKWARD_DATA))
        if desc.is_weighted:
            descriptors.append(dataclasses.replace(
                desc, name=f"{desc.name}/bwd_weight",
                phase=Phase.BACKWARD_WEIGHT))
            # Weights owned by this descriptor: a conv pass holds one
            # kernel per pass (shared across neurons); an FC pass holds
            # one row per neuron (shared across its time-step passes).
            if desc.kind == "conv":
                weights = desc.connections * desc.passes
            else:
                weights = desc.connections * desc.neurons_per_pass
            weights = max(1, weights)
            # Each vault updates the weights it stores: streaming is
            # entirely vault-local, so no remote state traffic.
            update_layout = dataclasses.replace(
                fc_layout(weights, 1, config.n_channels, duplicate=False),
                remote_state_fraction=0.0)
            descriptors.append(LayerDescriptor(
                name=f"{desc.name}/update", kind=desc.kind,
                phase=Phase.WEIGHT_UPDATE, layer_index=desc.layer_index,
                passes=1, neurons_per_pass=weights, connections=1,
                n_mac=config.n_mac, in_height=1, in_width=weights,
                kernel=0, layout=update_layout, weights_resident=False,
                is_weighted=True, activation="identity"))
    program = NeurocubeProgram(
        network_name=f"{network.name}/train",
        descriptors=tuple(descriptors), duplicate=duplicate, training=True)
    return _maybe_validate(program, config, validate)
