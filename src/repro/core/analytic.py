"""Closed-form per-layer performance model, calibrated to the cycle sim.

Paper-scale layers (hundreds of millions of MACs) cannot be simulated
flit-by-flit in Python, so full-network results (Figs 12-15) come from
this model.  Per descriptor pass it computes the cycle count of each
candidate bottleneck and takes the max:

* **compute** — the MAC array needs ``groups x connections x n_mac`` PE
  cycles (the MAC clock is ``f_PE / n_MAC``, Eq. 3);
* **supply** — each vault streams its share of the state/weight items in
  bursts of 8 words with tCCD gaps;
* **noc** — lateral (remote-state) packets are limited by aggregate mesh
  link capacity and by the destination's inbound mesh ports;
* plus an **out-of-order stall** term: remote packets arrive behind local
  ones, and the PE pays the sub-bank search/wait penalty (§V-B)
  proportional to the remote traffic.

The derate factors are fitted against the cycle simulator on scaled-down
layers by :mod:`repro.core.calibration`; defaults are the fitted values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.compiler import compile_inference, compile_training
from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor, NeurocubeProgram
from repro.core.metrics import LayerStats, RunReport
from repro.errors import ConfigurationError
from repro.nn.network import Network
from repro.noc.topology import Mesh2D


@dataclass(frozen=True)
class CalibrationFactors:
    """Fitted correction factors for the analytic model.

    The Neurocube is deliberately balanced: a conv pass's state demand
    (one item per PE cycle) sits exactly at the vault's sustained rate,
    so the achieved throughput rides a supply/compute knife edge.  The
    cycle simulator measures how much that interference costs per layer
    kind; remarkably, the fitted conv derate (~0.82) matches the paper's
    own whole-network utilisation (132.4 of a 160 GOPs/s peak = 0.83).

    Attributes:
        conv_derate: achieved fraction of the ideal bound for locally
            connected (conv/pool) passes.
        fc_derate: achieved fraction of the ideal bound for fully
            connected passes.
        link_efficiency: usable fraction of per-link capacity under
            contention (classic mesh saturation factor).
        inbound_ports: effective inbound mesh ports at a destination
            under X-Y routing (most remote traffic arrives via the
            column links).
        ooo_stall_per_remote_item: PE stall cycles charged per remote
            item it consumes (cache sub-bank search and reorder waits).
        pass_overhead_cycles: fixed per-pass cost: PNG register
            programming, DRAM access latency, pipe fill/drain.
    """

    conv_derate: float = 0.92
    fc_derate: float = 1.0
    link_efficiency: float = 0.55
    inbound_ports: float = 2.0
    ooo_stall_per_remote_item: float = 0.99
    pass_overhead_cycles: float = 300.0


class AnalyticModel:
    """Per-layer closed-form cycles/throughput/memory estimation."""

    def __init__(self, config: NeurocubeConfig,
                 factors: CalibrationFactors | None = None) -> None:
        self.config = config
        self.factors = factors or CalibrationFactors()

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------

    def _mesh(self) -> Mesh2D:
        return Mesh2D.for_nodes(self.config.n_pe)

    def _mean_hops(self) -> float:
        """Expected Manhattan distance between uniform random nodes."""
        mesh = self._mesh()

        def expected_abs(n: int) -> float:
            return sum(abs(a - b) for a in range(n)
                       for b in range(n)) / (n * n)

        return expected_abs(mesh.rows) + expected_abs(mesh.cols)

    def _directional_links(self) -> int:
        mesh = self._mesh()
        return 2 * (mesh.rows * (mesh.cols - 1)
                    + mesh.cols * (mesh.rows - 1))

    # ------------------------------------------------------------------
    # per-descriptor model
    # ------------------------------------------------------------------

    def pass_breakdown(self, desc: LayerDescriptor) -> dict[str, float]:
        """Cycle counts of each candidate bottleneck for one pass."""
        config = self.config
        factors = self.factors
        neurons = desc.neurons_per_pass
        n_conn = desc.connections
        macs_pass = neurons * n_conn

        # compute bound
        neurons_pe = math.ceil(neurons / config.n_pe)
        groups_pe = math.ceil(neurons_pe / config.n_mac)
        compute = groups_pe * n_conn * config.n_mac

        # item streams
        state_items = macs_pass
        weight_items = (macs_pass
                        if desc.is_weighted and not desc.weights_resident
                        else 0)
        items = state_items + weight_items

        # supply bound
        items_channel = items / config.n_channels
        words_channel = math.ceil(items_channel / config.items_per_word)
        supply = config.channel_timing.cycles_to_stream_words(words_channel)

        # remote traffic: states go remote at the layout fraction; when
        # channels are fewer than PEs (DDR3) everything ships from the
        # channel nodes and most of it is remote.
        remote_fraction = desc.layout.remote_state_fraction
        if config.n_channels < config.n_pe:
            far = 1.0 - config.n_channels / config.n_pe
            remote_items = items * max(remote_fraction, far)
        else:
            remote_items = state_items * remote_fraction

        # NoC bounds
        if config.noc_topology == "fully_connected":
            link = 0.0
            last_hop = remote_items / config.n_pe / max(
                1, config.n_pe - 1)
        else:
            link = (remote_items * self._mean_hops()
                    / (self._directional_links()
                       * factors.link_efficiency))
            last_hop = (remote_items / config.n_pe
                        / (factors.inbound_ports
                           * factors.link_efficiency))

        # Source-serialisation bound: a fully connected layer without
        # input duplication must unicast each input state to every PE
        # from its single owner vault, one op at a time — the generators
        # advance in lock-step, so per op only the owner streams states
        # and aggregate state supply collapses to one vault's injection
        # rate.  This is the dominant cost of Fig. 10e and the measured
        # 4x FC degradation in the cycle simulator.
        broadcast = 0.0
        if (desc.kind == "fc" and remote_fraction > 0
                and config.n_channels >= config.n_pe
                and config.noc_topology != "fully_connected"):
            broadcast = state_items / config.items_per_word

        # out-of-order stall: only mesh traffic arrives out of order
        if config.noc_topology == "fully_connected":
            stall = 0.0
        else:
            stall = (factors.ooo_stall_per_remote_item * remote_items
                     / config.n_pe)

        derate = (factors.fc_derate if desc.kind == "fc"
                  else factors.conv_derate)
        total = (max(compute, supply, link, last_hop, broadcast) / derate
                 + stall + factors.pass_overhead_cycles)
        bound = max(("compute", compute), ("memory", supply),
                    ("noc", max(link, last_hop, broadcast)),
                    key=lambda pair: pair[1])[0]
        return {"compute": compute, "supply": supply, "link": link,
                "last_hop": last_hop, "broadcast": broadcast,
                "stall": stall, "total": total, "bound": bound}

    def evaluate_descriptor(self, desc: LayerDescriptor) -> LayerStats:
        """Model one descriptor (all passes)."""
        breakdown = self.pass_breakdown(desc)
        cycles = breakdown["total"] * desc.passes
        return LayerStats(
            name=desc.name, kind=desc.kind, phase=desc.phase.value,
            duplicate=desc.duplicate, neurons=desc.neurons,
            connections=desc.connections, macs=desc.macs, ops=desc.ops,
            cycles=cycles, bound=breakdown["bound"],
            packets=desc.noc_packets,
            lateral_fraction=(desc.lateral_packets / desc.noc_packets
                              if desc.noc_packets else 0.0),
            state_bytes=desc.layout.state_bytes,
            weight_bytes=desc.layout.weight_bytes,
            duplicated_bytes=desc.layout.duplicated_bytes)

    # ------------------------------------------------------------------
    # program / network level
    # ------------------------------------------------------------------

    def evaluate_program(self, program: NeurocubeProgram) -> RunReport:
        """Model a whole compiled program."""
        report = RunReport(network_name=program.network_name,
                           f_clk_hz=self.config.f_pe_hz,
                           peak_gops=self.config.peak_gops,
                           source="analytic")
        for desc in program.descriptors:
            report.layers.append(self.evaluate_descriptor(desc))
        if not report.layers:
            raise ConfigurationError("program produced no layers")
        return report

    def evaluate_network(self, network: Network, duplicate: bool = True,
                         training: bool = False) -> RunReport:
        """Compile and model a network (inference or one training step)."""
        if training:
            program = compile_training(network, self.config, duplicate)
        else:
            program = compile_inference(network, self.config, duplicate)
        return self.evaluate_program(program)
