"""Roofline analysis of Neurocube workloads.

The paper's opening argument is operational density: neural layers do
few operations per byte, so off-chip bandwidth — not arithmetic — is
the wall (§I: "low operational density (ops/byte) ... serve to stress
memory bandwidth").  The classic roofline makes that quantitative:

    attainable = min(peak_gops, intensity * sustained_bandwidth)

This module computes per-descriptor operational intensity (ops per DRAM
byte actually streamed under the chosen layout), the roofline bound,
and the analytic model's achieved throughput — showing which layers sit
under the slanted (bandwidth) roof and which reach the flat (compute)
roof, and how duplication moves them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analytic import AnalyticModel
from repro.core.compiler import compile_inference
from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor
from repro.errors import ConfigurationError
from repro.memory.vault import ITEM_BITS
from repro.nn.network import Network


@dataclass(frozen=True)
class RooflinePoint:
    """One descriptor on the roofline.

    Attributes:
        name, kind: from the descriptor.
        intensity: arithmetic ops per DRAM byte streamed.
        attainable_gops: the roofline bound at this intensity.
        achieved_gops: the calibrated analytic model's prediction.
    """

    name: str
    kind: str
    intensity: float
    attainable_gops: float
    achieved_gops: float

    @property
    def bandwidth_bound(self) -> bool:
        """True when the point sits under the slanted roof."""
        return self.attainable_gops < 0.999 * self._peak

    _peak: float = 0.0

    @property
    def roofline_efficiency(self) -> float:
        """Achieved over attainable — how close to the roof."""
        return self.achieved_gops / self.attainable_gops


@dataclass
class RooflineReport:
    """All descriptors of one program on the roofline."""

    peak_gops: float
    sustained_bandwidth: float
    points: list[RooflinePoint] = field(default_factory=list)

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the slanted roof meets the flat one,
        ops/byte."""
        return self.peak_gops * 1e9 / self.sustained_bandwidth

    def to_table(self) -> str:
        header = (f"{'layer':<22}{'ops/byte':>10}{'attainable':>12}"
                  f"{'achieved':>10}{'roof%':>7}{'regime':>11}")
        lines = [f"Roofline: peak {self.peak_gops:.0f} GOPs/s, "
                 f"sustained {self.sustained_bandwidth / 1e9:.0f} GB/s, "
                 f"ridge at {self.ridge_intensity:.2f} ops/byte",
                 header, "-" * len(header)]
        for point in self.points:
            regime = ("bandwidth" if point.bandwidth_bound else "compute")
            lines.append(
                f"{point.name:<22}{point.intensity:>10.2f}"
                f"{point.attainable_gops:>12.1f}"
                f"{point.achieved_gops:>10.1f}"
                f"{100 * point.roofline_efficiency:>7.1f}"
                f"{regime:>11}")
        return "\n".join(lines)


class RooflineModel:
    """Builds roofline reports from the analytic model's machinery."""

    def __init__(self, config: NeurocubeConfig) -> None:
        self.config = config
        self._analytic = AnalyticModel(config)

    @property
    def sustained_bandwidth(self) -> float:
        """Aggregate sustained DRAM bandwidth, bytes/s."""
        return (self.config.channel_timing.sustained_bandwidth
                * self.config.n_channels)

    def point_for(self, desc: LayerDescriptor) -> RooflinePoint:
        """Place one descriptor on the roofline."""
        bytes_streamed = desc.stream_items * ITEM_BITS / 8
        if bytes_streamed <= 0:
            raise ConfigurationError(
                f"{desc.name}: no DRAM traffic to compute intensity")
        intensity = desc.ops / bytes_streamed
        attainable = min(self.config.peak_gops,
                         intensity * self.sustained_bandwidth / 1e9)
        stats = self._analytic.evaluate_descriptor(desc)
        achieved = stats.throughput_gops(self.config.f_pe_hz)
        point = RooflinePoint(
            name=desc.name, kind=desc.kind, intensity=intensity,
            attainable_gops=attainable, achieved_gops=achieved)
        object.__setattr__(point, "_peak", self.config.peak_gops)
        return point

    def evaluate_network(self, network: Network,
                         duplicate: bool = True) -> RooflineReport:
        """Roofline report for a compiled network."""
        program = compile_inference(network, self.config, duplicate)
        report = RooflineReport(
            peak_gops=self.config.peak_gops,
            sustained_bandwidth=self.sustained_bandwidth)
        for desc in program.descriptors:
            report.points.append(self.point_for(desc))
        return report
