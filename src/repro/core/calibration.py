"""Calibration of the analytic model against the cycle simulator.

Runs scaled-down layers through the flit-accurate simulator, compares
against the analytic model's prediction with unit derates, and fits the
:class:`CalibrationFactors`.  Tests assert the calibrated model stays
within tolerance of the simulator on held-out configurations, which is
the evidence that paper-scale analytic numbers are trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.analytic import AnalyticModel, CalibrationFactors
from repro.core.compiler import compile_inference
from repro.core.config import NeurocubeConfig
from repro.core.simulator import NeurocubeSimulator
from repro.nn import models


@dataclass
class CalibrationSample:
    """One calibration run: a small layer in both simulators."""

    name: str
    duplicate: bool
    cycle_cycles: float
    analytic_cycles: float

    @property
    def ratio(self) -> float:
        """cycle-sim / analytic; 1.0 means perfect agreement."""
        return self.cycle_cycles / self.analytic_cycles


@dataclass
class CalibrationResult:
    """Fitted factors plus the evidence they were fitted on."""

    factors: CalibrationFactors
    samples: list[CalibrationSample] = field(default_factory=list)

    @property
    def worst_ratio_error(self) -> float:
        """Largest |ratio - 1| across samples, after fitting."""
        return max(abs(s.ratio - 1.0) for s in self.samples)

    def to_table(self) -> str:
        rows = [f"{'sample':<28}{'dup':<6}{'cycle':>12}{'analytic':>12}"
                f"{'ratio':>8}"]
        for s in self.samples:
            rows.append(f"{s.name:<28}{str(s.duplicate):<6}"
                        f"{s.cycle_cycles:>12.0f}"
                        f"{s.analytic_cycles:>12.0f}{s.ratio:>8.3f}")
        return "\n".join(rows)


def _small_workloads(config: NeurocubeConfig):
    """Small layers covering the model's regimes: compute-bound conv,
    supply-bound FC, and the remote-traffic (no-dup) variants."""
    conv = models.single_conv_layer(40, 40, kernel=5, seed=1)
    fc = models.fully_connected_classifier(inputs=256, hidden_units=128,
                                           seed=1)
    return [("conv5_40x40", conv, True), ("conv5_40x40", conv, False),
            ("fc_256x128", fc, True), ("fc_256x128", fc, False)]


def _measure(config: NeurocubeConfig, model: AnalyticModel,
             workloads) -> list[CalibrationSample]:
    simulator = NeurocubeSimulator(config)
    samples = []
    for name, network, duplicate in workloads:
        program = compile_inference(network, config, duplicate)
        cycle_total = 0.0
        analytic_total = 0.0
        for desc in program.descriptors:
            run = simulator.run_descriptor(desc)
            cycle_total += run.cycles
            analytic_total += model.evaluate_descriptor(desc).cycles
        samples.append(CalibrationSample(
            name=name, duplicate=duplicate, cycle_cycles=cycle_total,
            analytic_cycles=analytic_total))
    return samples


def calibrate(config: NeurocubeConfig | None = None) -> CalibrationResult:
    """Fit the analytic derates against the cycle simulator.

    The fitting is staged to keep each factor identified by the regime it
    dominates: the duplicated conv run fits ``compute_derate``; the
    duplicated FC run fits ``supply_derate``; the no-duplication FC run
    fits ``ooo_stall_per_remote_item``.
    """
    config = config or NeurocubeConfig.hmc_15nm()
    workloads = _small_workloads(config)
    factors = CalibrationFactors(conv_derate=1.0, fc_derate=1.0,
                                 ooo_stall_per_remote_item=0.0)
    simulator = NeurocubeSimulator(config)

    # Stage 1: conv derate from the duplicated conv (the knife-edge
    # supply/compute interference cost of locally connected passes).
    _, conv_net, _ = workloads[0]
    conv_desc = compile_inference(conv_net, config, True).descriptors[0]
    model = AnalyticModel(config, factors)
    run = simulator.run_descriptor(conv_desc)
    pred = model.evaluate_descriptor(conv_desc).cycles
    factors = replace(factors,
                      conv_derate=min(1.0, max(0.3, pred / run.cycles)))

    # Stage 2: fc derate from the duplicated FC (supply-bound).
    _, fc_net, _ = workloads[2]
    fc_descs = compile_inference(fc_net, config, True).descriptors
    model = AnalyticModel(config, factors)
    sim_cycles = sum(simulator.run_descriptor(d).cycles for d in fc_descs)
    pred = sum(model.evaluate_descriptor(d).cycles for d in fc_descs)
    factors = replace(factors, fc_derate=min(
        1.0, max(0.3, pred / sim_cycles)))

    # Stage 3: out-of-order stall from the no-duplication FC.
    fc_nodup = compile_inference(fc_net, config, False).descriptors
    model = AnalyticModel(config, factors)
    sim_nodup = sum(simulator.run_descriptor(d).cycles for d in fc_nodup)
    pred_nodup = sum(model.evaluate_descriptor(d).cycles for d in fc_nodup)
    remote_per_pe = sum(
        d.macs * d.layout.remote_state_fraction / config.n_pe
        for d in fc_nodup)
    if remote_per_pe > 0 and sim_nodup > pred_nodup:
        stall = (sim_nodup - pred_nodup) / remote_per_pe
        factors = replace(factors, ooo_stall_per_remote_item=stall)

    # Final evidence pass with the fitted factors.
    fitted_model = AnalyticModel(config, factors)
    samples = _measure(config, fitted_model, workloads)
    return CalibrationResult(factors=factors, samples=samples)
