"""Neurocube system configuration (paper §III notation).

The architecture is parameterised exactly as the paper's notation section:
number of channels/vaults ``n_ch``, PEs per channel ``n_pe_per_ch``, MACs
per PE ``n_mac``, and the clock relations ``f_pe = f_noc = f_dram_io`` and
``f_mac = f_pe / n_mac`` (Eq. 3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig
from repro.fixedpoint import Q_1_7_8, QFormat
from repro.memory.specs import (
    DDR3,
    HMC_INT,
    HMC_VAULT_IO_CLOCK_HZ,
    MemorySpec,
)
from repro.memory.timing import (
    DEFAULT_BURST_LENGTH,
    DEFAULT_TCCD_GAP_CYCLES,
    ChannelTiming,
)
from repro.units import MHz

#: PE clock at the 28nm node (§VII: SRAM limits the PE to 300 MHz).
F_PE_28NM_HZ = MHz(300.0)
#: PE clock at the 15nm node (§VII: redesigned to reach 5 GHz).
F_PE_15NM_HZ = HMC_VAULT_IO_CLOCK_HZ

#: Environment variable overriding :attr:`NeurocubeConfig.sim_workers`,
#: so CI and batch sweeps can fan passes out without touching code.
SIM_WORKERS_ENV = "NEUROCUBE_SIM_WORKERS"


@dataclass(frozen=True)
class NeurocubeConfig:
    """Full static configuration of one Neurocube.

    Attributes:
        memory_spec: the DRAM technology (Table I row).
        n_channels: active memory channels (vaults).
        n_pe: number of processing elements (one per vault in the paper;
            with fewer channels than PEs — the DDR3 study — channels are
            shared round-robin).
        n_mac: MAC units per PE.
        f_pe_hz: PE/NoC/DRAM-I/O clock (the simulator reference clock).
        noc_topology: "mesh" (Fig. 6a) or "fully_connected" (Fig. 6b).
        noc_buffer_depth: packets per router channel buffer.
        burst_length: DRAM burst length in words.
        tccd_gap_cycles: idle cycles between DRAM bursts.
        cache_bytes: PE SRAM cache capacity (2.5 KB in the paper).
        cache_subbanks: cache sub-bank count (16).
        cache_entries_per_subbank: entries per sub-bank (64 = 2.5 KB /
            16 banks / 20 bits).
        weight_memory_bits: PE weight register capacity (3,600 bits,
            Table II) — bounds which kernels can be PE-resident.
        qformat: the fixed-point data format.
        technology: "28nm" or "15nm", used by the hardware models.
        sim_workers: host processes used to run independent simulator
            passes (conv output maps, pool maps) concurrently; 1 runs
            everything in-process.  Overridable via the
            ``NEUROCUBE_SIM_WORKERS`` environment variable — see
            :attr:`effective_sim_workers`.
        sim_skip_ahead: enable the simulator's event-horizon scheduler
            (step only the agents that can act each cycle, and jump the
            clock over stretches where none can).  Results are identical
            either way; the knob exists so equivalence tests can compare
            the scheduler against the lock-step reference path.
        sim_memoize: enable timing-pass memoization — structurally
            identical :class:`~repro.core.parallel.MapTask` units (conv
            output maps, pool maps in timing-only mode) are simulated
            once and the outcome replayed for the duplicates.  Results
            are identical either way; it never applies to functional or
            traced runs (nor to runs with active fault injection, where
            structurally identical passes see different fault salts).
        sim_memo_dir: optional directory of a persistent
            :class:`repro.memo.MemoStore` — when set (and
            ``sim_memoize`` applies), memoized pass outcomes are loaded
            from and stored to disk, surviving across processes and
            runs.  Entries are partitioned by a version/config
            fingerprint and re-verified against the key⇒hash invariant
            on every load, so stale entries are invisible or rejected,
            never replayed (see docs/memo_store.md).  None keeps
            memoization in-process only.
        sim_memo_max_bytes: total on-disk budget for the memo store;
            least-recently-used entries are evicted past it.  None
            disables eviction.
        faults: optional :class:`repro.faults.FaultConfig` — when set,
            every pass runs with deterministic fault injection and the
            retry/timeout protocols (see docs/fault_injection.md).
            None disables the machinery entirely (the hook-free path).
    """

    memory_spec: MemorySpec = HMC_INT
    n_channels: int = 16
    n_pe: int = 16
    n_mac: int = 16
    f_pe_hz: float = F_PE_15NM_HZ
    noc_topology: str = "mesh"
    noc_buffer_depth: int = 16
    burst_length: int = DEFAULT_BURST_LENGTH
    tccd_gap_cycles: int = DEFAULT_TCCD_GAP_CYCLES
    cache_bytes: int = 2560
    cache_subbanks: int = 16
    cache_entries_per_subbank: int = 64
    weight_memory_bits: int = 3600
    qformat: QFormat = field(default=Q_1_7_8)
    technology: str = "15nm"
    sim_workers: int = 1
    sim_skip_ahead: bool = True
    sim_memoize: bool = True
    sim_memo_dir: str | None = None
    sim_memo_max_bytes: int | None = None
    faults: FaultConfig | None = None

    def __post_init__(self) -> None:
        if self.sim_workers < 1:
            raise ConfigurationError(
                f"sim_workers must be >= 1, got {self.sim_workers}")
        if self.sim_memo_max_bytes is not None and self.sim_memo_max_bytes < 1:
            raise ConfigurationError(
                f"sim_memo_max_bytes must be >= 1, got "
                f"{self.sim_memo_max_bytes}")
        if self.n_channels < 1 or self.n_channels > self.memory_spec.max_channels:
            raise ConfigurationError(
                f"{self.memory_spec.name} supports up to "
                f"{self.memory_spec.max_channels} channels, got "
                f"{self.n_channels}")
        if self.n_pe < 1:
            raise ConfigurationError(f"n_pe must be >= 1, got {self.n_pe}")
        if self.n_channels > self.n_pe:
            raise ConfigurationError(
                f"more channels ({self.n_channels}) than PEs ({self.n_pe}) "
                f"is not a supported mapping")
        if self.n_mac < 1:
            raise ConfigurationError(f"n_mac must be >= 1, got {self.n_mac}")
        if self.f_pe_hz <= 0:
            raise ConfigurationError("f_pe_hz must be positive")
        if self.noc_topology not in ("mesh", "fully_connected"):
            raise ConfigurationError(
                f"unknown NoC topology {self.noc_topology!r}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def f_mac_hz(self) -> float:
        """MAC clock: ``f_pe / n_mac`` (Eq. 3)."""
        return self.f_pe_hz / self.n_mac

    @property
    def f_noc_hz(self) -> float:
        """NoC clock (== PE clock, §III-B1)."""
        return self.f_pe_hz

    @property
    def f_dram_io_hz(self) -> float:
        """DRAM I/O clock (== PE clock; the simulator reference clock)."""
        return self.f_pe_hz

    @property
    def total_macs(self) -> int:
        """MAC units across the whole cube."""
        return self.n_pe * self.n_mac

    @property
    def peak_gops(self) -> float:
        """Peak arithmetic throughput: 2 ops per MAC per MAC cycle."""
        return 2.0 * self.total_macs * self.f_mac_hz / 1e9

    @property
    def channel_timing(self) -> ChannelTiming:
        """Cycle-level timing of one memory channel at the reference clock.

        HMC vaults issue one word per reference cycle (§VI: "pushed at
        5 GHz"); other technologies issue at their native word rate, which
        is below the reference clock (e.g. DDR3's 64-bit word at
        1.6 GHz), modelled as a fractional issue rate.
        """
        hmc = self.memory_spec.name.startswith("HMC")
        native = (self.f_dram_io_hz if hmc
                  else self.memory_spec.io_clock_hz)
        return ChannelTiming.from_spec(
            self.memory_spec, io_clock_hz=native,
            reference_clock_hz=self.f_dram_io_hz,
            burst_length=self.burst_length,
            tccd_gap_cycles=self.tccd_gap_cycles)

    @property
    def items_per_word(self) -> int:
        """16-bit items per memory word (2 for HMC's 32-bit word)."""
        return self.memory_spec.word_bits // self.qformat.total_bits

    @property
    def weight_memory_items(self) -> int:
        """Weights that fit in the PE weight register."""
        return self.weight_memory_bits // self.qformat.total_bits

    @property
    def emission_window(self) -> int:
        """The emission-horizon window in operations.

        How many operations ahead of the slowest PE the neurosequence
        generators may run — bounded by what the PE cache can park: one
        op's packets (up to ``2 * n_mac`` items) must fit in its
        sub-bank, or head-of-line blocking can deadlock the mesh.  With
        the paper's 64-entry sub-banks this is the full 16 sub-banks;
        undersized caches degrade toward strict lock-step (window 0:
        only current-op packets in flight).  Shared by the simulator's
        run-pass horizon and :mod:`repro.analysis.nccheck`'s static
        sub-bank occupancy bound — one definition, two enforcement
        points.
        """
        items_per_op = 2 * self.n_mac
        ops_per_subbank = self.cache_entries_per_subbank // items_per_op
        return min(self.cache_subbanks,
                   ops_per_subbank * self.cache_subbanks)

    @property
    def effective_sim_workers(self) -> int:
        """The pass-executor worker count, after the env override.

        ``NEUROCUBE_SIM_WORKERS`` (when set and non-empty) wins over the
        :attr:`sim_workers` field, so a CI job or sweep driver can fan
        out without rebuilding configurations.
        """
        # Host-side worker-count override only; the value never reaches
        # the cycle model, so determinism of simulated results holds.
        # nclint: allow(NC106) host-side worker override
        raw = os.environ.get(SIM_WORKERS_ENV)
        if raw:
            try:
                value = int(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{SIM_WORKERS_ENV}={raw!r} is not an integer"
                    ) from error
            if value < 1:
                raise ConfigurationError(
                    f"{SIM_WORKERS_ENV} must be >= 1, got {value}")
            return value
        return self.sim_workers

    def pe_of_channel(self, channel: int) -> int:
        """The PE co-located with a channel (identity mapping)."""
        if not 0 <= channel < self.n_channels:
            raise ConfigurationError(
                f"channel {channel} out of range 0..{self.n_channels - 1}")
        return channel

    def channel_of_pe(self, pe: int) -> int:
        """The channel feeding a PE (PEs share channels round-robin when
        there are fewer channels than PEs, the DDR3 case)."""
        if not 0 <= pe < self.n_pe:
            raise ConfigurationError(
                f"PE {pe} out of range 0..{self.n_pe - 1}")
        return pe % self.n_channels

    # ------------------------------------------------------------------
    # canonical configurations
    # ------------------------------------------------------------------

    @classmethod
    def hmc_15nm(cls, **overrides) -> NeurocubeConfig:
        """The paper's 15nm FinFET design point: 16 vaults at 5 GHz."""
        return cls(**{**dict(f_pe_hz=F_PE_15NM_HZ, technology="15nm"),
                      **overrides})

    @classmethod
    def hmc_28nm(cls, **overrides) -> NeurocubeConfig:
        """The paper's 28nm design point: 16 vaults at 300 MHz."""
        return cls(**{**dict(f_pe_hz=F_PE_28NM_HZ, technology="28nm"),
                      **overrides})

    @classmethod
    def ddr3(cls, n_channels: int = 2, **overrides) -> NeurocubeConfig:
        """The Fig. 15a comparison point: DDR3 channels feeding 16 PEs."""
        return cls(**{**dict(memory_spec=DDR3, n_channels=n_channels,
                             f_pe_hz=F_PE_15NM_HZ, technology="15nm"),
                      **overrides})

    def with_(self, **overrides) -> NeurocubeConfig:
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
