"""The cycle-level Neurocube system simulator (paper §VI).

Assembles vaults, PNGs, the NoC and PEs per the configuration and runs
compiled layer descriptors cycle by cycle at the reference clock
(``f_pe = f_noc = f_dram_io``).  In functional mode it moves real
fixed-point data end to end — vault reads, packets, MAC accumulation, LUT
activation, write-back — so layer outputs can be checked exactly against
the :mod:`repro.nn` reference.  In timing mode (no tensors) it moves
zero payloads through the identical control paths.

Three mechanisms keep multi-pass runs fast without changing a single
result (see ``docs/simulator_internals.md``):

* independent passes — conv output maps, pool maps — fan out over the
  :mod:`repro.core.parallel` process pool (``config.sim_workers``);
* within one pass, the event-horizon scheduler steps only the agents
  that can act each cycle and jumps the clock across stretches where no
  agent can (every PE counting down, every vault mid-latency, the NoC
  empty);
* in timing-only mode, structurally identical passes (conv/pool maps)
  are simulated once and their outcomes replayed
  (:mod:`repro.core.parallel` memoization, ``config.sim_memoize``).

Paper-scale layers are far too large to simulate flit by flit in Python;
the companion :mod:`repro.core.analytic` model is calibrated against this
simulator on scaled-down layers (see :mod:`repro.core.calibration`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import compile_inference
from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor
from repro.core.metrics import LayerStats, RunReport, StreamReport
from repro.core.parallel import (
    MapOutcome,
    MapTask,
    ParallelPassExecutor,
    PassOutcome,
    SubPassSpec,
    snapshot_pass,
)
from repro.core.pe import ProcessingElement
from repro.core.png import NeurosequenceGenerator
from repro.core.scheduler import PassPlan, build_fc_pass
from repro.errors import ConfigurationError, MappingError, SimulationError
from repro.faults.checkpoint import CheckpointSpec, CheckpointStore
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.session import (
    current_checkpoint_session,
    current_fault_session,
)
from repro.fixedpoint import to_float
from repro.memory.vault import VaultChannel
from repro.nn.activations import ActivationLUT
from repro.nn.layers import Flatten, MaxPool2D
from repro.nn.network import Network
from repro.noc.interconnect import Interconnect
from repro.noc.topology import FullyConnected, Mesh2D
from repro.obs.live import (
    ambient_phase,
    ambient_timer,
    attribute_report,
    current_live,
)
from repro.obs.session import current_session
from repro.obs.tracer import Trace, TraceOptions, Tracer


@dataclass
class PassResult:
    """Raw outcome of one simulated pass.

    Attributes:
        cycles: reference cycles to layer-done.
        outputs: neuron tag -> activated raw value (functional mode).
        interconnect: the NoC instance (for its stats).
        pe_stats: per-PE statistics (fires, stalls, cache peaks).
        png_stats: per-PNG statistics (injections, stalls).
        trace: the pass's :class:`repro.obs.Trace` when tracing was on.
        fault_stats: :class:`repro.faults.FaultStats` when a fault
            injector was active (even at all-zero rates), else None.
        degraded: :class:`repro.faults.DegradedResult` records for
            outputs the retry/watchdog protocols had to degrade.
    """

    cycles: int
    outputs: dict
    interconnect: Interconnect
    pe_stats: list
    png_stats: list
    trace: Trace | None = None
    fault_stats: FaultStats | None = None
    degraded: tuple = ()


def _build_sampler(pes, vaults, interconnect):
    """Build one pass's time-series counter closure.

    Called by the :class:`repro.obs.Tracer` at every sample point; all
    reads are side-effect-free probes of live agent state.  Emits:

    * ``pe{i}.mac_util`` — fraction of cycles since the previous sample
      the PE's MAC array spent computing (delta of busy cycles);
    * ``pe{i}.cache_fill`` — instantaneous cache occupancy in items;
    * ``vault{v}.bw_words`` — words served per cycle since the previous
      sample (delta of the channel's served-word counter);
    * ``link.{src}->{dst}.occupancy`` — packets resident in each mesh
      link's endpoint buffers;
    * ``noc.in_fabric`` — packets in flight anywhere in the NoC.
    """
    prev_busy = [0] * len(pes)
    prev_words = [0] * len(vaults)
    prev_cycle = [0]

    def sample(cycle):
        span = max(1, cycle - prev_cycle[0])
        prev_cycle[0] = cycle
        out = []
        for i, pe in enumerate(pes):
            busy = pe.stats.busy_cycles
            out.append((f"pe{pe.pe_id}.mac_util",
                        (busy - prev_busy[i]) / span))
            prev_busy[i] = busy
            out.append((f"pe{pe.pe_id}.cache_fill", pe.cache_fill))
        for v, vault in enumerate(vaults):
            words = vault.words_served
            out.append((f"vault{vault.vault_id}.bw_words",
                        (words - prev_words[v]) / span))
            prev_words[v] = words
        for label, occupancy in interconnect.link_occupancies():
            out.append((f"link.{label}.occupancy", occupancy))
        out.append(("noc.in_fabric", interconnect.in_fabric))
        return out

    return sample


@dataclass
class _RunAccumulator:
    """Mutable per-descriptor stat accumulation across passes."""

    cycles: int = 0
    packets: int = 0
    lateral: int = 0
    latency: float = 0.0
    macs_fired: int = 0
    idle_cycles: int = 0
    busy_cycles: int = 0
    search_stall_cycles: int = 0
    cache_peak: int = 0
    inject_stall_cycles: int = 0
    fault_stats: FaultStats | None = None
    degraded: list = field(default_factory=list)

    def fold(self, outcome: PassOutcome) -> None:
        """Fold one pass's snapshot in; call in serial pass order so the
        accumulated statistics are identical for serial and parallel
        runs."""
        self.cycles += outcome.cycles
        if outcome.fault_stats is not None:
            if self.fault_stats is None:
                self.fault_stats = FaultStats()
            self.fault_stats.merge(outcome.fault_stats)
        self.degraded.extend(outcome.degraded)
        self.packets += outcome.delivered
        self.lateral += outcome.lateral
        self.latency += outcome.total_latency
        for pe_stats in outcome.pe_stats:
            self.macs_fired += pe_stats.macs_fired
            self.idle_cycles += pe_stats.idle_cycles
            self.busy_cycles += pe_stats.busy_cycles
            self.search_stall_cycles += pe_stats.search_stall_cycles
            self.cache_peak = max(self.cache_peak, pe_stats.cache_peak)
        for png_stats in outcome.png_stats:
            self.inject_stall_cycles += png_stats.inject_stall_cycles


@dataclass
class LayerRun:
    """Result of simulating one descriptor.

    Attributes:
        descriptor: what was run.
        cycles: reference-clock cycles across all passes.
        output: assembled output tensor (functional mode) or None.
        packets: NoC packets delivered.
        lateral_fraction: measured lateral (cross-node) packet fraction.
        mean_packet_latency: mean inject-to-eject latency in cycles.
        macs_fired: MAC operations executed across PEs and passes.
        pe_busy_cycles: PE cycles spent computing (summed over PEs).
        pe_idle_cycles: PE cycles stalled waiting for operands.
        search_stall_cycles: extra cycles lost to cache sub-bank
            searches beyond the overlapped MAC time (§V-B).
        cache_peak: deepest total cache occupancy any PE reached.
        inject_stall_cycles: PNG cycles blocked by NoC backpressure.
        host_seconds: wall-clock host time the simulation took.
        trace: merged run trace (all passes on one clock) when tracing
            was enabled, else None.
        fault_stats: folded :class:`repro.faults.FaultStats` across all
            passes when fault injection was active, else None.
        degraded: all passes' :class:`repro.faults.DegradedResult`
            records, in serial fold order.
        memo_stats: :class:`repro.memo.MemoStats` counters this run
            accumulated against its persistent memo store, else None.
    """

    descriptor: LayerDescriptor
    cycles: int
    output: np.ndarray | None
    packets: int
    lateral_fraction: float
    mean_packet_latency: float
    macs_fired: int = 0
    pe_busy_cycles: int = 0
    pe_idle_cycles: int = 0
    search_stall_cycles: int = 0
    cache_peak: int = 0
    inject_stall_cycles: int = 0
    host_seconds: float = 0.0
    trace: Trace | None = None
    fault_stats: FaultStats | None = None
    degraded: tuple = ()
    memo_stats: object | None = None

    @property
    def simulated_cycles_per_second(self) -> float:
        """Simulation rate: reference cycles per host wall-clock second.

        Raises :class:`ConfigurationError` when no host time was
        recorded, mirroring
        :attr:`RunReport.frames_per_second`'s handling of zero cycles —
        a silent 0.0 reads like an infinitely slow simulator in
        benchmark output.
        """
        if self.host_seconds <= 0.0:
            raise ConfigurationError(
                f"run of {self.descriptor.name!r} has no recorded host "
                "time; simulation rate is undefined")
        return self.cycles / self.host_seconds

    def to_stats(self) -> LayerStats:
        """Convert to the report row format."""
        desc = self.descriptor
        return LayerStats(
            name=desc.name, kind=desc.kind, phase=desc.phase.value,
            duplicate=desc.duplicate, neurons=desc.neurons,
            connections=desc.connections, macs=desc.macs, ops=desc.ops,
            cycles=self.cycles, bound="measured", packets=self.packets,
            lateral_fraction=self.lateral_fraction,
            state_bytes=desc.layout.state_bytes,
            weight_bytes=desc.layout.weight_bytes,
            duplicated_bytes=desc.layout.duplicated_bytes,
            mean_packet_latency=self.mean_packet_latency,
            pe_busy_cycles=self.pe_busy_cycles,
            pe_idle_cycles=self.pe_idle_cycles,
            search_stall_cycles=self.search_stall_cycles,
            inject_stall_cycles=self.inject_stall_cycles)


class _EventHorizonScheduler:
    """Per-agent active-set scheduler for one pass (the skip-ahead path).

    Every agent exposes the same two-method contract:

    * ``next_event_delta()`` — 0 when the agent can act on the current
      cycle, ``n >= 1`` when its next visible event fires on the n-th
      step from now (``1`` means it must be stepped *this* cycle), and
      None when it is passive until some other agent acts;
    * ``skip(n)`` — replicate exactly what ``n`` provably event-free
      cycles of stepping would do (clocks, countdowns, statistics).

    The scheduler uses the contract two ways.  Across cycles, the
    minimum delta over all agents is the event horizon: when it exceeds
    one, the clock jumps to one cycle before the earliest event — even
    while vault reads are parked mid-access-latency.  Within a cycle,
    only agents whose delta is ``<= 1`` are stepped; the rest are
    fast-forwarded one cycle.  Both halves preserve bit-identity with
    lock-step stepping (``sim_skip_ahead=False``) because per-agent
    ``skip`` is exact and the activity tests are evaluated in the same
    phase order as the lock-step loop: PNG deltas at the top of the
    cycle (write-backs switched into a MEM output this cycle drain next
    cycle, as in lock-step), the fabric after the PNGs (so same-cycle
    injections move), and PE deltas after the fabric (so same-cycle
    deliveries into a PE's router output are drained this cycle, as in
    lock-step).

    A PNG and its vault form one agent: ``png.step()`` advances the
    vault internally, and a PNG whose delta exceeds one has no per-cycle
    state of its own, so fast-forwarding the pair is ``vault.skip``.
    """

    def __init__(self, pngs, vaults, pes,
                 interconnect: Interconnect) -> None:
        self._pngs = pngs
        self._vaults = vaults
        self._pes = pes
        self._interconnect = interconnect

    def next_event_delta(self) -> int | None:
        """Cycles until any agent next acts, or None on deadlock.

        Exits early with 0/1 as soon as any agent can act on the current
        cycle (the common case while packets are in flight); otherwise
        returns the minimum countdown, or None when every agent is
        passive — nothing will ever happen again.
        """
        if self._interconnect.in_fabric:
            return 1
        horizon: int | None = None
        for pe in self._pes:
            delta = pe.next_event_delta()
            if delta is not None:
                if delta <= 1:
                    return delta
                if horizon is None or delta < horizon:
                    horizon = delta
        for png in self._pngs:
            delta = png.next_event_delta()
            if delta is not None:
                if delta <= 1:
                    return delta
                if horizon is None or delta < horizon:
                    horizon = delta
        return horizon

    def skip(self, cycles: int) -> None:
        """Fast-forward every agent across ``cycles`` event-free cycles."""
        for vault in self._vaults:
            vault.skip(cycles)
        self._interconnect.skip(cycles)
        for pe in self._pes:
            pe.skip(cycles)

    def step_active(self) -> None:
        """Run one cycle, stepping only the agents that can act.

        Mirrors the lock-step phase order — PNGs, fabric, PEs — with
        each inactive agent fast-forwarded one cycle instead of stepped.
        The fabric is always "stepped": an empty fabric's step is itself
        the one-cycle fast-forward (arbiter rotation only).
        """
        for png in self._pngs:
            delta = png.next_event_delta()
            if delta is not None and delta <= 1:
                png.step()
            else:
                png.skip(1)
        self._interconnect.step()
        for pe in self._pes:
            delta = pe.next_event_delta()
            if delta is not None and delta <= 1:
                pe.step()
            else:
                pe.skip(1)


class NeurocubeSimulator:
    """Flit-accurate simulator for one :class:`NeurocubeConfig`.

    Args:
        config: the architecture to simulate.
        trace: :class:`repro.obs.TraceOptions` to trace every pass of
            every descriptor run; None (the default) disables tracing —
            unless an ambient :class:`repro.obs.TraceSession` is active,
            in which case its options apply and finished runs register
            with the session.  Tracing never changes simulated results:
            cycle counts and outputs are bit-identical either way.
        faults: :class:`repro.faults.FaultConfig` enabling deterministic
            fault injection on every pass.  Resolution order:
            this argument, then ``config.faults``, then an ambient
            :class:`repro.faults.FaultSession`.  None everywhere runs
            entirely injector-free (the seed-baseline fast path).
        checkpoint: :class:`repro.faults.CheckpointSpec` enabling
            periodic per-pass snapshots and/or resume; falls back to an
            ambient :class:`repro.faults.CheckpointSession`.
        memo: :class:`repro.memo.MemoStore` making timing-pass
            memoization persistent — memoized outcomes are loaded from
            and stored to disk, surviving across runs.  Resolution
            order: this argument, then ``config.sim_memo_dir``, then an
            ambient :class:`repro.memo.MemoSession`.  None everywhere
            keeps memoization in-process only.  Bit-identity holds
            either way: loaded entries pass the same NC207 key⇒hash
            check the in-run replay is built on, or they are rejected
            and re-simulated.
    """

    def __init__(self, config: NeurocubeConfig,
                 trace: TraceOptions | None = None,
                 faults: FaultConfig | None = None,
                 checkpoint: CheckpointSpec | None = None,
                 memo=None) -> None:
        self.config = config
        self.trace_options = trace
        self.faults = faults
        self.checkpoint = checkpoint
        self.memo = memo
        self._memo_store = None

    def _resolve_memo(self):
        """The persistent memo store for this run, or None.

        Explicit argument first, then a store opened (once, cached) at
        ``config.sim_memo_dir``, then the innermost ambient
        :class:`repro.memo.MemoSession`.
        """
        if self.memo is not None:
            return self.memo
        if self.config.sim_memo_dir is not None:
            if self._memo_store is None:
                # Imported lazily: repro.memo sits above the core in
                # the layering (it imports the task/outcome types).
                from repro.memo.store import MemoStore

                self._memo_store = MemoStore(
                    self.config.sim_memo_dir, self.config,
                    max_bytes=self.config.sim_memo_max_bytes)
            return self._memo_store
        from repro.memo.session import current_memo_session

        session = current_memo_session()
        if session is not None:
            return session.store_for(self.config)
        return None

    def _topology(self):
        if self.config.noc_topology == "fully_connected":
            return FullyConnected(self.config.n_pe)
        return Mesh2D.for_nodes(self.config.n_pe)

    # ------------------------------------------------------------------
    # single-pass engine
    # ------------------------------------------------------------------

    def run_pass(self, plan: PassPlan,
                 max_cycles: int | None = None,
                 stall_limit: int = 1_000_000,
                 trace: TraceOptions | None = None,
                 validate: bool = False,
                 faults: FaultConfig | None = None,
                 fault_salt: int = 0,
                 checkpoint: CheckpointSpec | None = None,
                 pass_label: str = "pass") -> PassResult:
        """Run one PNG pass to layer-done.

        Args:
            plan: the scheduled pass.
            max_cycles: absolute cycle ceiling (defaults to a generous
                bound derived from the plan's work).
            stall_limit: cycles without a new write-back before the run
                is declared deadlocked.
            trace: per-pass trace options; when set, a fresh
                :class:`repro.obs.Tracer` is wired into every agent and
                the frozen trace rides back on the result.  The untraced
                path stays hook-free: each instrumentation site is one
                ``is not None`` test.
            validate: statically verify the plan first
                (:func:`repro.analysis.nccheck.check_plan`); a
                malformed plan raises
                :class:`repro.errors.PlanCheckError` before any cycle
                is simulated instead of deadlocking mid-run.
            faults: when set, a fresh :class:`repro.faults.FaultInjector`
                is threaded through every agent — even at all-zero
                rates, so the rate-0 machinery path can be tested for
                bit-identity against the injector-free path.
            fault_salt: pass-identity salt for the injector's transient
                fault keys (see :func:`repro.faults.pass_salt`).
            checkpoint: when set, snapshots are saved to its store every
                ``every`` cycles under ``pass_label``; with ``resume``
                the newest snapshot is restored before cycling.
            pass_label: stable label for this pass's checkpoints; must
                identify the pass across execution modes.
        """
        config = self.config
        if validate:
            # Imported lazily: repro.analysis depends on the core plan
            # types, so a module-level import would be circular.
            from repro.analysis.nccheck import check_plan

            check_plan(plan, config, label="pass plan")
        tracer = Tracer(trace) if trace is not None else None
        injector = (FaultInjector(faults, salt=fault_salt, tracer=tracer)
                    if faults is not None else None)
        interconnect = Interconnect(
            self._topology(), buffer_depth=config.noc_buffer_depth,
            local_rate=config.items_per_word, tracer=tracer,
            injector=injector)
        vaults = [VaultChannel(config.channel_timing, vault_id=v,
                               data=plan.vault_data[v], tracer=tracer,
                               injector=injector)
                  for v in range(config.n_channels)]
        outputs: dict = {}

        def make_sink(vault_index: int):
            def sink(packet, activated_raw: int) -> None:
                channel, address = plan.out_addresses[packet.neuron]
                if channel != vault_index:
                    raise SimulationError(
                        f"write-back for {packet.neuron} landed at vault "
                        f"{vault_index}, home is {channel}")
                vaults[channel].write_items(address, [activated_raw])
                outputs[packet.neuron] = activated_raw
            return sink

        pes: list[ProcessingElement] = []

        # Emission-horizon window: how many operations ahead of the
        # slowest PE the generators may run.  The geometry lives on the
        # config (one definition) because nccheck's static sub-bank
        # occupancy bound (NC203) enforces the same window.
        window = config.emission_window

        def horizon() -> float:
            """Lock-step bound: no PNG emits ops more than ``window``
            ahead of the slowest PE (the hardware equivalent is that all
            PNGs walk the same FSM schedule)."""
            active = [pe.op_counter for pe in pes if not pe.done]
            if not active:
                return float("inf")
            return min(active) + window

        pngs = []
        for v in range(config.n_channels):
            png = NeurosequenceGenerator(
                vaults[v], node=config.pe_of_channel(v),
                interconnect=interconnect, horizon=horizon,
                tracer=tracer, injector=injector)
            png.program(iter(plan.vault_emissions[v]),
                        plan.expected_writebacks[v], lut=plan.lut,
                        writeback_sink=make_sink(v))
            pngs.append(png)
        for p in range(config.n_pe):
            pe = ProcessingElement(p, config, interconnect,
                                   tracer=tracer, injector=injector)
            pe.program(plan.pe_groups[p])
            pes.append(pe)
        if tracer is not None and tracer.options.counters:
            tracer.bind_sampler(_build_sampler(pes, vaults, interconnect))

        if max_cycles is None:
            # Generous ceiling: every item serialised through one channel
            # with full search stalls would still finish well inside this.
            work = max(1, plan.stream_items)
            max_cycles = 200 * work + 500_000
        scheduler = (_EventHorizonScheduler(pngs, vaults, pes, interconnect)
                     if config.sim_skip_ahead else None)
        cycles = 0
        last_progress = 0
        progress_mark = -1
        store: CheckpointStore | None = None
        every = 0
        if checkpoint is not None:
            # Phase timing is parent-process only: worker processes have
            # no ambient live session, so ambient_timer is None there
            # and the store runs timer-free.
            store = CheckpointStore(checkpoint.directory,
                                    timer=ambient_timer("checkpoint"),
                                    keep_last=checkpoint.keep_last)
            every = checkpoint.every
            if checkpoint.resume:
                resume_cycle = store.latest(pass_label)
                if resume_cycle is not None:
                    state = store.load(pass_label, resume_cycle)
                    self._restore_pass(state, interconnect, vaults, pngs,
                                       pes, injector, outputs)
                    cycles = state["cycles"]
                    last_progress = state["last_progress"]
                    progress_mark = state["progress_mark"]
                    if tracer is not None:
                        tracer.sim_checkpoint(cycles, "resume", pass_label)
        while True:
            if all(png.done for png in pngs) and all(pe.done for pe in pes):
                break
            if scheduler is not None:
                delta = scheduler.next_event_delta()
                if delta is None:
                    # No agent will ever act again: a genuine deadlock.
                    # Jump straight to the stall/ceiling boundary — the
                    # skipped cycles are provably event-free, so the
                    # detector fires on the same cycle with the same
                    # per-agent state as cycle-by-cycle stepping.
                    jump = min(last_progress + stall_limit - cycles,
                               max_cycles - cycles)
                elif delta > 1:
                    # Stop one cycle short of the earliest event and
                    # never overshoot the stall/ceiling checks, so error
                    # timing is identical to cycle-by-cycle stepping.
                    jump = min(delta - 1,
                               last_progress + stall_limit - cycles,
                               max_cycles - cycles)
                else:
                    jump = 0
                if jump > 0 and every:
                    # Never jump across a checkpoint boundary: land one
                    # cycle short so the boundary cycle is *stepped* and
                    # saved exactly like lock-step would.  Skip-ahead is
                    # bit-identical to stepping, so the clamp only adds
                    # stepped cycles, never changes results.
                    jump = min(jump,
                               (cycles // every + 1) * every - cycles - 1)
                if jump > 0 and tracer is not None:
                    # Same convention for counter samples: land one
                    # cycle short of the next sample boundary so the
                    # sample is taken on a stepped cycle — positions and
                    # delta spans match lock-step sampling exactly.
                    limit = tracer.sample_jump_limit(cycles)
                    if limit is not None:
                        jump = min(jump, limit)
                if jump > 0:
                    if tracer is not None:
                        tracer.skip_ahead(cycles, jump)
                    scheduler.skip(jump)
                    cycles += jump
                scheduler.step_active()
            else:
                for png in pngs:
                    png.step()
                interconnect.step()
                for pe in pes:
                    pe.step()
            cycles += 1
            if tracer is not None:
                tracer.on_cycle(cycles)
            done_now = len(outputs)
            if done_now != progress_mark:
                progress_mark = done_now
                last_progress = cycles
            if store is not None and every and cycles % every == 0:
                store.save(pass_label, cycles, self._pass_state(
                    cycles, last_progress, progress_mark, interconnect,
                    vaults, pngs, pes, injector, outputs))
                if tracer is not None:
                    tracer.sim_checkpoint(cycles, "save", pass_label)
            if cycles - last_progress > stall_limit or cycles > max_cycles:
                raise SimulationError(
                    f"pass stalled: {done_now}/{plan.total_neurons} "
                    f"neurons after {cycles} cycles "
                    f"(occupancy {interconnect.occupancy})\n"
                    + self._stall_detail(interconnect, pngs, vaults, pes))
        return PassResult(cycles=cycles, outputs=outputs,
                          interconnect=interconnect,
                          pe_stats=[pe.stats for pe in pes],
                          png_stats=[png.stats for png in pngs],
                          trace=(tracer.finish(cycles)
                                 if tracer is not None else None),
                          fault_stats=(injector.stats
                                       if injector is not None else None),
                          degraded=(tuple(injector.degraded)
                                    if injector is not None else ()))

    @staticmethod
    def _pass_state(cycles: int, last_progress: int, progress_mark: int,
                    interconnect, vaults, pngs, pes, injector,
                    outputs: dict) -> dict:
        """Assemble one pass's picklable checkpoint snapshot."""
        return {
            "cycles": cycles,
            "last_progress": last_progress,
            "progress_mark": progress_mark,
            "interconnect": interconnect.state_dict(),
            "vaults": [vault.state_dict() for vault in vaults],
            "pngs": [png.state_dict() for png in pngs],
            "pes": [pe.state_dict() for pe in pes],
            "injector": (injector.state_dict()
                         if injector is not None else None),
            "outputs": dict(outputs),
        }

    @staticmethod
    def _restore_pass(state: dict, interconnect, vaults, pngs, pes,
                      injector, outputs: dict) -> None:
        """Restore a snapshot onto freshly built (programmed) agents.

        Mutable state captured by closures — the shared ``outputs``
        dict, each vault's data array — is restored *in place* so the
        live object graph matches the uninterrupted run's at this cycle.
        """
        interconnect.load_state(state["interconnect"])
        for vault, payload in zip(vaults, state["vaults"], strict=True):
            vault.load_state(payload)
        for png, payload in zip(pngs, state["pngs"], strict=True):
            png.load_state(payload)
        for pe, payload in zip(pes, state["pes"], strict=True):
            pe.load_state(payload)
        if injector is not None and state["injector"] is not None:
            injector.load_state(state["injector"])
        outputs.clear()
        outputs.update(state["outputs"])

    @staticmethod
    def _stall_detail(interconnect: Interconnect, pngs, vaults,
                      pes) -> str:
        """Per-agent diagnostic block appended to stall errors.

        Gives CI logs enough to localise a wedged pass without a
        debugger: which PEs stopped advancing their OP-counters (and how
        long each has been waiting against its watchdog), which PNGs are
        blocked on backpressure, the horizon, or missing write-backs,
        and — under fault injection — any pending link retry/backoff
        state or recorded permanent packet losses.
        """
        lines = [f"  noc: injected={interconnect.stats.injected} "
                 f"delivered={interconnect.stats.delivered} "
                 f"rejected={interconnect.stats.rejected_injections}"]
        for pe in pes:
            cache = sum(len(bank) for bank in pe._cache)
            lines.append(
                f"  PE {pe.pe_id}: op={pe.op_counter} "
                f"group={pe._group_idx}/{len(pe._groups)} "
                f"busy={pe._busy} macs={pe.stats.macs_fired} "
                f"idle={pe.stats.idle_cycles} "
                f"writebacks_queued={len(pe._writebacks)} "
                f"cached={cache} done={pe.done} "
                f"waiting={pe._waiting_cycles}")
        for png, vault in zip(pngs, vaults, strict=True):
            held = png._held.op_id if png._held is not None else None
            lines.append(
                f"  PNG @node {png.node}: "
                f"injected={png.stats.packets_injected} "
                f"inject_stalls={png.stats.inject_stall_cycles} "
                f"ready={len(png._ready)} vault_pending={vault.pending} "
                f"held_op={held} "
                f"exhausted={png._emissions_exhausted} "
                f"awaiting_writebacks={png._expected_writebacks}")
        retry = interconnect.retry_diagnostics()
        if retry:
            lines.append("  pending retry/timeout state:")
            lines.extend("    " + line for line in retry)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # descriptor-level runs
    # ------------------------------------------------------------------

    def run_descriptor(self, desc: LayerDescriptor, layer=None,
                       input_tensor: np.ndarray | None = None) -> LayerRun:
        """Simulate all passes of one descriptor.

        Conv output maps and pool maps are independent; they are built
        into :class:`MapTask` units and dispatched through the pass
        executor — in-process when ``config.effective_sim_workers`` is 1,
        over a process pool otherwise.  Outcomes are folded in task
        order, so the parallel path is bit-identical to the serial one.

        Args:
            desc: the compiled descriptor (forward phase).
            layer: the source ``repro.nn`` layer (for weights/biases and
                the activation); None runs timing-only.
            input_tensor: the layer input, unbatched; None -> timing-only.
        """
        # Host wall-clock only (LayerRun.host_seconds); never feeds any
        # simulated result.  nclint: allow(NC101) host-side timing
        started = time.perf_counter()
        functional = layer is not None and input_tensor is not None
        session = current_session()
        trace_options = self.trace_options
        if trace_options is None and session is not None:
            trace_options = session.options
        fault_session = current_fault_session()
        faults = self.faults if self.faults is not None else self.config.faults
        if faults is None and fault_session is not None:
            faults = fault_session.config
        checkpoint = self.checkpoint
        if checkpoint is None:
            checkpoint_session = current_checkpoint_session()
            if checkpoint_session is not None:
                checkpoint = checkpoint_session.spec
        # Degraded mode: with nonzero fault rates some neurons may never
        # write back (exhausted retries on their write-back path);
        # assemble_output zero-fills them instead of raising, and the
        # losses show up as DegradedResult records on the run.
        degraded_ok = faults is not None and faults.any_rate
        lut = None
        if layer is not None:
            act = layer.activation
            lut = act if isinstance(act, ActivationLUT) else ActivationLUT(act)
        memo = self._resolve_memo()
        if memo is not None:
            # Bill the store's disk I/O to the memo_io phase while a
            # live session is ambient (None clears the hook otherwise).
            # Parent-side only: the executor calls load/store in this
            # process, the store object is never shipped to workers.
            memo.timer = ambient_timer("memo_io")
        memo_before = memo.stats.copy() if memo is not None else None
        accum = _RunAccumulator()
        # Per-pass traces carry local clocks starting at 0; each one is
        # offset by the cycles accumulated *before* its fold, which is
        # the serial fold order — so serial and parallel runs merge to
        # identical run-global traces.
        trace_parts: list[tuple[int, Trace]] = []
        if desc.kind == "fc":
            plan = self._fc_plan(desc, layer, input_tensor, lut)
            result = self.run_pass(plan, trace=trace_options,
                                   faults=faults, fault_salt=0,
                                   checkpoint=checkpoint,
                                   pass_label=f"{desc.name}.fc")
            if result.trace is not None:
                trace_parts.append((accum.cycles, result.trace))
            accum.fold(snapshot_pass(result))
            output = (self.assemble_output(desc, plan, result.outputs,
                                           missing_ok=degraded_ok)
                      if functional else None)
        else:
            if desc.kind == "pool":
                tasks = self._pool_tasks(desc, layer, input_tensor)
            else:
                tasks = self._conv_tasks(desc, layer, input_tensor)
            outcomes = self._run_tasks(desc, lut, functional, tasks,
                                       trace=trace_options,
                                       faults=faults,
                                       checkpoint=checkpoint,
                                       memo=memo)
            for outcome in outcomes:
                for pass_outcome in outcome.passes:
                    if pass_outcome.trace is not None:
                        trace_parts.append(
                            (accum.cycles, pass_outcome.trace))
                    accum.fold(pass_outcome)
            output = (np.stack([o.output for o in outcomes], axis=0)
                      if functional else None)
        run = LayerRun(
            descriptor=desc, cycles=accum.cycles, output=output,
            packets=accum.packets,
            lateral_fraction=(accum.lateral / accum.packets
                              if accum.packets else 0.0),
            mean_packet_latency=(accum.latency / accum.packets
                                 if accum.packets else 0.0),
            macs_fired=accum.macs_fired,
            pe_busy_cycles=accum.busy_cycles,
            pe_idle_cycles=accum.idle_cycles,
            search_stall_cycles=accum.search_stall_cycles,
            cache_peak=accum.cache_peak,
            inject_stall_cycles=accum.inject_stall_cycles,
            # nclint: allow(NC101) host-side timing
            host_seconds=time.perf_counter() - started,
            trace=(Trace.merged(trace_parts) if trace_parts else None),
            fault_stats=accum.fault_stats,
            degraded=tuple(accum.degraded),
            memo_stats=(memo.stats.delta(memo_before)
                        if memo is not None else None))
        if run.trace is not None:
            # Self-describing traces: exported files carry the run's
            # memo/fault/degradation counters without their manifest.
            meta: dict = {"layer": desc.name, "kind": desc.kind}
            if run.memo_stats is not None and run.memo_stats.any:
                meta["memo"] = run.memo_stats.as_dict()
            if run.fault_stats is not None:
                meta["faults"] = {
                    name: value for name, value
                    in vars(run.fault_stats).items() if value}
            if run.degraded:
                meta["degraded_results"] = len(run.degraded)
            run.trace.meta.update(meta)
        if session is not None:
            session.add_run(desc.name, run.trace, run.cycles,
                            run.host_seconds, stats=run.to_stats(),
                            config=self.config, descriptor=desc)
        live = current_live()
        if live is not None:
            live.observe_layer(
                desc.name, run.cycles, run.host_seconds,
                n_pe=self.config.n_pe, macs_fired=run.macs_fired,
                pe_busy_cycles=run.pe_busy_cycles,
                search_stall_cycles=run.search_stall_cycles,
                inject_stall_cycles=run.inject_stall_cycles,
                packets=run.packets, degraded=len(run.degraded),
                memo_stats=run.memo_stats)
        if fault_session is not None and run.fault_stats is not None:
            fault_session.add_run(desc.name, run.fault_stats,
                                  run.degraded)
        return run

    def _run_tasks(self, desc: LayerDescriptor, lut, functional: bool,
                   tasks: list[MapTask],
                   trace: TraceOptions | None = None,
                   faults: FaultConfig | None = None,
                   checkpoint: CheckpointSpec | None = None,
                   memo=None) -> list[MapOutcome]:
        executor = ParallelPassExecutor(self.config.effective_sim_workers)
        # Memoization replays one representative outcome per structural
        # equivalence class.  Functional runs carry per-map tensors (the
        # classes rarely collapse, and outputs must be assembled per
        # map anyway) and traced runs must emit every pass's events, so
        # both disable it — as do nonzero fault rates, where structurally
        # identical passes carry different fault salts and therefore see
        # different fault patterns.
        memoize = (self.config.sim_memoize and not functional
                   and trace is None
                   and (faults is None or not faults.any_rate))
        # The persistent store only ever serves memoizable runs, and
        # never checkpointed ones: a replayed pass writes no snapshots,
        # so a checkpointed run must actually simulate to keep its
        # resume contract.
        if not memoize or checkpoint is not None:
            memo = None
        return executor.run(self.config, desc, lut, functional, tasks,
                            trace=trace, memoize=memoize, faults=faults,
                            checkpoint=checkpoint, label_base=desc.name,
                            memo=memo)

    def _pool_tasks(self, desc, layer, input_tensor) -> list[MapTask]:
        """One task per pooled map; every map is a single final pass."""
        mode = "max" if isinstance(layer, MaxPool2D) else "mac"
        tasks = []
        for pass_index in range(desc.passes):
            per_map = (input_tensor[pass_index:pass_index + 1]
                       if input_tensor is not None else None)
            spec = SubPassSpec(kernel=None, input_tensor=per_map,
                               bias=0.0, final=True)
            tasks.append(MapTask(index=pass_index, mode=mode,
                                 sub_passes=(spec,)))
        return tasks

    def _conv_tasks(self, desc, layer, input_tensor) -> list[MapTask]:
        """One task per output map, carrying its sub-pass chain.

        Sub-passes carry per-neuron partial sums: sub-pass 0 preloads the
        layer bias, later sub-passes preload the stored partials (inside
        the worker), and only the final sub-pass goes through the
        activation LUT.
        """
        out_maps = desc.passes // desc.sub_passes
        tasks = []
        for out_map in range(out_maps):
            specs = []
            for j in range(desc.sub_passes):
                kernel = None
                bias = 0.0
                block_input = input_tensor
                if layer is not None and layer.params:
                    in_maps = layer.input_shape[0]
                    block = in_maps // desc.sub_passes
                    lo, hi = j * block, (j + 1) * block
                    kernel = layer.params["weight"][out_map, lo:hi]
                    if input_tensor is not None:
                        block_input = input_tensor[lo:hi]
                    if j == 0:
                        bias = float(layer.params["bias"][out_map])
                specs.append(SubPassSpec(
                    kernel=kernel, input_tensor=block_input, bias=bias,
                    final=(j == desc.sub_passes - 1)))
            tasks.append(MapTask(index=out_map, mode="mac",
                                 sub_passes=tuple(specs)))
        return tasks

    def _fc_plan(self, desc, layer, input_tensor, lut):
        weights = biases = None
        if layer is not None and layer.params:
            weights = layer.params["weight"]
            biases = layer.params["bias"]
        vector = (np.asarray(input_tensor).ravel()
                  if input_tensor is not None else None)
        return build_fc_pass(desc, self.config, vector, weights, biases,
                             lut)

    def assemble_output(self, desc, plan: PassPlan, outputs: dict,
                        missing_ok: bool = False) -> np.ndarray:
        """Collect write-backs into a flat/2D output array (real values).

        With ``missing_ok`` (degraded fault-injection runs) neurons that
        never wrote back stay zero instead of raising — their loss is
        already recorded as a :class:`repro.faults.DegradedResult`.
        """
        missing = plan.total_neurons - len(outputs)
        if missing and not missing_ok:
            raise SimulationError(
                f"{desc.name}: {missing} neurons never wrote back")
        flat = np.zeros(plan.total_neurons, dtype=np.int64)
        for (_, index), raw in outputs.items():
            flat[index] = raw
        values = to_float(flat, self.config.qformat)
        if desc.kind == "fc":
            return values
        if desc.kind == "pool":
            out_h, out_w = (desc.in_height // desc.kernel,
                            desc.in_width // desc.kernel)
        else:
            out_h = desc.in_height - desc.kernel + 1
            out_w = desc.in_width - desc.kernel + 1
        return values.reshape(out_h, out_w)

    # ------------------------------------------------------------------
    # whole-network runs (small networks only)
    # ------------------------------------------------------------------

    def run_network(self, network: Network, x: np.ndarray,
                    duplicate: bool = True,
                    cubes: int = 1,
                    validate: bool | None = None) -> tuple[np.ndarray,
                                                           RunReport]:
        """Simulate a full network on one input sample, layer by layer.

        ``x`` is quantised on entry; each layer's simulated output feeds
        the next, with ``Flatten`` applied as a host-side reshape.  Only
        practical for small networks — use the analytic model for
        paper-scale ones.  With ``cubes > 1`` the network is sharded
        across a multi-cube cluster (:mod:`repro.core.shard`) and the
        returned report is the cluster-level fold; the full
        :class:`~repro.core.shard.ShardRunReport` is available through
        :class:`~repro.core.shard.ShardedSimulator` directly.
        ``validate`` statically verifies the sharded plan
        (:mod:`repro.analysis.shardcheck`, NC301-NC306) before any cube
        runs; None follows the process-wide ``--validate`` default
        (single-cube compiles consult the same switch inside
        :func:`~repro.core.compiler.compile_inference`).
        """
        from repro.fixedpoint import quantize_float

        if cubes > 1:
            from repro.core.multicube import MultiCubeConfig
            from repro.core.shard import ShardedSimulator

            sharded = ShardedSimulator(
                MultiCubeConfig(cube=self.config, n_cubes=cubes),
                faults=self.faults, checkpoint=self.checkpoint)
            output, shard_report = sharded.run_network(
                network, x, duplicate, validate=validate)
            return output, shard_report.report

        with ambient_phase("compile"):
            program = compile_inference(network, self.config, duplicate,
                                        validate=validate)
        descriptors = {d.layer_index: d for d in program.descriptors}
        current = quantize_float(np.asarray(x, dtype=np.float64),
                                 self.config.qformat)
        report = RunReport(network_name=network.name,
                           f_clk_hz=self.config.f_pe_hz,
                           peak_gops=self.config.peak_gops, source="cycle")
        for index, layer in enumerate(network.layers):
            if isinstance(layer, Flatten):
                current = current.reshape(-1)
                continue
            desc = descriptors.get(index)
            if desc is None:
                raise MappingError(
                    f"layer {layer.name!r} missing from program")
            run = self.run_descriptor(desc, layer, current)
            report.layers.append(run.to_stats())
            report.host_seconds += run.host_seconds
            report.degraded.extend(run.degraded)
            self._fold_memo_stats(report, run)
            current = run.output
        if current_session() is not None or current_live() is not None:
            # Observed runs get the post-run bottleneck verdicts; the
            # bare path skips the analysis entirely (same guard
            # convention as tracing — results are identical either way,
            # attribution only *reads* the report).
            report.attribution = attribute_report(
                report, self.config, program.descriptors)
        return current, report

    @staticmethod
    def _fold_memo_stats(report: RunReport, run: LayerRun) -> None:
        """Accumulate a layer's memo counters onto the report."""
        if run.memo_stats is None:
            return
        if report.memo is None:
            from repro.memo.store import MemoStats

            report.memo = MemoStats()
        report.memo.merge(run.memo_stats)

    def run_stream(self, network: Network, frames,
                   duplicate: bool = True) -> StreamReport:
        """Simulate a stream of frames: timing once, data per frame.

        The *cold* phase compiles the network and cycle-simulates every
        compute layer timing-only — memoized, and persisted when a memo
        store is resolved, so a later stream over the same shapes
        replays timing from disk.  The *warm* phase then pushes each
        frame through the functional fixed-point path only, which is
        bit-exact against the simulator's assembled outputs (pinned by
        the integration equivalence tests) — so every streamed frame
        gets real outputs plus the cold phase's exact cycle counts,
        without re-simulating data-independent timing per frame.

        Bit-exactness holds when weighted layers carry a quantisation
        format and :class:`~repro.nn.activations.ActivationLUT`-wrapped
        activations — the LUT is what the simulated hardware applies,
        and a raw float activation differs from it by up to one LSB.
        """
        from repro.fixedpoint import quantize_float

        frames = [np.asarray(frame, dtype=np.float64) for frame in frames]
        if not frames:
            raise ConfigurationError("run_stream needs at least one frame")
        # Host wall-clock phase split only; never feeds any simulated
        # result.  nclint: allow(NC101) host-side timing
        started = time.perf_counter()
        with ambient_phase("compile"):
            program = compile_inference(network, self.config, duplicate)
        descriptors = {d.layer_index: d for d in program.descriptors}
        cold = RunReport(network_name=network.name,
                         f_clk_hz=self.config.f_pe_hz,
                         peak_gops=self.config.peak_gops, source="cycle")
        for index, layer in enumerate(network.layers):
            if isinstance(layer, Flatten):
                continue
            desc = descriptors.get(index)
            if desc is None:
                raise MappingError(
                    f"layer {layer.name!r} missing from program")
            run = self.run_descriptor(desc)
            cold.layers.append(run.to_stats())
            cold.host_seconds += run.host_seconds
            self._fold_memo_stats(cold, run)
        # nclint: allow(NC101) host-side timing
        cold_done = time.perf_counter()
        outputs = []
        for frame in frames:
            quantized = quantize_float(frame, self.config.qformat)
            outputs.append(network.forward(quantized[np.newaxis])[0])
        # nclint: allow(NC101) host-side timing
        warm_done = time.perf_counter()
        return StreamReport(
            network_name=network.name, f_clk_hz=self.config.f_pe_hz,
            frames=len(frames), cold=cold,
            cold_host_seconds=cold_done - started,
            warm_host_seconds=warm_done - cold_done,
            memo=cold.memo, outputs=outputs)
