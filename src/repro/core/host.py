"""Host / global controller (paper §IV-B/C, Fig. 8).

The host programs the Neurocube one layer at a time: it asserts the
configuration-enable signal, writes each PNG's configuration registers
(loop bounds, image width, base addresses, kernel offsets, LUT), then
deasserts the signal to start the FSMs and waits for ``layer done``
(Fig. 8c).  The paper assumes direct host programming over the HMC
external links (§IV-C).

This module is that host software made explicit:

* :func:`registers_for_descriptor` produces the actual
  :class:`~repro.core.png.PNGRegisters` values for a compiled
  descriptor — the bridge between the compiler and the register-level
  FSM model, validated by tests that the FSM's event count equals the
  descriptor's MAC count.
* :class:`HostController` sequences a program layer by layer and
  accounts the host-interaction cost (register writes over the external
  links) that the computation itself cannot hide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor, NeurocubeProgram
from repro.core.png import AddressGenerator, PNGRegisters
from repro.errors import ConfigurationError

#: Scalar configuration registers written per PNG per pass: neuron
#: count, connection count, MAC count, image width, output width,
#: Addr_last, weight base, and the control word.
SCALAR_REGISTERS_PER_PNG = 8

#: External-link register-write rate: one register per link clock; the
#: links run at the reference clock in this model.
WRITES_PER_CYCLE = 1


def kernel_offsets(kernel: int) -> tuple[tuple[int, int], ...]:
    """The Eq. 4 connectivity offsets of a square kernel, row-major."""
    if kernel < 1:
        raise ConfigurationError(f"kernel must be >= 1, got {kernel}")
    return tuple((dx, dy) for dy in range(kernel) for dx in range(kernel))


def registers_for_descriptor(desc: LayerDescriptor,
                             addr_last: int = 0,
                             weight_base: int = 0) -> PNGRegisters:
    """The PNG configuration-register values for one descriptor pass.

    For locally connected layers the offsets table carries the kernel
    (repeated per input map of the pass); fully connected layers leave
    it empty so the connection counter indexes the input vector
    directly (§IV-B).
    """
    if desc.kind in ("conv", "pool"):
        per_map = kernel_offsets(desc.kernel)
        maps = max(1, desc.connections // (desc.kernel * desc.kernel))
        offsets = per_map * maps
        out_width = desc.in_width - desc.kernel + 1
        if desc.kind == "pool":
            out_width = desc.in_width // desc.kernel
    else:
        offsets = ()
        out_width = None
    return PNGRegisters(
        n_neurons=desc.neurons_per_pass, n_connections=desc.connections,
        n_mac=desc.n_mac, image_width=desc.in_width,
        output_width=out_width, addr_last=addr_last,
        weight_base=weight_base, offsets=offsets)


def registers_for_vault_pass(desc: LayerDescriptor,
                             config: NeurocubeConfig,
                             vault: int) -> PNGRegisters | None:
    """Per-vault register values for a duplicated local pass.

    With duplication every vault sources only its own PE's neurons
    (Fig. 10b/c), so each PNG walks a rectangular slice of the output
    grid.  The whole mapping folds into the paper's register set:

    * the neuron counter covers the PE's output rectangle
      (``output_width`` = its clipped width);
    * ``W`` (``image_width``) is the *stored* tile's row pitch;
    * ``Addr_last`` absorbs the constant offset between the PE's output
      origin and the stored tile's origin — exactly what a programmable
      base-address register is for.

    Returns None for a vault whose PE owns no neurons.  Only valid for
    single-input-map duplicated conv/pool descriptors (the hardware's
    native case); the multi-map/no-duplication cases add per-map base
    addresses the same way.
    """
    if desc.kind not in ("conv", "pool") or not desc.layout.duplicate:
        raise ConfigurationError(
            "per-vault registers are defined for duplicated local "
            "passes")
    from repro.memory.layout import partition_grid

    kernel = desc.kernel
    if desc.kind == "pool":
        out_w = desc.in_width // kernel
        out_h = desc.in_height // kernel
    else:
        out_w = desc.in_width - kernel + 1
        out_h = desc.in_height - kernel + 1
    tiles = partition_grid(desc.in_height, desc.in_width, config.n_pe)
    tile = tiles[vault]
    stored = desc.layout.stored_tiles[vault]
    half = kernel // 2
    # Output neurons whose window centre (conv) or window origin
    # (pool) falls in this vault's tile.
    if desc.kind == "pool":
        x_lo = -(-tile.x0 // kernel)
        x_hi = min(out_w, -(-tile.x1 // kernel)
                   if tile.x1 % kernel else tile.x1 // kernel)
        y_lo = -(-tile.y0 // kernel)
        y_hi = min(out_h, tile.y1 // kernel)
    else:
        x_lo = max(0, tile.x0 - half)
        x_hi = min(out_w, tile.x1 - half)
        y_lo = max(0, tile.y0 - half)
        y_hi = min(out_h, tile.y1 - half)
    if x_hi <= x_lo or y_hi <= y_lo:
        return None
    width = x_hi - x_lo
    height = y_hi - y_lo
    stored_w = stored.width
    # Offset from the FSM's rect-local input coordinates to the stored
    # tile's row-major address space.
    if desc.kind == "pool":
        ox_off = x_lo * kernel - stored.x0
        oy_off = y_lo * kernel - stored.y0
    else:
        ox_off = x_lo - stored.x0
        oy_off = y_lo - stored.y0
    addr_last = oy_off * stored_w + ox_off
    return PNGRegisters(
        n_neurons=width * height, n_connections=kernel * kernel,
        n_mac=desc.n_mac, image_width=stored_w, output_width=width,
        addr_last=addr_last, offsets=kernel_offsets(kernel))


@dataclass
class LayerProgrammingCost:
    """Host-side cost of configuring one descriptor.

    Attributes:
        name: descriptor name.
        register_writes: total register writes across PNGs and passes
            (scalars plus the kernel-offset table).
        lut_loaded: whether a new activation LUT had to be loaded
            (the LUT persists between passes with the same activation).
    """

    name: str
    register_writes: int
    lut_loaded: bool

    def cycles(self, writes_per_cycle: int = WRITES_PER_CYCLE) -> int:
        """Reference cycles to push the writes over the links."""
        return -(-self.register_writes // writes_per_cycle)


@dataclass
class HostSchedule:
    """The host's layer-at-a-time schedule for a compiled program."""

    program: NeurocubeProgram
    costs: list[LayerProgrammingCost] = field(default_factory=list)

    @property
    def total_programming_cycles(self) -> int:
        return sum(cost.cycles() for cost in self.costs)

    @property
    def lut_loads(self) -> int:
        return sum(1 for cost in self.costs if cost.lut_loaded)


class HostController:
    """The direct-host-programming controller of §IV-C."""

    def __init__(self, config: NeurocubeConfig) -> None:
        self.config = config

    def programming_cost(self, desc: LayerDescriptor,
                         previous_activation: str | None
                         ) -> LayerProgrammingCost:
        """Register writes to configure one descriptor on every PNG.

        Scalar registers are rewritten every pass; the kernel-offset
        table once per descriptor (it is identical across passes); the
        LUT only when the activation changes from the previous
        descriptor (the per-layer LUT update of §VI).
        """
        scalars = (SCALAR_REGISTERS_PER_PNG * self.config.n_channels
                   * desc.passes)
        offsets = 0
        if desc.kind in ("conv", "pool"):
            offsets = desc.connections * self.config.n_channels
        writes = scalars + offsets
        lut_loaded = desc.activation != previous_activation
        return LayerProgrammingCost(name=desc.name,
                                    register_writes=writes,
                                    lut_loaded=lut_loaded)

    def schedule(self, program: NeurocubeProgram) -> HostSchedule:
        """Cost out the whole program's host interaction."""
        schedule = HostSchedule(program=program)
        previous = None
        for desc in program.descriptors:
            schedule.costs.append(
                self.programming_cost(desc, previous))
            previous = desc.activation
        return schedule

    def validate_registers(self, desc: LayerDescriptor) -> None:
        """Check that the register values drive the FSM over exactly the
        descriptor's work (used by tests and as a mapping sanity check).
        """
        registers = registers_for_descriptor(desc)
        generator = AddressGenerator(registers)
        expected = desc.neurons_per_pass * desc.connections
        if generator.total_events != expected:
            raise ConfigurationError(
                f"{desc.name}: FSM generates {generator.total_events} "
                f"events per pass, descriptor expects {expected}")
