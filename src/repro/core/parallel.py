"""Parallel pass execution for the cycle simulator.

The paper's evaluation (§VI) and the design-space examples need hundreds
of independent cycle-simulated passes: every output map of a convolution
and every map of a pooling layer runs the same PNG program on disjoint
data, with no architectural state shared between passes (each pass
rebuilds vaults, NoC and PEs from scratch).  This module fans those
passes out over a process pool.

Work units are :class:`MapTask` objects — one per output map, carrying
the full sub-pass chain of a blocked convolution, because sub-passes are
sequentially dependent (each preloads the previous partial sums) and
must stay serial *within* a worker.  Workers return :class:`MapOutcome`
objects whose per-pass statistics snapshots are folded by the caller in
task order, so a parallel run produces bit-identical outputs, cycle
counts and statistics to a serial one.

The worker count comes from ``NeurocubeConfig.effective_sim_workers``
(the ``sim_workers`` field, overridable with ``NEUROCUBE_SIM_WORKERS``).

The executor also memoizes on request (``NeurocubeConfig.sim_memoize``):
in timing-only mode every output map of a layer carries the same
tensor-free sub-pass chain, so the tasks collapse into one equivalence
class per :func:`structural_key` — one representative is simulated and
its outcome replayed, re-indexed, for the duplicates.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from functools import partial

import numpy as np

from repro.core.config import NeurocubeConfig
from repro.core.layerdesc import LayerDescriptor
from repro.faults.rng import pass_salt
from repro.nn.activations import ActivationLUT


#: When True, every executor in this process runs its tasks inline
#: regardless of its configured worker count.  Service workers
#: (:mod:`repro.serve`) set this so a job that asks for parallel passes
#: cannot fork a nested process pool inside an already-supervised
#: worker; results are bit-identical either way (the inline path is the
#: same code path a ``workers=1`` executor takes).
_INLINE_ONLY = False


def set_inline_only(flag: bool) -> None:
    """Force all executors in this process to run tasks inline."""
    global _INLINE_ONLY
    _INLINE_ONLY = bool(flag)


def inline_only() -> bool:
    """True when nested process pools are disabled in this process."""
    return _INLINE_ONLY


@dataclass(frozen=True)
class SubPassSpec:
    """One sub-pass of a (possibly input-map-blocked) pass chain.

    Attributes:
        kernel: this sub-pass's kernel block (None for pooling or
            timing-only runs).
        input_tensor: the input-map block this sub-pass streams.
        bias: accumulator preload for the first sub-pass of the chain;
            later sub-passes preload the previous sub-pass's partials
            instead.
        final: True on the last sub-pass — the only one that goes
            through the activation LUT.
    """

    kernel: np.ndarray | None
    input_tensor: np.ndarray | None
    bias: float
    final: bool


@dataclass(frozen=True)
class MapTask:
    """One independent unit of pass work: a full output map.

    Attributes:
        index: output-map (or pool-map) index; results are folded in
            this order.
        mode: "mac" or "max" (max pooling).
        sub_passes: the sequentially-dependent sub-pass chain.
    """

    index: int
    mode: str
    sub_passes: tuple[SubPassSpec, ...]


@dataclass(frozen=True)
class PassOutcome:
    """Picklable reduction of one pass's results.

    ``PassResult`` itself holds the live :class:`Interconnect` (whose
    routing closures cannot cross a process boundary), so workers ship
    this snapshot instead.

    Attributes:
        cycles: reference cycles to layer-done.
        delivered: NoC packets delivered.
        lateral: delivered packets that crossed at least one link.
        total_latency: summed inject-to-eject latency.
        pe_stats: per-PE statistics (``PEStats``).
        png_stats: per-PNG statistics (``PNGStats``).
        trace: the pass's :class:`repro.obs.Trace` (local clock starting
            at 0) when tracing was enabled, else None.  The parent
            offsets it into the run-global clock while folding, so
            parallel and serial runs merge to identical traces.
        fault_stats: the pass's :class:`repro.faults.FaultStats` when a
            fault injector was active, else None.
        degraded: the pass's :class:`repro.faults.DegradedResult`
            records (both are plain picklable dataclasses).
    """

    cycles: int
    delivered: int
    lateral: int
    total_latency: int
    pe_stats: tuple
    png_stats: tuple
    trace: object | None = None
    fault_stats: object | None = None
    degraded: tuple = ()


@dataclass(frozen=True)
class MapOutcome:
    """What one worker returns for one :class:`MapTask`.

    Attributes:
        index: the task's map index.
        passes: per-sub-pass outcomes, in execution order.
        output: the map's assembled output (functional mode) or None.
    """

    index: int
    passes: tuple[PassOutcome, ...]
    output: np.ndarray | None


def _tensor_key(tensor) -> tuple | None:
    """Hashable identity of an array: shape, dtype and raw bytes."""
    if tensor is None:
        return None
    arr = np.asarray(tensor)
    return (arr.shape, arr.dtype.str, arr.tobytes())


def structural_key(task: MapTask) -> tuple:
    """Hashable key under which two tasks simulate identically.

    The simulation of a :class:`MapTask` is a deterministic function of
    its mode and its sub-pass specs (every other input — descriptor,
    configuration, LUT — is constant across one descriptor's task list),
    so two tasks with equal keys produce equal cycle counts, statistics
    and outputs, differing only in :attr:`MapTask.index`.  Tensor
    contents are part of the key (by raw bytes, not object identity), so
    memoization stays exact even when per-map kernels are loaded; in
    timing-only mode the tensors are None and every map of a layer
    collapses into one equivalence class.
    """
    return (task.mode, tuple(
        (_tensor_key(spec.kernel), _tensor_key(spec.input_tensor),
         float(spec.bias), bool(spec.final))
        for spec in task.sub_passes))


def task_plan_hashes(config: NeurocubeConfig, desc: LayerDescriptor,
                     lut: ActivationLUT | None,
                     task: MapTask) -> tuple[str, ...]:
    """Structural hashes of the plans this task would simulate.

    Builds the same per-sub-pass plans :func:`run_map_task` builds in
    timing-only mode (where partial sums never replace the spec bias)
    and returns their
    :meth:`~repro.core.scheduler.PassPlan.structural_hash` digests.
    The persistent memo store records these on store and re-checks them
    on load through the NC207 key⇒hash invariant, so a cached outcome
    is only ever replayed for a task whose plans hash identically to
    the ones it was simulated from.
    """
    # Imported here, not at module top: the scheduler imports nothing
    # from this module, but keeping the executor import-light lets the
    # memo store depend on the task/outcome types without cycles.
    from repro.core.scheduler import build_conv_pass

    hashes = []
    for spec in task.sub_passes:
        plan = build_conv_pass(desc, config, spec.input_tensor,
                               spec.kernel, spec.bias,
                               lut if spec.final else None, mode=task.mode)
        hashes.append(plan.structural_hash())
    return tuple(hashes)


def snapshot_pass(result) -> PassOutcome:
    """Reduce a ``PassResult`` to its picklable statistics snapshot."""
    stats = result.interconnect.stats
    return PassOutcome(
        cycles=result.cycles, delivered=stats.delivered,
        lateral=stats.lateral, total_latency=stats.total_latency,
        pe_stats=tuple(result.pe_stats),
        png_stats=tuple(result.png_stats),
        trace=result.trace,
        fault_stats=result.fault_stats,
        degraded=result.degraded)


def run_map_task(config: NeurocubeConfig, desc: LayerDescriptor,
                 lut: ActivationLUT | None, functional: bool,
                 task: MapTask, trace=None, faults=None, checkpoint=None,
                 label_base: str = "") -> MapOutcome:
    """Run one map's sub-pass chain to completion (worker entry point).

    Sub-passes run serially: sub-pass 0 preloads the spec's bias, later
    sub-passes preload the stored partial sums, and only the final
    sub-pass goes through the activation LUT — exactly the serial
    simulator's schedule, so outputs and statistics match bit for bit.

    ``trace`` (a picklable :class:`repro.obs.TraceOptions`, or None)
    turns on per-pass tracing inside the worker; each pass's trace rides
    back on its :class:`PassOutcome` with a local clock the parent
    offsets into the run-global one.

    ``faults``/``checkpoint`` (picklable
    :class:`repro.faults.FaultConfig` / ``CheckpointSpec``, or None)
    thread fault injection and checkpointing into every sub-pass.  Both
    the fault salt and the checkpoint label derive from the task's
    *logical* identity — ``(label_base, task.index, sub-pass)`` — never
    from worker identity, so serial, parallel and resumed runs inject
    identical faults and share one checkpoint namespace.
    """
    # Imported here, not at module top: the simulator imports this
    # module for the task/outcome types.
    from repro.core.scheduler import build_conv_pass
    from repro.core.simulator import NeurocubeSimulator

    simulator = NeurocubeSimulator(config)
    degraded_ok = faults is not None and faults.any_rate
    partial_sums: np.ndarray | None = None
    passes = []
    for j, spec in enumerate(task.sub_passes):
        bias = (spec.bias if partial_sums is None
                else partial_sums.ravel())
        plan = build_conv_pass(desc, config, spec.input_tensor,
                               spec.kernel, bias,
                               lut if spec.final else None, mode=task.mode)
        result = simulator.run_pass(
            plan, trace=trace, faults=faults,
            fault_salt=pass_salt(task.index, j),
            checkpoint=checkpoint,
            pass_label=f"{label_base}.m{task.index}.s{j}")
        passes.append(snapshot_pass(result))
        if functional:
            partial_sums = simulator.assemble_output(
                desc, plan, result.outputs, missing_ok=degraded_ok)
    return MapOutcome(index=task.index, passes=tuple(passes),
                      output=partial_sums)


class ParallelPassExecutor:
    """Dispatches :class:`MapTask` lists over a process pool.

    With ``workers <= 1`` (or a single task) everything runs in-process
    through the identical :func:`run_map_task` code path, which is what
    makes serial-vs-parallel equivalence structural rather than
    accidental.  Results always come back in task order.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)

    def run(self, config: NeurocubeConfig, desc: LayerDescriptor,
            lut: ActivationLUT | None, functional: bool,
            tasks: list[MapTask], trace=None,
            memoize: bool = False, faults=None, checkpoint=None,
            label_base: str = "", memo=None) -> list[MapOutcome]:
        """Run all tasks; returns outcomes ordered like ``tasks``.

        With ``memoize`` set, tasks are grouped by
        :func:`structural_key`, one representative per equivalence class
        is simulated (serially or over the pool as usual), and the
        representative's outcome is replayed — re-indexed — for every
        duplicate.  The caller must only enable this when outcomes are a
        pure function of the key: untraced runs (a replayed trace would
        duplicate events on the merged clock) whose outcome carries no
        out-of-key state.  Fold order is unchanged, so the folded
        statistics are bit-identical to simulating every task.

        ``memo`` (a :class:`repro.memo.MemoStore`, or None) extends the
        replay across processes: before simulating a representative, the
        store is consulted under its content digest, and every freshly
        simulated representative is written back.  A loaded entry is
        only replayed after its recorded plan hashes pass the NC207
        key⇒hash check against :func:`task_plan_hashes` of the live
        task, so a stale or corrupted entry falls through to simulation.
        Hit or simulated, the replay/fold path is the same, so results
        stay bit-identical to a cold run.
        """
        worker = partial(run_map_task, config, desc, lut, functional,
                         trace=trace, faults=faults, checkpoint=checkpoint,
                         label_base=label_base)
        if not memoize or (memo is None and len(tasks) <= 1):
            return self._execute(worker, tasks)
        keys = [structural_key(task) for task in tasks]
        representatives: dict[tuple, int] = {}
        unique: list[MapTask] = []
        unique_keys: list[tuple] = []
        for task, key in zip(tasks, keys, strict=True):
            if key not in representatives:
                representatives[key] = len(unique)
                unique.append(task)
                unique_keys.append(key)
        if memo is None and len(unique) == len(tasks):
            return self._execute(worker, tasks)
        rep_outcomes: list[MapOutcome | None] = [None] * len(unique)
        to_run: list[MapTask] = []
        run_slots: list[int] = []
        entries: dict[int, tuple[str, tuple[str, ...]]] = {}
        if memo is not None:
            from repro.memo.store import entry_digest

            for slot, (task, key) in enumerate(
                    zip(unique, unique_keys, strict=True)):
                digest = entry_digest(desc, key)
                hashes = task_plan_hashes(config, desc, lut, task)
                entries[slot] = (digest, hashes)
                cached = memo.load(digest, hashes)
                if cached is not None:
                    rep_outcomes[slot] = replace(cached, index=task.index)
                else:
                    to_run.append(task)
                    run_slots.append(slot)
        else:
            to_run = unique
            run_slots = list(range(len(unique)))
        for slot, outcome in zip(run_slots, self._execute(worker, to_run),
                                 strict=True):
            rep_outcomes[slot] = outcome
            if memo is not None:
                digest, hashes = entries[slot]
                # Entries are stored index-free (canonical index 0);
                # replay re-indexes per task either way.
                memo.store(digest, hashes, replace(outcome, index=0))
        outcomes = []
        for task, key in zip(tasks, keys, strict=True):
            rep = rep_outcomes[representatives[key]]
            outcomes.append(rep if rep.index == task.index
                            else replace(rep, index=task.index))
        return outcomes

    def map(self, worker, items: list) -> list:
        """Run ``worker`` over arbitrary picklable items, in order.

        The sharded multi-cube executor (:mod:`repro.core.shard`)
        dispatches one item per cube through this; the same in-process
        rule as :meth:`_execute` (``workers <= 1`` or a single item runs
        inline through the identical code path) is what makes its
        serial-vs-parallel bit-identity structural too.
        """
        return self._execute(worker, items)

    def _execute(self, worker, tasks: list[MapTask]) -> list[MapOutcome]:
        if _INLINE_ONLY or self.workers == 1 or len(tasks) <= 1:
            return [worker(task) for task in tasks]
        pool_size = min(self.workers, len(tasks))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            return list(pool.map(worker, tasks))
