"""Programmable neurosequence generator (paper §IV, Fig. 7-8).

Two layers of modelling live here:

* :class:`AddressGenerator` — the three-counter FSM of Fig. 8b/8d with the
  Eq. 4/5 combinational address logic, exactly as the paper draws it.  It
  is the programmer-visible contract: configuration registers in, a
  deterministic address/sequence stream out.  Unit tests check it against
  the paper's worked example (73,476 neurons, 49 connections, counter
  stride 16).

* :class:`NeurosequenceGenerator` — the cycle-level simulation agent that
  sits between one vault controller and one NoC router: it drives read
  requests into the vault, encapsulates returned words into packets
  (Fig. 11a), injects them with backpressure, and handles write-backs —
  applying the activation LUT to the returned state (Eq. 2) and storing
  the result back to DRAM.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, ProtocolError
from repro.memory.vault import VaultChannel
from repro.nn.activations import ActivationLUT
from repro.noc.interconnect import Interconnect
from repro.noc.packet import Packet, PacketKind, packet_crc
from repro.noc.routing import Port


@dataclass(frozen=True)
class PNGRegisters:
    """Host-visible configuration registers for one layer (§IV-C).

    Attributes:
        n_neurons: total neurons in the layer (outer counter bound); the
            worked example programs 73,476 for the first conv layer.
        n_connections: connections per neuron (middle counter bound);
            49 for a 7x7 kernel.
        n_mac: MACs per PE (inner counter bound / neuron-counter stride).
        image_width: ``W`` of Eq. 5 — the width of the stored
            previous-layer image being addressed.
        output_width: width of this layer's output grid, used to turn
            the flat neuron counter into ``(cur_x, cur_y)``; defaults to
            ``image_width`` (the fully connected / same-size case).
        addr_last: base address of the previous layer's states (Eq. 5's
            ``Addr_last``).
        weight_base: base address of this layer's weights.
        offsets: kernel connectivity offsets ``(n_x, n_y)`` of Eq. 4, in
            connection order; empty for fully connected layers where the
            connection counter indexes the input vector directly.
    """

    n_neurons: int
    n_connections: int
    n_mac: int
    image_width: int
    output_width: int | None = None
    addr_last: int = 0
    weight_base: int = 0
    offsets: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_neurons < 1:
            raise ConfigurationError("n_neurons must be >= 1")
        if self.n_connections < 1:
            raise ConfigurationError("n_connections must be >= 1")
        if self.n_mac < 1:
            raise ConfigurationError("n_mac must be >= 1")
        if self.image_width < 1:
            raise ConfigurationError("image_width must be >= 1")
        if self.output_width is not None and self.output_width < 1:
            raise ConfigurationError("output_width must be >= 1")
        if self.offsets and len(self.offsets) != self.n_connections:
            raise ConfigurationError(
                f"{len(self.offsets)} offsets for {self.n_connections} "
                f"connections")


@dataclass(frozen=True)
class AddressEvent:
    """One FSM step: the addresses for one (neuron, connection, MAC).

    Attributes:
        neuron: flat neuron index (``cur`` counter value + MAC lane).
        connection: connection counter value (the packet's OP-ID source).
        mac: MAC counter value (the packet's MAC-ID).
        state_address: Eq. 5 address of the connected neuron's state.
        weight_address: address of the corresponding synaptic weight.
    """

    neuron: int
    connection: int
    mac: int
    state_address: int
    weight_address: int


class AddressGenerator:
    """The three nested loops of Fig. 8b as an explicit FSM.

    The outer counter walks neurons in steps of ``n_mac`` (the paper's
    example increments by 16), the middle counter walks connections, and
    the inner counter walks MAC lanes.  For locally connected layers the
    state address follows Eq. 4/5:

        ``targ = cur + n;  Addr = targ_y * W + targ_x + Addr_last``

    For fully connected layers (no ``offsets``) the connection counter
    *is* the input index.
    """

    def __init__(self, registers: PNGRegisters) -> None:
        self.registers = registers

    def neuron_coords(self, neuron: int) -> tuple[int, int]:
        """Flat neuron index to ``(cur_x, cur_y)`` output coordinates."""
        width = (self.registers.output_width
                 if self.registers.output_width is not None
                 else self.registers.image_width)
        return neuron % width, neuron // width

    def state_address(self, neuron: int, connection: int) -> int:
        """Eq. 5 state address for one (neuron, connection)."""
        reg = self.registers
        if reg.offsets:
            n_x, n_y = reg.offsets[connection]
            cur_x, cur_y = self.neuron_coords(neuron)
            targ_x = cur_x + n_x
            targ_y = cur_y + n_y
            return targ_y * reg.image_width + targ_x + reg.addr_last
        return connection + reg.addr_last

    def weight_address(self, neuron: int, connection: int) -> int:
        """Weight address: shared per connection for local layers, a
        (neuron, connection) matrix entry for fully connected ones."""
        reg = self.registers
        if reg.offsets:
            return reg.weight_base + connection
        return reg.weight_base + neuron * reg.n_connections + connection

    def events(self) -> Iterator[AddressEvent]:
        """Iterate the full FSM schedule for one layer.

        Order matches Fig. 8d: for each group of ``n_mac`` neurons, for
        each connection, for each MAC lane.  Steps whose neuron index
        overruns ``n_neurons`` (a ragged final group) are skipped, as the
        hardware masks those lanes.
        """
        reg = self.registers
        for group_base in range(0, reg.n_neurons, reg.n_mac):
            for connection in range(reg.n_connections):
                for mac in range(reg.n_mac):
                    neuron = group_base + mac
                    if neuron >= reg.n_neurons:
                        continue
                    yield AddressEvent(
                        neuron=neuron, connection=connection, mac=mac,
                        state_address=self.state_address(neuron, connection),
                        weight_address=self.weight_address(neuron,
                                                           connection))

    @property
    def total_events(self) -> int:
        """FSM steps for a full layer (== MAC operations)."""
        return self.registers.n_neurons * self.registers.n_connections


@dataclass(frozen=True)
class EmissionRecord:
    """One packet this vault must source (the scheduler's output).

    Attributes:
        address: item address in this vault to read (-1 for items the PNG
            synthesises without a DRAM read, e.g. a constant).
        dst: destination PE.
        mac_id: target MAC lane.
        op_id: global operation index at the destination PE.
        kind: weight or state.
        neuron: opaque neuron tag for bookkeeping.
    """

    address: int
    dst: int
    mac_id: int
    op_id: int
    kind: PacketKind
    neuron: object = None


@dataclass
class PNGStats:
    """Per-layer statistics of one PNG."""

    packets_injected: int = 0
    writebacks_received: int = 0
    inject_stall_cycles: int = 0


class NeurosequenceGenerator:
    """Cycle-level PNG agent: vault -> packets -> NoC, and write-backs.

    Args:
        vault: the vault channel this PNG drives.
        node: the NoC node (router) this PNG injects at.
        interconnect: the NoC.
        max_outstanding: how many reads the PNG keeps queued at the vault
            (the request pipeline depth).
        tracer: optional :class:`repro.obs.Tracer`; when set, every
            successful injection emits a ``png.inject`` event.  None (the
            default) keeps the injection loop hook-free.
        injector: optional :class:`repro.faults.FaultInjector`; when
            set, items read from DRAM may arrive with flipped bits (the
            per-item addresses are known here, at packetise time), the
            PNG stamps outgoing packets with a CRC-8 when the protocol
            asks for it, and write-backs recorded as permanently lost
            are forgiven instead of wedging the layer-done signal.
    """

    def __init__(self, vault: VaultChannel, node: int,
                 interconnect: Interconnect,
                 max_outstanding: int = 16,
                 horizon: Callable[[], float] | None = None,
                 tracer=None, injector=None) -> None:
        self.vault = vault
        self.node = node
        self.interconnect = interconnect
        self.max_outstanding = max_outstanding
        self._tracer = tracer
        self._injector = injector
        self._stamp_crc = injector is not None and injector.config.crc
        # All PNGs walk one layer's FSM in lock-step (Fig. 8c: the host
        # starts computation only "after all 16 PNGs are configured").
        # The horizon callback bounds the op-skew between generators so a
        # fast generator cannot run arbitrarily ahead of the PEs — which
        # both matches the lock-step hardware and keeps the PE caches
        # within their 64-entry sub-banks.
        self._horizon = horizon
        # Bound once: the router output this PNG drains write-backs from
        # every cycle (mirrors ProcessingElement._rx_buffer).
        self._rx_buffer = interconnect.routers[node].outputs[Port.MEM]
        self._held: EmissionRecord | None = None
        self._emissions: Iterator[EmissionRecord] | None = None
        self._emissions_exhausted = True
        # Records pulled off the emission iterator so far — the resume
        # path uses it to fast-forward a freshly programmed schedule to
        # the checkpointed position (iterators themselves cannot pickle).
        self._consumed = 0
        self._ready: deque[Packet] = deque()
        self._expected_writebacks = 0
        self._lut: ActivationLUT | None = None
        self._writeback_sink: Callable[[Packet, int], None] | None = None
        self.stats = PNGStats()

    # ------------------------------------------------------------------
    # programming interface (the host writes these "registers")
    # ------------------------------------------------------------------

    def program(self, emissions: Iterator[EmissionRecord],
                expected_writebacks: int,
                lut: ActivationLUT | None = None,
                writeback_sink: Callable[[Packet, int], None] | None = None,
                ) -> None:
        """Load one layer's schedule (the host's configuration write).

        Args:
            emissions: packet source schedule, in generation order.
            expected_writebacks: write-backs to await before layer-done.
            lut: activation look-up table applied to returned states.
            writeback_sink: callback ``(packet, activated_raw)`` invoked
                for every write-back (the simulator uses it to store the
                state at the output neuron's address).
        """
        if not self.done:
            raise ProtocolError(
                f"PNG at node {self.node} reprogrammed before layer_done")
        self._emissions = iter(emissions)
        self._held = None
        self._emissions_exhausted = False
        self._consumed = 0
        self._expected_writebacks = expected_writebacks
        self._lut = lut
        self._writeback_sink = writeback_sink
        self.stats = PNGStats()

    @property
    def done(self) -> bool:
        """The paper's ``layer done`` signal (Fig. 8c)."""
        return (self._emissions_exhausted
                and self._held is None
                and not self._ready
                and not self.vault.busy
                and self._expected_writebacks <= 0)

    def can_progress(self) -> bool:
        """True when the next :meth:`step` could do visible work, given an
        empty NoC and an unchanged vault.

        Used by the simulator's quiescence check.  The PNG can progress
        when it holds packets ready to inject, or when it can enqueue a
        new vault read: the request pipeline has a slot and the next
        emission record sits within the lock-step horizon.  Peeking the
        next record pulls it into the held slot, which is exactly where
        ``step`` would park it — no schedule state is lost.
        """
        if self._ready:
            return True
        if self._emissions_exhausted and self._held is None:
            return False
        if self.vault.pending >= self.max_outstanding:
            return False
        if self._held is None:
            self._held = self._next_record()
            if self._held is None:
                return False
        if self._horizon is None:
            return True
        return self._held.op_id <= self._horizon()

    def next_event_delta(self) -> int | None:
        """Cycles until this PNG (or its vault) next does visible work.

        The event-horizon scheduler's per-agent contract, mirroring
        :meth:`ProcessingElement.next_event_delta`: 0 when the PNG can
        act right now (write-backs waiting in its router output, packets
        ready to inject, or a vault read it can enqueue within the
        lock-step horizon), the vault's countdown when only the vault
        has a pending issue/completion, and None when the pair is fully
        passive until some other agent acts.

        Between now and the returned delta a skipped PNG has no per-cycle
        state of its own; fast-forwarding it is exactly
        ``vault.skip(n)``.
        """
        if not self._rx_buffer.empty:
            return 0
        if self.can_progress():
            return 0
        if (self._injector is not None and self._injector.has_losses
                and self._injector.has_lost_writebacks(self.node)):
            # A write-back bound for this PNG was recorded permanently
            # lost: forgiving it is an immediate event, so skip-ahead
            # never coasts past the degradation.
            return 0
        return self.vault.next_event_delta()

    def skip(self, cycles: int) -> None:
        """Fast-forward ``cycles`` event-free cycles.

        A PNG whose :meth:`next_event_delta` exceeds one has no
        per-cycle state of its own (no ready packets, nothing to issue
        within the horizon, an empty MEM output) — the only clocked
        state in the pair is the vault's, so fast-forwarding the pair
        is exactly the vault's skip.
        """
        self.vault.skip(cycles)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One reference-clock cycle of PNG work.

        Stages: top up the vault request queue from the emission schedule;
        advance the vault; packetise returned words; inject ready packets
        (up to the local word rate) with backpressure; drain write-backs
        from the router's MEM output.
        """
        self._issue_requests()
        for read in self.vault.step():
            self._packetise(read)
        self._inject_ready()
        self._drain_writebacks()
        if self._injector is not None and self._injector.has_losses:
            self._forgive_lost_writebacks()

    def _issue_requests(self) -> None:
        """Pack emission records into word-granularity vault reads.

        The vault returns one word — ``items_per_word`` items — per
        service slot (Fig. 11a: "the PNG receives 32bit data and
        encapsulates that into two packets"), so up to that many records
        share one read.  Like the paper's model, addresses are assumed to
        pack fully into words.
        """
        if self._emissions_exhausted and self._held is None:
            return
        capacity = self.vault.items_per_word
        limit = self._horizon() if self._horizon is not None else None
        while self.vault.pending < self.max_outstanding:
            batch: list[EmissionRecord] = []
            while len(batch) < capacity:
                record = self._next_record()
                if record is None:
                    break
                if limit is not None and record.op_id > limit:
                    self._held = record  # wait for the PEs to catch up
                    break
                batch.append(record)
            if not batch:
                return
            self.vault.enqueue_read(max(0, batch[0].address),
                                    tag=tuple(batch))

    def _next_record(self) -> EmissionRecord | None:
        if self._held is not None:
            record, self._held = self._held, None
            return record
        if self._emissions_exhausted:
            return None
        try:
            record = next(self._emissions)
        except StopIteration:
            self._emissions_exhausted = True
            return None
        self._consumed += 1
        return record

    def _read_item(self, address: int) -> int:
        """Fetch one raw item from the backing store (0 in timing mode)."""
        data = self.vault.data
        if data is None or address < 0 or address >= len(data):
            return 0
        return int(data[address])

    def _packetise(self, read) -> None:
        injector = self._injector
        for slot, record in enumerate(read.tag):
            payload = self._read_item(record.address)
            crc = None
            if injector is not None:
                if record.address >= 0:
                    # DRAM bit-flips land here: the per-item address and
                    # the read's issue cycle key the fault site, so the
                    # same read draws the same fault in every execution
                    # mode.  Synthesised items (address -1) never
                    # touched DRAM and cannot flip.
                    payload = injector.corrupt_item(
                        self.vault.vault_id, read.issued_cycle,
                        record.address, slot, payload)
                if self._stamp_crc:
                    crc = packet_crc(self.vault.vault_id, record.dst,
                                     record.mac_id, record.op_id % 256,
                                     record.kind, payload & 0xFFFF)
            self._ready.append(Packet(
                src=self.vault.vault_id, dst=record.dst,
                mac_id=record.mac_id, op_id=record.op_id, kind=record.kind,
                payload=payload, neuron=record.neuron,
                inject_cycle=self.interconnect.cycle, crc=crc))

    def _inject_ready(self) -> None:
        rate = self.interconnect.local_rate
        injected = 0
        while self._ready and injected < rate:
            if not self.interconnect.can_inject(self.node, Port.MEM):
                self.stats.inject_stall_cycles += 1
                return
            packet = self._ready.popleft()
            self.interconnect.inject(self.node, packet, Port.MEM)
            injected += 1
            self.stats.packets_injected += 1
            if self._tracer is not None:
                self._tracer.png_inject(self.interconnect.cycle,
                                        self.vault.vault_id, packet)

    def _forgive_lost_writebacks(self) -> None:
        """Account write-backs the NoC recorded as permanently lost.

        Without this the layer-done signal would wait forever for data
        that can no longer arrive.  The expected count is decremented,
        the output neuron keeps no value (functional assembly fills a
        zero), and the degradation is put on record.
        """
        injector = self._injector
        for loss in injector.take_lost_writebacks(self.node):
            self._expected_writebacks -= 1
            injector.stats.writebacks_forgiven += 1
            injector.record_degraded(
                "writeback_forgiven", self.interconnect.cycle,
                f"PNG node {self.node}: {loss.describe()}",
                neurons=(loss.neuron,) if loss.neuron is not None else ())

    def _drain_writebacks(self) -> None:
        for packet in self.interconnect.eject(
                self.node, Port.MEM, limit=self.interconnect.local_rate):
            if packet.kind != PacketKind.WRITEBACK:
                raise ProtocolError(
                    f"PNG at node {self.node} received non-writeback "
                    f"{packet}")
            raw = packet.payload
            if self._lut is not None:
                raw = int(self._lut.lookup_raw(raw))
            if self._writeback_sink is not None:
                self._writeback_sink(packet, raw)
            self._expected_writebacks -= 1
            self.stats.writebacks_received += 1
            if self._expected_writebacks < 0:
                raise ProtocolError(
                    f"PNG at node {self.node} received more write-backs "
                    f"than programmed")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Picklable snapshot (the vault snapshots separately).

        The emission iterator itself cannot pickle; its position is the
        ``consumed`` counter, which :meth:`load_state` replays against a
        freshly programmed (identical) schedule.
        """
        return {
            "held": self._held,
            "consumed": self._consumed,
            "emissions_exhausted": self._emissions_exhausted,
            "ready": tuple(self._ready),
            "expected_writebacks": self._expected_writebacks,
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot onto a freshly programmed PNG."""
        for _ in range(state["consumed"]):
            next(self._emissions)
        self._consumed = state["consumed"]
        self._held = state["held"]
        self._emissions_exhausted = state["emissions_exhausted"]
        self._ready = deque(state["ready"])
        self._expected_writebacks = state["expected_writebacks"]
        self.stats = replace(state["stats"])
