"""Layer descriptors: what the host programs into the PNGs (§IV-C).

A :class:`LayerDescriptor` is the compiler's output for one network layer:
the three loop bounds of the PNG FSM (neurons, connections, MACs), the
chosen data layout across vaults, and bookkeeping (op counts, packet
counts) shared by the cycle simulator and the analytic model.  Multi-map
convolutions are lowered to per-output-map *passes* so each pass's kernel
fits the PE weight register (Table II: 3,600 bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from collections.abc import Iterator

from repro.errors import ConfigurationError
from repro.memory.layout import LayoutPlan


class Phase(Enum):
    """Which pass of training a descriptor implements."""

    FORWARD = "forward"
    BACKWARD_DATA = "backward_data"
    BACKWARD_WEIGHT = "backward_weight"
    WEIGHT_UPDATE = "weight_update"


@dataclass(frozen=True)
class LayerDescriptor:
    """One PNG-programmable unit of work.

    Attributes:
        name: layer name (suffixed with the phase for training).
        kind: "conv", "fc" or "pool".
        phase: forward / backward role.
        layer_index: index of the source layer in the compiled network
            (-1 for synthetic descriptors in tests).
        passes: how many times the PNG program runs (one per output map
            for convolutions, times ``sub_passes``; each pass reloads the
            PE weight registers).
        sub_passes: input-map blocking factor.  When a conv kernel has
            more weights than the 3,600-bit PE weight register holds, the
            compiler splits the input maps into blocks that fit and runs
            one sub-pass per block, carrying partial sums between them.
        neurons_per_pass: outer-loop bound of the PNG FSM per pass.
        connections: middle-loop bound — inputs per output neuron.
        n_mac: inner-loop bound (MACs per PE).
        in_height, in_width: input image geometry (Eq. 5's ``W``); 1-wide
            for vector layers.
        kernel: kernel side for local connectivity (0 otherwise).
        layout: the vault data layout chosen for this descriptor.
        weights_resident: True when weights live in PE weight registers
            (only states stream); False when weights stream from DRAM.
        is_weighted: False for pooling (no synapses; MACs still do the
            accumulation with fixed coefficients).
        activation: activation name loaded into the PNG LUT.
    """

    name: str
    kind: str
    phase: Phase
    layer_index: int
    passes: int
    neurons_per_pass: int
    connections: int
    n_mac: int
    in_height: int
    in_width: int
    kernel: int
    layout: LayoutPlan
    weights_resident: bool
    is_weighted: bool
    activation: str
    sub_passes: int = 1

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise ConfigurationError(f"{self.name}: passes must be >= 1")
        if self.sub_passes < 1 or self.passes % self.sub_passes:
            raise ConfigurationError(
                f"{self.name}: sub_passes ({self.sub_passes}) must divide "
                f"passes ({self.passes})")
        if self.neurons_per_pass < 1:
            raise ConfigurationError(
                f"{self.name}: neurons_per_pass must be >= 1")
        if self.connections < 1:
            raise ConfigurationError(
                f"{self.name}: connections must be >= 1")
        if self.kind not in ("conv", "fc", "pool"):
            raise ConfigurationError(f"{self.name}: unknown kind "
                                     f"{self.kind!r}")

    # ------------------------------------------------------------------
    # aggregate work
    # ------------------------------------------------------------------

    @property
    def neurons(self) -> int:
        """Total output neurons across all passes."""
        return self.passes * self.neurons_per_pass

    @property
    def macs(self) -> int:
        """Total multiply-accumulates."""
        return self.neurons * self.connections

    @property
    def ops(self) -> int:
        """Arithmetic ops (2 per MAC)."""
        return 2 * self.macs

    @property
    def items_per_connection(self) -> int:
        """Data items streamed from DRAM per connection evaluation.

        One (the state) when weights are PE-resident; two (state +
        weight) when weights stream.  Pooling streams one item.
        """
        if not self.is_weighted:
            return 1
        return 1 if self.weights_resident else 2

    @property
    def stream_items(self) -> int:
        """Total 16-bit items streamed from DRAM for this descriptor."""
        return self.macs * self.items_per_connection

    @property
    def noc_packets(self) -> int:
        """Packets injected into the NoC: streamed items + write-backs."""
        return self.stream_items + self.neurons

    @property
    def lateral_packets(self) -> float:
        """Expected packets that cross the mesh (remote state accesses).

        Weights are co-resident with the consuming PE's vault, so only the
        state stream goes remote, at the layout's remote fraction.
        Write-backs return to the neuron's home vault (local).
        """
        remote_states = self.macs * self.layout.remote_state_fraction
        return remote_states

    @property
    def duplicate(self) -> bool:
        """Whether the duplication strategy is in force."""
        return self.layout.duplicate

    def __repr__(self) -> str:
        return (f"LayerDescriptor({self.name}, {self.kind}/"
                f"{self.phase.value}, {self.passes}x{self.neurons_per_pass}"
                f"n x {self.connections}c)")


@dataclass(frozen=True)
class NeurocubeProgram:
    """A compiled network: the ordered descriptor list the host executes.

    Attributes:
        network_name: the source network's name.
        descriptors: PNG programs in execution order.
        duplicate: the layout strategy used throughout.
        training: True when backward/update descriptors are included.
    """

    network_name: str
    descriptors: tuple[LayerDescriptor, ...]
    duplicate: bool
    training: bool

    def __iter__(self) -> Iterator[LayerDescriptor]:
        return iter(self.descriptors)

    def __len__(self) -> int:
        return len(self.descriptors)

    @property
    def total_macs(self) -> int:
        return sum(d.macs for d in self.descriptors)

    @property
    def total_ops(self) -> int:
        return sum(d.ops for d in self.descriptors)

    @property
    def total_stream_items(self) -> int:
        return sum(d.stream_items for d in self.descriptors)

    @property
    def state_bytes(self) -> int:
        """Unique neuron-state bytes across forward descriptors."""
        return sum(d.layout.state_bytes for d in self.descriptors
                   if d.phase == Phase.FORWARD)

    @property
    def weight_bytes(self) -> int:
        """Unique weight bytes across forward descriptors."""
        return sum(d.layout.weight_bytes for d in self.descriptors
                   if d.phase == Phase.FORWARD)

    @property
    def duplicated_bytes(self) -> int:
        """Duplication overhead bytes across forward descriptors."""
        return sum(d.layout.duplicated_bytes for d in self.descriptors
                   if d.phase == Phase.FORWARD)

    @property
    def total_bytes(self) -> int:
        """Total DRAM footprint including duplication, forward data."""
        return self.state_bytes + self.weight_bytes + self.duplicated_bytes

    @property
    def memory_overhead(self) -> float:
        """Duplicated bytes over the un-duplicated footprint."""
        base = self.state_bytes + self.weight_bytes
        return self.duplicated_bytes / base if base else 0.0
