"""Processing element cycle model (paper §III-B, §V-B, Fig. 11).

A PE owns ``n_mac`` MAC units, a temporal buffer, an OP-counter, and a
16-sub-bank SRAM cache.  Incoming packets whose OP-ID matches the
OP-counter land in the temporal buffer; later packets park in sub-bank
``OP-ID mod 16``.  When the temporal buffer holds a full operand set the
MACs fire (taking ``n_mac`` PE cycles — the MAC clock is ``f_PE/n_MAC``),
the OP-counter advances, and parked packets for the new operation are
fetched with the paper's 16-to-64-cycle sub-bank search, overlapped with
the MAC computation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.core.config import NeurocubeConfig
from repro.core.mac import MACUnit
from repro.errors import ConfigurationError, ProtocolError
from repro.noc.interconnect import Interconnect
from repro.noc.packet import Packet, PacketKind, packet_crc
from repro.noc.routing import Port


@dataclass(frozen=True)
class GroupSlot:
    """One output neuron occupying one MAC lane for a group.

    Attributes:
        neuron: opaque neuron tag (echoed in the write-back packet).
        home_vault: vault that stores this neuron's output state.
        bias: real-valued bias pre-loaded into the accumulator.
    """

    neuron: object
    home_vault: int
    bias: float = 0.0


@dataclass(frozen=True)
class GroupPlan:
    """A group of up to ``n_mac`` neurons processed in lock-step.

    Attributes:
        slots: the neurons, one per MAC lane (lane i = slots[i]).
        n_connections: operations to complete each neuron.
        mode: "mac" for weighted sums, "max" for max-pooling emulation.
        weights_resident: True when weights come from the PE weight
            registers (``weights``) instead of packets.
        shared_state: True when one state item per operation feeds every
            lane (fully connected layers: all neurons read input ``c``).
        weights: raw resident weights indexed by connection (shared
            across lanes, as in a convolution kernel).
    """

    slots: tuple[GroupSlot, ...]
    n_connections: int
    mode: str = "mac"
    weights_resident: bool = True
    shared_state: bool = False
    weights: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.slots:
            raise ConfigurationError("group with no slots")
        if self.n_connections < 1:
            raise ConfigurationError("group needs >= 1 connection")
        if self.mode not in ("mac", "max"):
            raise ConfigurationError(f"unknown group mode {self.mode!r}")
        if self.weights_resident and self.mode == "mac":
            if self.weights is None or len(self.weights) != self.n_connections:
                raise ConfigurationError(
                    "resident-weight group needs one weight per connection")


@dataclass
class PEStats:
    """Per-layer statistics of one PE."""

    macs_fired: int = 0
    idle_cycles: int = 0
    busy_cycles: int = 0
    search_stall_cycles: int = 0
    cache_peak: int = 0
    packets_received: int = 0


class ProcessingElement:
    """One PE agent attached to NoC node ``pe_id``.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) turns on event
    emission at the three PE observability points — MAC fires, cache
    parks, cache recoveries; None keeps those sites to a single pointer
    comparison each.

    ``injector`` (a :class:`repro.faults.FaultInjector`, optional) arms
    the resilience machinery: stuck-at faults on outgoing MAC results,
    CRC stamps on write-backs, and the per-PE watchdog that force-fires
    an operation whose operand packet was recorded permanently lost —
    zero-filling the missing operands and marking the group's neurons
    degraded instead of wedging the pass.
    """

    def __init__(self, pe_id: int, config: NeurocubeConfig,
                 interconnect: Interconnect, tracer=None,
                 injector=None) -> None:
        self.pe_id = pe_id
        self.config = config
        self.interconnect = interconnect
        self._tracer = tracer
        self._injector = injector
        self._stamp_crc = injector is not None and injector.config.crc
        self._watchdog = (injector.config.watchdog_cycles
                          if injector is not None else 0)
        # Consecutive cycles stalled waiting for operands; feeds the
        # watchdog and the stall diagnostics.  Accrued identically by
        # step() and skip(), reset whenever an operand lands or an
        # operation fires.
        self._waiting_cycles = 0
        self.macs = [MACUnit(config.qformat, mac_id=i)
                     for i in range(config.n_mac)]
        self._groups: list[GroupPlan] = []
        self._group_idx = 0
        self._conn = 0
        self._busy = 0
        self._advance_pending = False
        self._writebacks: deque[Packet] = deque()
        self._cache: list[list[Packet]] = [
            [] for _ in range(config.cache_subbanks)]
        self._weight_slots: dict[int, int] = {}
        self._state_slots: dict[int, int] = {}
        self._shared_state: int | None = None
        # Bound once: the router output this PE drains every cycle.
        self._rx_buffer = interconnect.routers[pe_id].outputs[Port.PE]
        self.stats = PEStats()

    # ------------------------------------------------------------------
    # programming
    # ------------------------------------------------------------------

    def program(self, groups: list[GroupPlan]) -> None:
        """Load one layer pass's group schedule."""
        if not self.done:
            raise ProtocolError(
                f"PE {self.pe_id} reprogrammed while layer in progress")
        self._groups = list(groups)
        self._group_idx = 0
        self._conn = 0
        self._busy = 0
        self._advance_pending = False
        self._clear_operand_buffers()
        self.stats = PEStats()
        if self._groups:
            self._start_group()

    @property
    def done(self) -> bool:
        """All groups complete and all write-backs injected."""
        return (self._group_idx >= len(self._groups)
                and not self._writebacks
                and all(not bank for bank in self._cache))

    @property
    def cache_fill(self) -> int:
        """Packets currently parked across all cache sub-banks."""
        return sum(len(bank) for bank in self._cache)

    @property
    def op_counter(self) -> int:
        """The global operation counter (OP-counter of Fig. 11)."""
        if self._group_idx >= len(self._groups):
            return self._group_idx * (self._groups[-1].n_connections
                                      if self._groups else 1)
        return (self._group_idx * self._groups[self._group_idx].n_connections
                + self._conn)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One PE-clock cycle."""
        if self._writebacks:
            self._inject_writebacks()
        if not self._rx_buffer.empty:
            self._receive_packets()
        if self._group_idx >= len(self._groups):
            return
        if self._busy > 0:
            self._busy -= 1
            self.stats.busy_cycles += 1
            if self._busy == 0 and self._advance_pending:
                self._advance_pending = False
                self._advance_op()
            return
        if self._operands_ready():
            self._fire()
        else:
            self.stats.idle_cycles += 1
            self._waiting_cycles += 1
            injector = self._injector
            if (injector is not None and self._watchdog
                    and self._waiting_cycles >= self._watchdog
                    and injector.has_losses
                    and injector.loss_matches(self.pe_id,
                                              self.op_counter)):
                self._force_fire()

    def next_event_delta(self) -> int | None:
        """Cycles until this PE next does visible work.

        The event-horizon scheduler's per-agent contract: 0 when the PE
        can act right now (packets waiting in its router output,
        write-backs queued, or a complete operand set ready to fire),
        ``n >= 1`` when its next visible event is the n-th step from now
        (a MAC/search countdown expiring — the countdown itself is
        replicated by :meth:`skip`), and None when it is passive — done,
        or idle until a packet arrives, which requires some other agent
        to act first.
        """
        if self._writebacks or not self._rx_buffer.empty:
            return 0
        if self._group_idx >= len(self._groups):
            return None
        if self._busy > 0:
            return self._busy
        if self._operands_ready():
            return 0
        injector = self._injector
        if (injector is not None and self._watchdog
                and injector.has_losses
                and injector.loss_matches(self.pe_id, self.op_counter)):
            # A recorded loss matches the stalled operation: the
            # watchdog expiry is a scheduled event, so skip-ahead never
            # coasts past the force-fire cycle.
            return max(0, self._watchdog - self._waiting_cycles)
        return None

    def skip(self, cycles: int) -> None:
        """Fast-forward ``cycles`` event-free cycles.

        The caller (the simulator's skip-ahead) guarantees no packet
        arrives and no countdown elapses within the window, so the only
        effects of stepping would have been the countdown itself and the
        busy/idle statistics — replicated here exactly.
        """
        if self._group_idx >= len(self._groups):
            return
        if self._busy > 0:
            self._busy -= cycles
            self.stats.busy_cycles += cycles
        elif not self._operands_ready():
            self.stats.idle_cycles += cycles
            self._waiting_cycles += cycles

    # -- packet intake --------------------------------------------------

    def _receive_packets(self) -> None:
        buffer = self._rx_buffer
        taken = 0
        while taken < self.interconnect.local_rate and not buffer.empty:
            packet = buffer.peek()
            if (self._injector is not None
                    and packet.op_id < self.op_counter):
                # Under fault injection a packet can arrive after the
                # watchdog already force-fired its operation (it sat out
                # link backoffs).  Protocol order is otherwise intact;
                # discard it instead of treating it as a plan bug.
                self.interconnect.eject(self.pe_id, Port.PE, limit=1)
                self._injector.stats.late_packets += 1
                taken += 1
                continue
            if not self._placeable(packet):
                return  # backpressure: leave it in the router
            self.interconnect.eject(self.pe_id, Port.PE, limit=1)
            self._place(packet)
            taken += 1
            self.stats.packets_received += 1

    def _subbank(self, op_id: int) -> list[Packet]:
        return self._cache[op_id % self.config.cache_subbanks]

    def _placeable(self, packet: Packet) -> bool:
        if packet.op_id == self.op_counter:
            return True
        bank = self._subbank(packet.op_id)
        return len(bank) < self.config.cache_entries_per_subbank

    def _place(self, packet: Packet) -> None:
        if packet.kind not in (PacketKind.WEIGHT, PacketKind.STATE):
            raise ProtocolError(f"PE {self.pe_id} received {packet}")
        self._waiting_cycles = 0
        if packet.op_id < self.op_counter:
            raise ProtocolError(
                f"PE {self.pe_id} received stale {packet} at op "
                f"{self.op_counter}")
        if packet.op_id == self.op_counter:
            self._to_temporal_buffer(packet)
        else:
            bank = self._subbank(packet.op_id)
            bank.append(packet)
            occupancy = sum(len(b) for b in self._cache)
            if occupancy > self.stats.cache_peak:
                self.stats.cache_peak = occupancy
            if self._tracer is not None:
                self._tracer.cache_park(self.interconnect.cycle,
                                        self.pe_id, packet.op_id,
                                        occupancy)

    def _to_temporal_buffer(self, packet: Packet) -> None:
        group = self._groups[self._group_idx]
        if packet.mac_id >= len(group.slots):
            raise ProtocolError(
                f"PE {self.pe_id}: MAC-ID {packet.mac_id} beyond group of "
                f"{len(group.slots)} slots")
        if packet.kind == PacketKind.WEIGHT:
            self._weight_slots[packet.mac_id] = packet.payload
        elif group.shared_state:
            self._shared_state = packet.payload
        else:
            self._state_slots[packet.mac_id] = packet.payload

    # -- compute --------------------------------------------------------

    def _operands_ready(self) -> bool:
        group = self._groups[self._group_idx]
        lanes = len(group.slots)
        if group.shared_state:
            if self._shared_state is None:
                return False
        elif len(self._state_slots) < lanes:
            return False
        if group.mode == "mac" and not group.weights_resident:
            if len(self._weight_slots) < lanes:
                return False
        return True

    def _fire(self) -> None:
        """Start one MAC operation.

        The arithmetic applies now; the OP-counter advances (and, at
        group end, the write-backs are emitted) only after the MAC's
        ``n_mac``-cycle computation elapses, matching the f_PE/n_MAC
        MAC clock of Eq. 3.
        """
        group = self._groups[self._group_idx]
        for lane, _ in enumerate(group.slots):
            if group.mode == "max":
                self.macs[lane].max_raw(self._lane_state(group, lane))
            else:
                weight = (group.weights[self._conn]
                          if group.weights_resident
                          else self._weight_slots[lane])
                self.macs[lane].accumulate_raw(
                    weight, self._lane_state(group, lane))
            self.stats.macs_fired += 1
        if self._tracer is not None:
            self._tracer.mac_fire(self.interconnect.cycle, self.pe_id,
                                  self.config.n_mac, len(group.slots),
                                  self.op_counter)
        self._busy = self.config.n_mac - 1
        self.stats.busy_cycles += 1
        self._waiting_cycles = 0
        if self._busy == 0:
            self._advance_op()
        else:
            self._advance_pending = True

    def _force_fire(self) -> None:
        """Watchdog expiry: fire with the missing operands zero-filled.

        Only reachable when a recorded permanent packet loss matches the
        stalled operation — the data can never arrive, so the PE trades
        accuracy for forward progress, records the group's neurons as
        degraded, and resolves the matched ledger entries.
        """
        group = self._groups[self._group_idx]
        injector = self._injector
        if group.shared_state and self._shared_state is None:
            self._shared_state = 0
        for lane in range(len(group.slots)):
            if not group.shared_state and lane not in self._state_slots:
                self._state_slots[lane] = 0
            if (group.mode == "mac" and not group.weights_resident
                    and lane not in self._weight_slots):
                self._weight_slots[lane] = 0
        injector.stats.watchdog_fires += 1
        injector.record_degraded(
            "watchdog_fire", self.interconnect.cycle,
            f"PE {self.pe_id}: watchdog fired at op={self.op_counter} "
            f"after {self._waiting_cycles} stalled cycles; missing "
            f"operands zeroed",
            neurons=tuple(slot.neuron for slot in group.slots
                          if slot.neuron is not None))
        injector.resolve_losses(self.pe_id, self.op_counter)
        self._fire()

    def _lane_state(self, group: GroupPlan, lane: int) -> int:
        if group.shared_state:
            return self._shared_state
        return self._state_slots[lane]

    def _advance_op(self) -> None:
        group = self._groups[self._group_idx]
        self._clear_operand_buffers()
        self._conn += 1
        if self._conn >= group.n_connections:
            self._emit_writebacks(group)
            self._conn = 0
            self._group_idx += 1
            if self._group_idx < len(self._groups):
                self._start_group()
        else:
            self._preload_from_cache()

    def _start_group(self) -> None:
        group = self._groups[self._group_idx]
        for lane, slot in enumerate(group.slots):
            if group.mode == "max":
                # A max-reduction lane starts at the most negative
                # representable value, not at the bias.
                self.macs[lane].reset(
                    bias=self.config.qformat.min_value)
            else:
                self.macs[lane].reset(bias=slot.bias)
        self._preload_from_cache()

    def _preload_from_cache(self) -> None:
        """Move parked packets for the new OP-counter to the buffer.

        The sub-bank search takes between ``n_mac`` and 64 cycles (§V-B)
        but overlaps the MAC computation (itself ``n_mac`` cycles), so
        only the excess stalls the PE.
        """
        bank = self._subbank(self.op_counter)
        if not bank:
            return
        search = min(64, max(self.config.n_mac, len(bank)))
        extra = max(0, search - self.config.n_mac)
        self._busy += extra
        self.stats.search_stall_cycles += extra
        kept: list[Packet] = []
        for packet in bank:
            if packet.op_id == self.op_counter:
                self._to_temporal_buffer(packet)
            else:
                kept.append(packet)
        if self._tracer is not None:
            self._tracer.cache_evict(self.interconnect.cycle, self.pe_id,
                                     len(bank) - len(kept), extra)
        bank[:] = kept

    def _clear_operand_buffers(self) -> None:
        self._weight_slots = {}
        self._state_slots = {}
        self._shared_state = None

    # -- write-back -----------------------------------------------------

    def _emit_writebacks(self, group: GroupPlan) -> None:
        injector = self._injector
        for lane, slot in enumerate(group.slots):
            payload = self.macs[lane].result_raw
            crc = None
            if injector is not None:
                payload = injector.apply_stuck(self.pe_id, lane, payload)
                if self._stamp_crc:
                    crc = packet_crc(self.pe_id, slot.home_vault, lane,
                                     self._group_idx % 256,
                                     PacketKind.WRITEBACK,
                                     payload & 0xFFFF)
            self._writebacks.append(Packet(
                src=self.pe_id, dst=slot.home_vault, mac_id=lane,
                op_id=self._group_idx, kind=PacketKind.WRITEBACK,
                payload=payload, neuron=slot.neuron,
                inject_cycle=self.interconnect.cycle, crc=crc))

    def _inject_writebacks(self) -> None:
        sent = 0
        while self._writebacks and sent < self.interconnect.local_rate:
            if not self.interconnect.can_inject(self.pe_id, Port.PE):
                return
            self.interconnect.inject(self.pe_id, self._writebacks.popleft(),
                                     Port.PE)
            sent += 1

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Picklable snapshot; restored onto a freshly programmed PE.

        The group schedule itself is rebuilt by the caller (it is part
        of the pass plan, not of the clocked state).
        """
        return {
            "macs": [mac.state_dict() for mac in self.macs],
            "group_idx": self._group_idx,
            "conn": self._conn,
            "busy": self._busy,
            "advance_pending": self._advance_pending,
            "writebacks": tuple(self._writebacks),
            "cache": [list(bank) for bank in self._cache],
            "weight_slots": dict(self._weight_slots),
            "state_slots": dict(self._state_slots),
            "shared_state": self._shared_state,
            "waiting_cycles": self._waiting_cycles,
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        for mac, payload in zip(self.macs, state["macs"], strict=True):
            mac.load_state(payload)
        self._group_idx = state["group_idx"]
        self._conn = state["conn"]
        self._busy = state["busy"]
        self._advance_pending = state["advance_pending"]
        self._writebacks = deque(state["writebacks"])
        self._cache = [list(bank) for bank in state["cache"]]
        self._weight_slots = dict(state["weight_slots"])
        self._state_slots = dict(state["state_slots"])
        self._shared_state = state["shared_state"]
        self._waiting_cycles = state["waiting_cycles"]
        self.stats = replace(state["stats"])
