"""Multiply-accumulate unit (paper §III-B1).

The hardware MAC takes 16-bit fixed-point operands, keeps a wide internal
accumulator across the connection loop, and emits a 16-bit state when its
neuron is complete.  The wide accumulator is modelled with float64 (a
40-bit accumulator never overflows for the layer sizes involved, and
float64 represents the exact sums of Q1.7.8 products); the result is
quantised back to the storage format on read-out, exactly where the
hardware rounds.
"""

from __future__ import annotations

from repro.fixedpoint import QFormat, Q_1_7_8, from_float, to_float


class MACUnit:
    """One MAC: multiply two raw fixed-point items, accumulate wide.

    Args:
        fmt: operand/result fixed-point format.
        mac_id: identifier used in packets and error messages.
    """

    def __init__(self, fmt: QFormat = Q_1_7_8, mac_id: int = 0) -> None:
        self.fmt = fmt
        self.mac_id = mac_id
        self._acc = 0.0
        self.operations = 0

    def reset(self, bias: float = 0.0) -> None:
        """Clear the accumulator; a bias pre-loads it (the natural mapping
        of a layer bias onto the bias-free Eq. 1)."""
        self._acc = float(bias)

    def accumulate_raw(self, weight_raw: int, state_raw: int) -> None:
        """One MAC step on raw 16-bit operands."""
        self._acc += (to_float(weight_raw, self.fmt)
                      * to_float(state_raw, self.fmt))
        self.operations += 1

    def max_raw(self, state_raw: int) -> None:
        """Max-reduction step (used when emulating max pooling)."""
        self._acc = max(self._acc, float(to_float(state_raw, self.fmt)))
        self.operations += 1

    @property
    def accumulator(self) -> float:
        """The wide accumulator's current real value."""
        return self._acc

    @property
    def result_raw(self) -> int:
        """Accumulator quantised to the storage format (the write-back)."""
        return int(from_float(self._acc, self.fmt))

    def state_dict(self) -> dict:
        """Picklable snapshot for checkpointing."""
        return {"acc": self._acc, "operations": self.operations}

    def load_state(self, state: dict) -> None:
        self._acc = state["acc"]
        self.operations = state["operations"]

    def __repr__(self) -> str:
        return f"MACUnit(id={self.mac_id}, acc={self._acc:.6f})"
