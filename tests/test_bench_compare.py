"""The CI benchmark-regression gate (tools/bench_compare.py)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[1] / "tools" / "bench_compare.py"


def bench_json(times: dict[str, float],
               rates: dict[str, float] | None = None,
               faults: dict[str, dict] | None = None,
               memo: dict[str, dict] | None = None,
               stream: dict[str, float] | None = None) -> dict:
    """A minimal pytest-benchmark JSON document with given 'min' times.

    ``rates`` optionally attaches a ``simulated_cycles_per_second``
    extra_info entry per benchmark; ``faults`` a ``fault_counters``
    dict (as the ``record_fault_counters`` benchmark fixture does);
    ``memo`` a ``memo_counters`` dict (``record_memo_counters``);
    ``stream`` a ``warm_frames_per_second`` rate.
    """
    rates = rates or {}
    faults = faults or {}
    memo = memo or {}
    stream = stream or {}

    def extra(name: str) -> dict:
        info = {}
        if name in rates:
            info["simulated_cycles_per_second"] = rates[name]
        if name in faults:
            info["fault_counters"] = faults[name]
        if name in memo:
            info["memo_counters"] = memo[name]
        if name in stream:
            info["warm_frames_per_second"] = stream[name]
        return {"extra_info": info} if info else {}

    return {
        "benchmarks": [
            {"name": name,
             "stats": {"min": seconds, "max": seconds * 1.2,
                       "mean": seconds * 1.1, "median": seconds * 1.05,
                       "stddev": seconds * 0.01},
             **extra(name)}
            for name, seconds in times.items()
        ]
    }


def write(tmp_path: Path, name: str, payload: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def run_tool(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(TOOL), *args],
                          capture_output=True, text=True)


def test_identical_results_pass(tmp_path):
    baseline = write(tmp_path, "base.json",
                     bench_json({"test_a": 1.0, "test_b": 0.5}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0, "test_b": 0.5}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "no regressions" in result.stdout


def test_two_x_slowdown_fails(tmp_path):
    """The acceptance fixture: a synthetic 2x slowdown must gate."""
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json", bench_json({"test_a": 2.0}))
    result = run_tool(baseline, current)
    assert result.returncode != 0
    assert "REGRESSION" in result.stdout


def test_slowdown_within_threshold_passes(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json", bench_json({"test_a": 1.25}))
    assert run_tool(baseline, current).returncode == 0


def test_custom_threshold(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json", bench_json({"test_a": 1.25}))
    assert run_tool(baseline, current,
                    "--threshold", "0.10").returncode == 1


def test_speedup_passes(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json", bench_json({"test_a": 0.4}))
    assert run_tool(baseline, current).returncode == 0


def test_speedup_factor_is_printed(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json", bench_json({"test_a": 0.25}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "4.00x speedup" in result.stdout


def test_sim_rate_speedup_is_informational(tmp_path):
    """A simulator-rate drop is reported but never gates: only the
    wall-clock metric can fail the run."""
    baseline = write(tmp_path, "base.json",
                     bench_json({"test_a": 1.0}, rates={"test_a": 1000.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0}, rates={"test_a": 500.0}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "500 sim cycles/s" in result.stdout
    assert "0.50x baseline rate" in result.stdout


def test_fault_counters_are_informational(tmp_path):
    """Fault/retry counters print on the benchmark line but never
    gate, even when the counters changed against the baseline."""
    baseline = write(tmp_path, "base.json",
                     bench_json({"test_a": 1.0},
                                faults={"test_a": {"retries": 2}}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0},
                               faults={"test_a": {"retries": 16,
                                                  "packets_lost": 3}}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "[faults: packets_lost=3, retries=16]" in result.stdout


def test_zero_fault_counters_stay_silent(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0},
                               faults={"test_a": {"retries": 0}}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "[faults:" not in result.stdout


def test_memo_counters_are_informational(tmp_path):
    """Memo-store hit/miss/reject counters print on the benchmark line
    but never gate — the store's correctness asserts live in the
    benchmarks themselves."""
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0},
                               memo={"test_a": {"hits": 3, "misses": 1,
                                                "rejects": 0,
                                                "stores": 1,
                                                "evictions": 0}}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "[memo: hits=3, misses=1, stores=1]" in result.stdout


def test_zero_memo_counters_stay_silent(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0},
                               memo={"test_a": {"hits": 0}}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "[memo:" not in result.stdout


def test_stream_rate_is_informational_with_baseline_factor(tmp_path):
    """Warm streaming frames/s prints with the factor against the
    baseline's recorded rate, and a rate drop never gates by itself."""
    baseline = write(tmp_path, "base.json",
                     bench_json({"test_a": 1.0}, stream={"test_a": 200.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0}, stream={"test_a": 100.0}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "100 warm frames/s" in result.stdout
    assert "0.50x baseline rate" in result.stdout


def test_stream_rate_without_baseline(tmp_path):
    baseline = write(tmp_path, "base.json", bench_json({"test_a": 1.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_a": 1.0}, stream={"test_a": 150.0}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "150 warm frames/s" in result.stdout
    assert "baseline rate" not in result.stdout


def test_new_and_retired_benchmarks_do_not_gate(tmp_path):
    baseline = write(tmp_path, "base.json",
                     bench_json({"test_old": 1.0, "test_kept": 1.0}))
    current = write(tmp_path, "cur.json",
                    bench_json({"test_new": 9.0, "test_kept": 1.0}))
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "new benchmark" in result.stdout
    assert "baseline only" in result.stdout


def test_malformed_json_is_an_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    good = write(tmp_path, "good.json", bench_json({"test_a": 1.0}))
    result = run_tool(str(bad), good)
    assert result.returncode != 0
    assert "cannot read" in result.stderr


def test_missing_benchmarks_key_is_an_error(tmp_path):
    empty = write(tmp_path, "empty.json", {"machine_info": {}})
    good = write(tmp_path, "good.json", bench_json({"test_a": 1.0}))
    result = run_tool(empty, good)
    assert result.returncode != 0
    assert "benchmarks" in result.stderr
