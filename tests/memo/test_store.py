"""MemoStore file protocol: hits, rejects, invisibility, LRU, races."""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.core import NeurocubeConfig
from repro.core.parallel import MapOutcome, PassOutcome
from repro.errors import ConfigurationError
from repro.memo import MEMO_VERSION, MemoStore, memo_fingerprint

CONFIG = NeurocubeConfig.hmc_15nm()

DIGEST = "a" * 64
HASHES = ("h0",)


def make_outcome(cycles: int = 100) -> MapOutcome:
    return MapOutcome(index=0, passes=(PassOutcome(
        cycles=cycles, delivered=10, lateral=3, total_latency=40,
        pe_stats=(), png_stats=()),), output=None)


class TestRoundTrip:
    def test_store_then_load_hits(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        loaded = store.load(DIGEST, HASHES)
        assert loaded is not None
        assert loaded.passes[0].cycles == 100
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 0, "rejects": 0, "stores": 1,
            "evictions": 0}

    def test_absent_entry_is_a_miss(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        assert store.load(DIGEST, HASHES) is None
        assert store.stats.misses == 1
        assert store.stats.rejects == 0

    def test_entries_shared_across_store_instances(self, tmp_path):
        MemoStore(tmp_path, CONFIG).store(DIGEST, HASHES, make_outcome())
        again = MemoStore(tmp_path, CONFIG)
        assert again.load(DIGEST, HASHES) is not None


class TestRejection:
    """A bad entry is a counted reject and is dropped — never replayed."""

    def entry_path(self, store: MemoStore) -> object:
        return store.directory / f"{DIGEST}.pkl"

    def test_plan_hash_mismatch_rejected(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        assert store.load(DIGEST, ("different",)) is None
        assert store.stats.rejects == 1
        assert not self.entry_path(store).exists()

    def test_hash_count_mismatch_rejected(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        assert store.load(DIGEST, ("h0", "h1")) is None
        assert store.stats.rejects == 1

    def test_corrupted_entry_rejected(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        self.entry_path(store).write_bytes(b"not a pickle at all")
        assert store.load(DIGEST, HASHES) is None
        assert store.stats.rejects == 1
        assert not self.entry_path(store).exists()

    def test_truncated_entry_rejected(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        path = self.entry_path(store)
        path.write_bytes(path.read_bytes()[:10])
        assert store.load(DIGEST, HASHES) is None
        assert store.stats.rejects == 1

    def test_wrong_payload_type_rejected(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        self.entry_path(store).write_bytes(
            pickle.dumps(["not", "a", "dict"]))
        assert store.load(DIGEST, HASHES) is None
        assert store.stats.rejects == 1

    def test_header_digest_mismatch_rejected(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        # An entry renamed onto the wrong digest must not replay.
        other = store.directory / ("b" * 64 + ".pkl")
        os.replace(self.entry_path(store), other)
        assert store.load("b" * 64, HASHES) is None
        assert store.stats.rejects == 1

    def test_reject_falls_through_to_restore(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        store.store(DIGEST, HASHES, make_outcome())
        self.entry_path(store).write_bytes(b"garbage")
        assert store.load(DIGEST, HASHES) is None
        store.store(DIGEST, HASHES, make_outcome(cycles=200))
        assert store.load(DIGEST, HASHES).passes[0].cycles == 200


class TestInvisibility:
    """Incompatible entries are invisible (a miss), never wrong."""

    def test_foreign_version_is_a_miss_not_a_reject(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        payload = {"version": MEMO_VERSION + 999,
                   "fingerprint": store.fingerprint, "digest": DIGEST,
                   "plan_hashes": HASHES, "outcome": make_outcome()}
        (store.directory / f"{DIGEST}.pkl").write_bytes(
            pickle.dumps(payload))
        assert store.load(DIGEST, HASHES) is None
        assert store.stats.misses == 1
        assert store.stats.rejects == 0

    def test_different_config_lives_in_different_partition(self, tmp_path):
        fast = MemoStore(tmp_path, CONFIG)
        slow = MemoStore(tmp_path, NeurocubeConfig.hmc_28nm())
        assert fast.fingerprint != slow.fingerprint
        fast.store(DIGEST, HASHES, make_outcome(cycles=100))
        assert slow.load(DIGEST, HASHES) is None
        assert slow.stats.misses == 1

    def test_host_only_fields_share_a_fingerprint(self):
        base = memo_fingerprint(CONFIG)
        assert memo_fingerprint(CONFIG.with_(sim_workers=8)) == base
        assert memo_fingerprint(CONFIG.with_(sim_skip_ahead=False)) == base
        assert memo_fingerprint(
            CONFIG.with_(sim_memo_dir="/elsewhere")) == base

    def test_timing_fields_change_the_fingerprint(self):
        base = memo_fingerprint(CONFIG)
        assert memo_fingerprint(CONFIG.with_(n_mac=8)) != base
        assert memo_fingerprint(
            CONFIG.with_(noc_topology="fully_connected")) != base

    def test_rate0_faults_change_the_fingerprint(self):
        # A rate-0 injector still attaches (zeroed) fault counters to
        # outcomes, so its presence is outcome-relevant.
        from repro.faults import FaultConfig

        assert memo_fingerprint(
            CONFIG.with_(faults=FaultConfig())) != memo_fingerprint(CONFIG)


class TestEviction:
    def test_lru_evicts_oldest_first(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        entry_bytes = None
        for index in range(3):
            digest = chr(ord("a") + index) * 64
            store.store(digest, HASHES, make_outcome())
            path = store.directory / f"{digest}.pkl"
            entry_bytes = path.stat().st_size
            os.utime(path, (1000.0 + index, 1000.0 + index))
        store.max_bytes = 2 * entry_bytes
        store.store("d" * 64, HASHES, make_outcome())
        os.utime(store.directory / ("d" * 64 + ".pkl"), (1003.0, 1003.0))
        store._evict()
        survivors = sorted(p.name[0] for p in store.root.glob("*/*.pkl"))
        assert survivors == ["c", "d"]
        assert store.stats.evictions == 2

    def test_hit_refreshes_recency(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        for index in range(2):
            digest = chr(ord("a") + index) * 64
            store.store(digest, HASHES, make_outcome())
            os.utime(store.directory / f"{digest}.pkl",
                     (1000.0 + index, 1000.0 + index))
        # Touch the older entry through a hit: its mtime moves forward.
        assert store.load("a" * 64, HASHES) is not None
        entry_bytes = (store.directory / ("a" * 64 + ".pkl")).stat().st_size
        store.max_bytes = entry_bytes
        store._evict()
        survivors = [p.name[0] for p in store.root.glob("*/*.pkl")]
        assert survivors == ["a"]

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = MemoStore(tmp_path, CONFIG)
        for index in range(4):
            store.store(chr(ord("a") + index) * 64, HASHES, make_outcome())
        assert store.entry_count() == 4
        assert store.stats.evictions == 0

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MemoStore(tmp_path, CONFIG, max_bytes=0)


def _concurrent_writer(directory: str, worker: int) -> None:
    store = MemoStore(directory, NeurocubeConfig.hmc_15nm())
    for index in range(8):
        digest = f"{(worker + index) % 8:x}" * 64
        store.store(digest, HASHES, make_outcome(cycles=100))


class TestConcurrentWriters:
    def test_two_processes_same_dir_no_clobber(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        workers = [ctx.Process(target=_concurrent_writer,
                               args=(str(tmp_path), w)) for w in range(2)]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        # Every entry both processes raced on is fully formed and loads.
        store = MemoStore(tmp_path, CONFIG)
        assert store.entry_count() == 8
        for value in range(8):
            loaded = store.load(f"{value:x}" * 64, HASHES)
            assert loaded is not None
            assert loaded.passes[0].cycles == 100
        assert store.stats.rejects == 0
        # No temp files left behind.
        assert not list(store.root.glob("*/*.tmp"))
