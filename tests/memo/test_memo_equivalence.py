"""Warm-vs-cold bit-identity of persistently memoized simulator runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NeurocubeConfig, NeurocubeSimulator, compile_inference
from repro.memo import MemoSession, MemoStore, current_memo_session
from repro.nn import models

CONFIG = NeurocubeConfig.hmc_15nm()


def conv_descriptor(height=12, width=12, kernel=3, out_maps=4, seed=3):
    net = models.single_conv_layer(height, width, kernel,
                                   out_maps=out_maps, qformat=None,
                                   seed=seed)
    return compile_inference(net, CONFIG, True).descriptors[0]


def timing_run(config, desc):
    return NeurocubeSimulator(config).run_descriptor(desc)


def assert_runs_identical(a, b):
    assert a.cycles == b.cycles
    assert a.packets == b.packets
    assert a.lateral_fraction == b.lateral_fraction
    assert a.mean_packet_latency == b.mean_packet_latency
    assert a.macs_fired == b.macs_fired
    assert a.pe_busy_cycles == b.pe_busy_cycles
    assert a.pe_idle_cycles == b.pe_idle_cycles
    assert a.search_stall_cycles == b.search_stall_cycles
    assert a.cache_peak == b.cache_peak
    assert a.inject_stall_cycles == b.inject_stall_cycles


class TestWarmColdEquivalence:
    def test_warm_run_bit_identical_with_hits(self, tmp_path):
        desc = conv_descriptor()
        config = CONFIG.with_(sim_memo_dir=str(tmp_path))
        cold = timing_run(config, desc)
        assert cold.memo_stats.stores == 1
        assert cold.memo_stats.hits == 0
        warm = timing_run(config, desc)
        assert warm.memo_stats.hits == 1
        assert warm.memo_stats.misses == 0
        assert warm.memo_stats.rejects == 0
        assert_runs_identical(cold, warm)
        baseline = timing_run(CONFIG, desc)
        assert_runs_identical(baseline, warm)

    def test_explicit_store_argument(self, tmp_path):
        desc = conv_descriptor()
        store = MemoStore(tmp_path, CONFIG)
        cold = NeurocubeSimulator(CONFIG, memo=store).run_descriptor(desc)
        warm = NeurocubeSimulator(CONFIG, memo=store).run_descriptor(desc)
        assert store.stats.hits == 1
        assert_runs_identical(cold, warm)

    def test_ambient_session_serves_runs(self, tmp_path):
        desc = conv_descriptor()
        assert current_memo_session() is None
        with MemoSession(tmp_path) as session:
            assert current_memo_session() is session
            cold = timing_run(CONFIG, desc)
            warm = timing_run(CONFIG, desc)
            assert session.total_stats().hits >= 1
        assert current_memo_session() is None
        assert_runs_identical(cold, warm)

    def test_distinct_shapes_never_cross_hit(self, tmp_path):
        config = CONFIG.with_(sim_memo_dir=str(tmp_path))
        small = timing_run(config, conv_descriptor(height=10))
        big = timing_run(config, conv_descriptor(height=14))
        assert small.memo_stats.hits == 0
        assert big.memo_stats.hits == 0
        assert small.cycles != big.cycles

    def test_identical_shape_different_name_hits(self, tmp_path):
        # Entry digests exclude pure labels, so two same-shaped layers
        # from differently-named networks share one entry.
        from repro import nn
        from repro.nn.activations import Tanh

        other = nn.Network(
            [nn.Conv2D(4, 3, activation=Tanh(), name="conv_other",
                       qformat=None)],
            input_shape=(1, 12, 12), name="other_net", seed=9)
        other_desc = compile_inference(other, CONFIG, True).descriptors[0]
        config = CONFIG.with_(sim_memo_dir=str(tmp_path))
        first = timing_run(config, conv_descriptor(seed=1))
        second = timing_run(config, other_desc)
        assert second.descriptor.name != first.descriptor.name
        assert second.memo_stats.hits == 1
        assert_runs_identical(first, second)

    def test_functional_runs_bypass_the_store(self, tmp_path):
        net = models.single_conv_layer(10, 10, 3, out_maps=2, seed=5)
        desc = compile_inference(net, CONFIG, True).descriptors[0]
        config = CONFIG.with_(sim_memo_dir=str(tmp_path))
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, (1, 10, 10))
        sim = NeurocubeSimulator(config)
        run = sim.run_descriptor(desc, net.layers[0], x)
        assert run.output is not None
        assert not run.memo_stats.any

    def test_checkpointed_runs_bypass_the_store(self, tmp_path):
        from repro.faults import CheckpointSpec

        desc = conv_descriptor()
        config = CONFIG.with_(sim_memo_dir=str(tmp_path / "memo"))
        spec = CheckpointSpec(directory=str(tmp_path / "ckpt"), every=200)
        sim = NeurocubeSimulator(config, checkpoint=spec)
        run = sim.run_descriptor(desc)
        assert not run.memo_stats.any

    def test_no_store_resolved_leaves_stats_none(self):
        run = timing_run(CONFIG, conv_descriptor())
        assert run.memo_stats is None

    def test_corrupted_entry_resimulates_identically(self, tmp_path):
        desc = conv_descriptor()
        config = CONFIG.with_(sim_memo_dir=str(tmp_path))
        cold = timing_run(config, desc)
        for path in list(tmp_path.glob("*/*.pkl")):
            path.write_bytes(b"corrupted beyond recognition")
        warm = timing_run(config, desc)
        assert warm.memo_stats.rejects == 1
        assert warm.memo_stats.hits == 0
        assert_runs_identical(cold, warm)


class TestRunNetworkReport:
    def test_report_carries_folded_memo_counters(self, tmp_path):
        net = models.single_conv_layer(10, 10, 3, out_maps=2,
                                       qformat=None, seed=5)
        config = CONFIG.with_(sim_memo_dir=str(tmp_path))
        sim = NeurocubeSimulator(config)

        # Timing-only network run: descriptors have no layer/input, so
        # feed run_descriptor directly and fold via a stream-style loop.
        desc = compile_inference(net, config, True).descriptors[0]
        sim.run_descriptor(desc)
        warm = sim.run_descriptor(desc)
        assert warm.memo_stats.hits == 1

    def test_memo_line_in_stream_table(self, tmp_path):
        from repro.experiments import ext_stream

        with MemoSession(tmp_path):
            report = ext_stream.run(frames=2)
        assert report.memo is not None
        table = report.to_table()
        assert "MEMO:" in table
        assert "STREAM: 2 frames" in table


class TestMemoizeGates:
    @pytest.mark.parametrize("flag", [True, False])
    def test_sim_memoize_off_disables_persistence(self, tmp_path, flag):
        desc = conv_descriptor()
        config = CONFIG.with_(sim_memo_dir=str(tmp_path),
                              sim_memoize=flag)
        run = timing_run(config, desc)
        if flag:
            assert run.memo_stats.stores == 1
        else:
            assert not run.memo_stats.any
            assert not list(tmp_path.glob("*/*.pkl"))
