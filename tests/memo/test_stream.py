"""Streaming mode: bit-exact outputs, exact cycles, runner CLI wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import NeurocubeConfig, NeurocubeSimulator, StreamReport
from repro.errors import ConfigurationError
from repro.experiments import ext_stream
from repro.experiments.runner import main as runner_main
from repro.memo import MemoSession

CONFIG = NeurocubeConfig.hmc_15nm()


class TestRunStream:
    def test_outputs_bit_identical_to_per_frame_simulation(self):
        net = ext_stream.stream_network(CONFIG)
        frames = ext_stream.frame_stream(3)
        sim = NeurocubeSimulator(CONFIG)
        stream = sim.run_stream(net, frames)
        assert stream.frames == 3
        assert len(stream.outputs) == 3
        for frame, streamed in zip(frames, stream.outputs, strict=True):
            simulated, report = sim.run_network(net, frame)
            assert np.array_equal(streamed, simulated)
            assert report.total_cycles == stream.cycles_per_frame

    def test_total_cycles_scale_with_frames(self):
        net = ext_stream.stream_network(CONFIG)
        stream = NeurocubeSimulator(CONFIG).run_stream(
            net, ext_stream.frame_stream(2))
        assert stream.total_cycles == 2 * stream.cycles_per_frame
        assert stream.cycles_per_frame > 0

    def test_empty_stream_rejected(self):
        net = ext_stream.stream_network(CONFIG)
        with pytest.raises(ConfigurationError):
            NeurocubeSimulator(CONFIG).run_stream(net, [])

    def test_second_stream_hits_the_store(self, tmp_path):
        net = ext_stream.stream_network(CONFIG)
        frames = ext_stream.frame_stream(2)
        with MemoSession(tmp_path):
            cold = NeurocubeSimulator(CONFIG).run_stream(net, frames)
            warm = NeurocubeSimulator(CONFIG).run_stream(net, frames)
        assert cold.memo.stores >= 1
        assert warm.memo.hits >= 1
        assert warm.memo.rejects == 0
        cold_cycles = [layer.cycles for layer in cold.cold.layers]
        warm_cycles = [layer.cycles for layer in warm.cold.layers]
        assert cold_cycles == warm_cycles
        for a, b in zip(cold.outputs, warm.outputs, strict=True):
            assert np.array_equal(a, b)

    def test_zero_warm_time_raises(self):
        report = StreamReport(network_name="n", f_clk_hz=1e9, frames=1,
                              cold=None)
        with pytest.raises(ConfigurationError):
            report.warm_frames_per_second
        with pytest.raises(ConfigurationError):
            report.warm_speedup


class TestExperiment:
    def test_frame_count_override(self):
        ext_stream.set_frame_count(2)
        try:
            assert ext_stream.run().frames == 2
        finally:
            ext_stream.set_frame_count(None)
        assert ext_stream.run(frames=1).frames == 1

    def test_bad_frame_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ext_stream.set_frame_count(0)

    def test_default_frame_count(self):
        assert ext_stream.run().frames == ext_stream.DEFAULT_FRAMES


class TestRunnerCli:
    def test_stream_with_memo_dir_json(self, tmp_path, capsys):
        memo_dir = str(tmp_path / "memo")
        argv = ["run", "ext_stream", "--stream", "2",
                "--memo-dir", memo_dir, "--json"]
        assert runner_main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["ext_stream"]["frames"] == 2
        assert cold["__memo__"]["stores"] >= 1
        assert runner_main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["__memo__"]["hits"] >= 1
        assert warm["__memo__"]["rejects"] == 0
        cold_cycles = [layer["cycles"] for layer
                       in cold["ext_stream"]["cold"]["layers"]]
        warm_cycles = [layer["cycles"] for layer
                       in warm["ext_stream"]["cold"]["layers"]]
        assert cold_cycles == warm_cycles
        assert cold["ext_stream"]["outputs"] == warm["ext_stream"]["outputs"]

    def test_stream_override_is_restored(self, tmp_path, capsys):
        argv = ["run", "ext_stream", "--stream", "2", "--json"]
        assert runner_main(argv) == 0
        capsys.readouterr()
        assert ext_stream.run().frames == ext_stream.DEFAULT_FRAMES

    def test_memo_summary_on_stderr(self, tmp_path, capsys):
        argv = ["run", "ext_stream", "--stream", "1",
                "--memo-dir", str(tmp_path)]
        assert runner_main(argv) == 0
        captured = capsys.readouterr()
        assert "[memo] ext_stream:" in captured.err
        assert "STREAM:" in captured.out
